//! Round-trip properties of the `bist serve` wire protocol: every
//! encode→decode→re-encode chain must be byte-identical, for randomized
//! specs and events as well as real computed results. Byte equality of
//! the re-encoded line is the bit-exactness contract — it covers f64
//! bit patterns (NaNs included), hex-encoded 64-bit words and string
//! escaping in one assertion, without requiring `PartialEq` on specs.

use std::collections::BTreeMap;

use proptest::prelude::*;

use bist_engine::wire::{self, Request, Response, ServerStats, WireCacheStats};
use bist_engine::{
    AreaReportSpec, BakeoffSpec, CircuitSource, CoverageCurveSpec, EmitHdlSpec, Engine,
    EstimateSpec, FaultModel, HdlLanguage, JobId, JobSpec, LintSpec, MixedSchemeConfig,
    ProgressEvent, SolveAtSpec, SweepSpec,
};
use bist_lfsr::Polynomial;
use bist_synth::{AreaModel, CellKind};

fn any_circuit(sel: u8) -> CircuitSource {
    match sel % 4 {
        0 => CircuitSource::iscas85("c17"),
        1 => CircuitSource::iscas85("c432"),
        2 => CircuitSource::iscas89("s27"),
        _ => CircuitSource::bench(
            "custom \"quoted\"",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
        ),
    }
}

/// A deliberately adversarial configuration: arbitrary polynomial mask,
/// arbitrary f64 bit patterns (NaNs and subnormals included) in the
/// area model — the wire must carry all of it bit-exactly.
fn any_config(poly: u64, word: u64) -> MixedSchemeConfig {
    let areas: BTreeMap<CellKind, f64> = CellKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let bits = word.wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            (kind, f64::from_bits(bits))
        })
        .collect();
    let mut config = MixedSchemeConfig {
        poly: Polynomial::from_mask(poly),
        area: AreaModel::with_areas(areas, f64::from_bits(word.rotate_left(17))),
        threads: (word % 3) as usize,
        ..MixedSchemeConfig::default()
    };
    config.atpg.podem.fill_seed = word;
    config.atpg.podem.backtrack_limit = (word >> 32) as u32;
    config.atpg.no_compaction = word & 1 == 1;
    config.atpg.threads = (word % 5) as usize;
    config
}

fn any_spec(kind: u8, sel: u8, poly: u64, word: u64) -> JobSpec {
    let circuit = any_circuit(sel);
    let config = any_config(poly, word);
    let budget = (word % 10_000) as usize;
    let fault_model = match word % 4 {
        0 => FaultModel::StuckAt,
        1 => FaultModel::Transition,
        2 => FaultModel::bridging(),
        _ => FaultModel::Bridging {
            pairs: (word % 500) as u32 + 1,
            seed: word.rotate_left(9),
        },
    };
    match kind % 8 {
        0 => JobSpec::SolveAt(SolveAtSpec {
            circuit,
            config,
            prefix_len: budget,
            fault_model,
            estimate_first: word & 8 == 8,
        }),
        1 => JobSpec::Sweep(SweepSpec {
            circuit,
            config,
            prefix_lengths: vec![budget, budget / 2, budget % 17],
            fault_model,
            estimate_first: word & 8 == 8,
        }),
        2 => JobSpec::CoverageCurve(CoverageCurveSpec {
            circuit,
            config,
            checkpoints: vec![0, budget],
            fault_model,
        }),
        3 => JobSpec::Bakeoff(BakeoffSpec {
            circuit,
            config,
            random_length: budget,
        }),
        4 => JobSpec::EmitHdl(EmitHdlSpec {
            circuit,
            config,
            prefix_len: budget,
            language: match word % 3 {
                0 => HdlLanguage::Verilog,
                1 => HdlLanguage::Vhdl,
                _ => HdlLanguage::Both,
            },
            module_name: (word & 2 == 2).then(|| format!("m_{budget}")),
            testbench: word & 4 == 4,
        }),
        5 => JobSpec::AreaReport(AreaReportSpec { circuit, config }),
        6 => JobSpec::CoverageEstimate(EstimateSpec {
            circuit,
            config,
            prefix_len: budget,
            samples: budget + 1,
            confidence: [90, 95, 99][(word % 3) as usize],
            seed: word.rotate_right(23),
        }),
        _ => JobSpec::Lint(LintSpec { circuit, config }),
    }
}

fn any_event(variant: u8, job: u64, word: u64) -> ProgressEvent {
    let job = JobId(job);
    // labels/messages exercise escaping: quotes, backslashes, newlines
    let text = format!("sweep \"c17\"\\{word}\nline2");
    match variant % 8 {
        0 => ProgressEvent::Queued { job, label: text },
        1 => ProgressEvent::Started { job },
        2 => ProgressEvent::Checkpoint {
            job,
            prefix_len: (word % 100_000) as usize,
            coverage_pct: f64::from_bits(word),
        },
        3 => ProgressEvent::Pass { job, name: text },
        4 => ProgressEvent::Finished {
            job,
            cache_hit: false,
        },
        5 => ProgressEvent::Failed { job, message: text },
        6 => ProgressEvent::Finished {
            job,
            cache_hit: true,
        },
        _ => ProgressEvent::Canceled { job },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn specs_round_trip_bit_identically(
        kind in any::<u8>(),
        sel in any::<u8>(),
        poly in any::<u64>(),
        word in any::<u64>(),
    ) {
        let spec = any_spec(kind, sel, poly, word);
        let encoded = wire::encode_spec(&spec).render();
        let decoded = wire::decode_spec(&bist_engine::json::parse(&encoded).expect("wire line parses"))
            .expect("encoded spec decodes");
        let reencoded = wire::encode_spec(&decoded).render();
        prop_assert_eq!(&encoded, &reencoded, "spec round trip must be byte-identical");
    }

    #[test]
    fn submit_requests_round_trip_bit_identically(
        kind in any::<u8>(),
        sel in any::<u8>(),
        poly in any::<u64>(),
        word in any::<u64>(),
    ) {
        let request = Request::Submit { spec: Box::new(any_spec(kind, sel, poly, word)) };
        let line = wire::encode_request(&request);
        prop_assert!(!line.contains('\n'), "wire lines carry no raw newline");
        let decoded = wire::decode_request(&line).expect("request decodes");
        prop_assert_eq!(&line, &wire::encode_request(&decoded));
    }

    #[test]
    fn events_round_trip_bit_identically(
        variant in any::<u8>(),
        job in any::<u64>(),
        word in any::<u64>(),
    ) {
        let event = any_event(variant, job, word);
        let line = wire::encode_response(&Response::Event { event });
        prop_assert!(!line.contains('\n'), "wire lines carry no raw newline");
        let decoded = wire::decode_response(&line).expect("event decodes");
        prop_assert_eq!(&line, &wire::encode_response(&decoded));
    }

    #[test]
    fn control_responses_round_trip_bit_identically(
        job in any::<u64>(),
        word in any::<u64>(),
        flag in any::<bool>(),
    ) {
        let stats = ServerStats {
            uptime_ms: word % 1_000_000,
            submitted: word % 101,
            completed: word % 97,
            failed: word % 7,
            rejected: word % 5,
            queued: word % 11,
            running: word % 3,
            cache: flag.then(|| WireCacheStats {
                hits: word % 13,
                misses: word % 17,
                stores: word % 19,
                evictions: word % 23,
                entries: word % 29,
                bytes: word % 1_000_003,
                capacity_bytes: (word & 8 == 8).then_some(word % 1_000_033),
            }),
        };
        for response in [
            Response::Accepted { job },
            Response::Rejected {
                reason: "queue full (64 jobs waiting)".to_owned(),
                retry_after_ms: flag.then_some(word % 10_000),
            },
            Response::Failed { job, error: "bench \"x\": bad\nline 2".to_owned() },
            Response::Stats { stats },
            Response::Stopping { queued: word % 31, running: word % 37 },
        ] {
            let line = wire::encode_response(&response);
            let decoded = wire::decode_response(&line).expect("response decodes");
            prop_assert_eq!(&line, &wire::encode_response(&decoded));
        }
    }
}

#[test]
fn computed_results_survive_the_wire_bit_identically() {
    let engine = Engine::with_threads(1);
    for spec in [
        JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]),
        JobSpec::solve_at(CircuitSource::iscas85("c17"), 4),
        JobSpec::lint(CircuitSource::iscas85("c17")),
    ] {
        let result = engine.run(spec).expect("c17 job succeeds");
        let line = wire::encode_response(&Response::Result {
            job: 7,
            cached: true,
            result: Box::new(result),
        });
        assert!(!line.contains('\n'));
        let decoded = wire::decode_response(&line).expect("result decodes");
        let Response::Result { job, cached, .. } = &decoded else {
            panic!("result response decodes as a result");
        };
        assert_eq!((*job, *cached), (7, true));
        assert_eq!(
            line,
            wire::encode_response(&decoded),
            "result payloads round-trip byte-identically"
        );
    }
}

#[test]
fn foreign_schema_versions_are_rejected_with_both_versions_named() {
    let line = wire::encode_request(&Request::Stats).replace("\"v\": 1", "\"v\": 999");
    let err = wire::decode_request(&line).expect_err("foreign version refused");
    assert!(
        err.message.contains("999"),
        "names the foreign version: {err}"
    );
    assert!(err.message.contains('1'), "names our version: {err}");
}
