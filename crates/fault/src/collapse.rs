use std::collections::BTreeMap;

use bist_netlist::{Circuit, GateKind, NodeId, SimGraph};

use crate::fault::Fault;
use crate::list::FaultList;

/// Structural equivalence collapsing over the single stuck-at universe,
/// with the maps that let engines grade *representatives only* while
/// every report keeps speaking in the full universe.
///
/// The universe pair is the one [`FaultList`] already defines:
/// [`FaultList::stuck_at_full`] (both polarities on every stem and
/// fan-out branch) and [`FaultList::stuck_at_collapsed`] (classic fault
/// folding). This type computes, over the [`SimGraph`] CSR fan-in/fan-out
/// arrays, the *fold chain* each full fault takes through those rules and
/// records where it lands: `rep_of[full_index] → representative_index`.
/// Grading only the representatives and projecting the statuses back
/// through that map is bit-identical to grading the full universe,
/// because every fold step is a true equivalence (identical faulty
/// functions at every observation point):
///
/// * a branch fault whose driver feeds exactly one pin — and is neither a
///   flip-flop nor a primary output — *is* the driver's stem;
/// * pin faults inside NOT/BUF force the output exactly like the
///   (inverted) output stem fault;
/// * a pin stuck at the controlling value of AND/NAND/OR/NOR forces the
///   controlled output, exactly like the output stem stuck there;
/// * a stem feeding exactly one pin of such a gate (and not observed as a
///   primary output) folds forward through the same two rules.
///
/// Two fold targets named by `stuck_at_collapsed` exist in *neither*
/// universe: the stem of a D flip-flop driver (flip-flop sites carry no
/// faults) and — soundness, not economy — a single-fanout driver that is
/// *also* a primary output (its stem is observable at the output pad, the
/// branch is not; they are not equivalent). Such branch faults stay their
/// own representatives, appended after the collapsed list — a handful per
/// circuit (c432 has one primary output feeding a gate, c880 four; c17 and
/// c1908 have none, so their representative lists *are* `stuck_at_collapsed`
/// exactly).
///
/// On top of the equivalence classes a classical *dominance* pass marks
/// the prime representatives (see [`CollapsedUniverse::is_prime`]): the
/// output stem stuck at the complement of the controlled value is
/// detected by every test for any surviving input fault of the same
/// gate, so ATPG target selection can skip it. Dominance is one-way —
/// projection never uses it; it only shrinks the *targeting* set.
///
/// # Example
///
/// ```
/// use bist_fault::{CollapsedUniverse, FaultStatus};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let universe = CollapsedUniverse::build(&c17);
/// assert_eq!(universe.full().len(), 46);
/// assert_eq!(universe.representatives().len(), 22);
/// assert!(universe.stats().cut_pct > 40.0);
///
/// // grade the 22 representatives, report over all 46 faults
/// let per_rep = vec![FaultStatus::Detected; 22];
/// let per_full = universe.project(&per_rep);
/// assert_eq!(per_full.len(), 46);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapsedUniverse {
    full: FaultList,
    representatives: FaultList,
    rep_of: Vec<usize>,
    class_size: Vec<usize>,
    prime: Vec<bool>,
}

/// Size summary of one [`CollapsedUniverse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollapseStats {
    /// Faults in the uncollapsed stuck-at universe.
    pub full: usize,
    /// Equivalence-class representatives (the graded set).
    pub representatives: usize,
    /// Representatives surviving the dominance pass (the ATPG targets).
    pub prime: usize,
    /// Universe cut from collapsing, percent: `100 · (1 − reps/full)`.
    pub cut_pct: f64,
}

impl CollapsedUniverse {
    /// Collapses `circuit`'s stuck-at universe.
    pub fn build(circuit: &Circuit) -> Self {
        let graph = circuit.sim_graph();
        let full = FaultList::stuck_at_full(circuit);
        let mut representatives = FaultList::stuck_at_collapsed(circuit);
        let mut index: BTreeMap<Fault, usize> = representatives
            .iter()
            .enumerate()
            .map(|(i, f)| (*f, i))
            .collect();
        let mut rep_of = Vec::with_capacity(full.len());
        for fault in full.iter() {
            let rep = representative(graph, *fault);
            let next = representatives.len();
            let idx = *index.entry(rep).or_insert(next);
            if idx == next {
                // a fold target outside `stuck_at_collapsed`: the fault
                // represents itself (flip-flop or primary-output driver)
                representatives.push(rep);
            }
            rep_of.push(idx);
        }
        let mut class_size = vec![0usize; representatives.len()];
        for &r in &rep_of {
            class_size[r] += 1;
        }
        let prime = representatives
            .iter()
            .map(|f| rep_is_prime(graph, f))
            .collect();
        CollapsedUniverse {
            full,
            representatives,
            rep_of,
            class_size,
            prime,
        }
    }

    /// The uncollapsed stuck-at universe every report speaks in.
    pub fn full(&self) -> &FaultList {
        &self.full
    }

    /// The equivalence-class representatives, in a stable order: the
    /// `stuck_at_collapsed` list first, then any self-representing
    /// extras (see the type docs).
    pub fn representatives(&self) -> &FaultList {
        &self.representatives
    }

    /// Representative index of the full-universe fault at `full_index`.
    pub fn rep_of(&self, full_index: usize) -> usize {
        self.rep_of[full_index]
    }

    /// The whole full-index → representative-index map.
    pub fn rep_map(&self) -> &[usize] {
        &self.rep_of
    }

    /// Number of full-universe faults folding into representative
    /// `rep_index` (itself included; never zero).
    pub fn class_size(&self, rep_index: usize) -> usize {
        self.class_size[rep_index]
    }

    /// True when representative `rep_index` survives the dominance pass:
    /// an AND/NAND/OR/NOR output stem stuck at the complement of its
    /// controlled value is non-prime (every test for a surviving input
    /// fault of that gate detects it); everything else is prime.
    pub fn is_prime(&self, rep_index: usize) -> bool {
        self.prime[rep_index]
    }

    /// Size summary.
    pub fn stats(&self) -> CollapseStats {
        let full = self.full.len();
        let representatives = self.representatives.len();
        let cut_pct = if full == 0 {
            0.0
        } else {
            100.0 * (1.0 - representatives as f64 / full as f64)
        };
        CollapseStats {
            full,
            representatives,
            prime: self.prime.iter().filter(|&&p| p).count(),
            cut_pct,
        }
    }

    /// Projects a per-representative array (statuses, first-detection
    /// indices, …) back onto the full universe: position `i` of the
    /// result is `per_rep[rep_of(i)]`.
    ///
    /// # Panics
    ///
    /// Panics if `per_rep` is not exactly one entry per representative.
    pub fn project<T: Copy>(&self, per_rep: &[T]) -> Vec<T> {
        assert_eq!(
            per_rep.len(),
            self.representatives.len(),
            "projection input must be one entry per representative"
        );
        self.rep_of.iter().map(|&r| per_rep[r]).collect()
    }
}

/// Builds a stem fault by dense node index.
fn stem(id: usize, value: bool) -> Fault {
    Fault::StuckAt {
        site: NodeId::from_index(id),
        pin: None,
        value,
    }
}

/// The output-stem polarity a pin fault folds into *inside* a gate of
/// `kind`, if the gate admits the fold: NOT/BUF pin faults map onto the
/// (inverted) output, and a pin stuck at the controlling value forces
/// the controlled output.
fn inside_gate(kind: GateKind, value: bool) -> Option<bool> {
    match kind {
        GateKind::Not => Some(!value),
        GateKind::Buf => Some(value),
        k if k.controlling_value() == Some(value) => k.controlled_output(),
        _ => None,
    }
}

/// Folds one full-universe fault to its class representative by applying
/// the `stuck_at_collapsed` drop rules as rewrite steps until none fires.
///
/// Terminates in `O(depth)` steps: the branch→driver-stem step moves
/// backward once, every other step moves strictly forward in
/// topological order.
fn representative(graph: &SimGraph, mut fault: Fault) -> Fault {
    loop {
        let Fault::StuckAt { site, pin, value } = fault else {
            return fault;
        };
        let id = site.index();
        let next = match pin {
            Some(p) => {
                let driver = graph.fanin(id)[p as usize] as usize;
                if graph.fanout(driver).len() <= 1
                    && graph.kind(driver) != GateKind::Dff
                    && !graph.is_output(driver)
                {
                    // the branch is the driver's whole net: same signal
                    Some(stem(driver, value))
                } else {
                    // inside-gate equivalence; when the driver's stem is
                    // not foldable-to (forks, flip-flop, or observed as
                    // a primary output) this is the only rewrite left
                    inside_gate(graph.kind(id), value).map(|v| stem(id, v))
                }
            }
            None => {
                let fanout = graph.fanout(id);
                if fanout.len() == 1 && !graph.is_output(id) {
                    let consumer = fanout[0] as usize;
                    inside_gate(graph.kind(consumer), value).map(|v| stem(consumer, v))
                } else {
                    None
                }
            }
        };
        match next {
            Some(folded) => fault = folded,
            None => return fault,
        }
    }
}

/// Dominance: the output stem stuck at the complement of the controlled
/// value is detected by every test for the gate's surviving input faults.
fn rep_is_prime(graph: &SimGraph, fault: &Fault) -> bool {
    match fault {
        Fault::StuckAt {
            site,
            pin: None,
            value,
        } => match graph.kind(site.index()).controlled_output() {
            Some(controlled) => *value == controlled,
            None => true,
        },
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultStatus;

    #[test]
    fn c17_matches_the_textbook_lists_exactly() {
        let c17 = bist_netlist::iscas85::c17();
        let u = CollapsedUniverse::build(&c17);
        assert_eq!(u.full(), &FaultList::stuck_at_full(&c17));
        assert_eq!(u.full().len(), 46);
        assert_eq!(u.representatives(), &FaultList::stuck_at_collapsed(&c17));
        assert_eq!(u.representatives().len(), 22);

        let stats = u.stats();
        assert_eq!(stats.full, 46);
        assert_eq!(stats.representatives, 22);
        assert!(stats.cut_pct > 40.0 && stats.cut_pct < 60.0, "{stats:?}");
        // the six NAND output s-a-0 stems are dominance-removable
        assert!(stats.prime < stats.representatives, "{stats:?}");
    }

    #[test]
    fn classes_partition_the_full_universe() {
        for name in ["c17", "c432", "c880"] {
            let c = bist_netlist::iscas85::circuit(name).expect("known benchmark");
            let u = CollapsedUniverse::build(&c);
            let collapsed = FaultList::stuck_at_collapsed(&c);
            // the collapsed list is a stable prefix of the representatives
            assert_eq!(
                &u.representatives().faults()[..collapsed.len()],
                collapsed.faults(),
                "{name}"
            );
            let sizes: usize = (0..u.representatives().len())
                .map(|r| u.class_size(r))
                .sum();
            assert_eq!(sizes, u.full().len(), "{name}");
            assert!(
                (0..u.representatives().len()).all(|r| u.class_size(r) >= 1),
                "{name}"
            );
            // every representative folds to itself
            for (i, f) in u.representatives().iter().enumerate() {
                assert_eq!(representative(c.sim_graph(), *f), *f, "{name} rep {i}");
            }
        }
    }

    #[test]
    fn iscas85_cuts_are_pinned() {
        // (full, representatives, prime); representatives differ from
        // `stuck_at_collapsed` only by primary-output-driver extras
        // (c432 has one PO feeding a gate, c880 four)
        for (name, full, reps, prime) in [
            ("c17", 46, 22, 18),
            ("c432", 1170, 667, 570),
            ("c880", 2748, 1681, 1465),
        ] {
            let c = bist_netlist::iscas85::circuit(name).expect("known benchmark");
            let s = CollapsedUniverse::build(&c).stats();
            assert_eq!(
                (s.full, s.representatives, s.prime),
                (full, reps, prime),
                "{name}"
            );
        }
    }

    #[test]
    fn sequential_circuits_keep_orphan_branches_as_extras() {
        let s27 = bist_netlist::iscas89::circuit("s27").expect("known benchmark");
        let u = CollapsedUniverse::build(&s27);
        let collapsed = FaultList::stuck_at_collapsed(&s27);
        assert!(u.representatives().len() >= collapsed.len());
        for extra in &u.representatives().faults()[collapsed.len()..] {
            // extras are branch faults behind a flip-flop or
            // primary-output driver, representing themselves
            assert!(
                matches!(extra, Fault::StuckAt { pin: Some(_), .. }),
                "{extra}"
            );
        }
        let sizes: usize = (0..u.representatives().len())
            .map(|r| u.class_size(r))
            .sum();
        assert_eq!(sizes, u.full().len());
    }

    #[test]
    fn projection_speaks_the_full_universe() {
        let c17 = bist_netlist::iscas85::c17();
        let u = CollapsedUniverse::build(&c17);
        let per_rep: Vec<FaultStatus> = (0..u.representatives().len())
            .map(|i| {
                if i % 3 == 0 {
                    FaultStatus::Detected
                } else {
                    FaultStatus::Undetected
                }
            })
            .collect();
        let per_full = u.project(&per_rep);
        assert_eq!(per_full.len(), u.full().len());
        for (i, s) in per_full.iter().enumerate() {
            assert_eq!(*s, per_rep[u.rep_of(i)], "full fault {i}");
        }
    }

    #[test]
    #[should_panic(expected = "one entry per representative")]
    fn projection_rejects_mismatched_input() {
        let c17 = bist_netlist::iscas85::c17();
        CollapsedUniverse::build(&c17).project(&[FaultStatus::Detected]);
    }
}
