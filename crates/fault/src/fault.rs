use std::fmt;

use bist_netlist::{Circuit, NodeId};

/// A single gate-level fault.
///
/// Stuck-at faults live either on a node's output *stem* (`pin: None`) or
/// on a specific fan-out *branch* — fan-in pin `pin` of the gate `site`.
/// Stuck-open faults are properties of a gate's CMOS transistor networks;
/// see the [crate docs](crate) for their two-pattern detection semantics.
///
/// # Example
///
/// ```
/// use bist_fault::Fault;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let g10 = c17.find("G10").unwrap();
/// let f = Fault::StuckAt { site: g10, pin: None, value: true };
/// assert_eq!(f.site(), g10);
/// assert!(f.is_stuck_at());
/// assert_eq!(f.describe(&c17), "G10 stuck-at-1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fault {
    /// Stuck-at fault: on the stem of `site` when `pin` is `None`, or as
    /// seen by fan-in pin `pin` of gate `site` (a branch fault).
    StuckAt {
        /// Faulted node (gate, for branch faults).
        site: NodeId,
        /// Fan-in pin index for branch faults.
        pin: Option<u8>,
        /// The stuck logic value.
        value: bool,
    },
    /// A transistor of the gate's series network is open: the output
    /// transition requiring all inputs non-controlling is blocked
    /// (AND/NAND/OR/NOR gates).
    OpenSeries {
        /// The affected gate.
        site: NodeId,
    },
    /// The parallel transistor of fan-in `pin` is open: the output
    /// transition is blocked when `pin` is the only input at the
    /// controlling value (AND/NAND/OR/NOR gates).
    OpenParallel {
        /// The affected gate.
        site: NodeId,
        /// The pin whose parallel transistor is open.
        pin: u8,
    },
    /// Output cannot rise (pull-up open); inverters, buffers and XOR-family
    /// gates.
    OpenRise {
        /// The affected gate.
        site: NodeId,
    },
    /// Output cannot fall (pull-down open); inverters, buffers and
    /// XOR-family gates.
    OpenFall {
        /// The affected gate.
        site: NodeId,
    },
}

impl Fault {
    /// The node this fault is attached to.
    pub fn site(&self) -> NodeId {
        match *self {
            Fault::StuckAt { site, .. }
            | Fault::OpenSeries { site }
            | Fault::OpenParallel { site, .. }
            | Fault::OpenRise { site }
            | Fault::OpenFall { site } => site,
        }
    }

    /// True for the stuck-at variants.
    pub fn is_stuck_at(&self) -> bool {
        matches!(self, Fault::StuckAt { .. })
    }

    /// True for the stuck-open (two-pattern) variants.
    pub fn is_stuck_open(&self) -> bool {
        !self.is_stuck_at()
    }

    /// Human-readable description using the circuit's node names.
    pub fn describe(&self, circuit: &Circuit) -> String {
        let name = |id: NodeId| circuit.node(id).name().to_owned();
        match *self {
            Fault::StuckAt {
                site,
                pin: None,
                value,
            } => format!("{} stuck-at-{}", name(site), u8::from(value)),
            Fault::StuckAt {
                site,
                pin: Some(p),
                value,
            } => {
                let driver = circuit.node(site).fanin()[p as usize];
                format!(
                    "{}.pin{}({}) stuck-at-{}",
                    name(site),
                    p,
                    name(driver),
                    u8::from(value)
                )
            }
            Fault::OpenSeries { site } => format!("{} series-open", name(site)),
            Fault::OpenParallel { site, pin } => {
                format!("{} parallel-open(pin{pin})", name(site))
            }
            Fault::OpenRise { site } => format!("{} open-rise", name(site)),
            Fault::OpenFall { site } => format!("{} open-fall", name(site)),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::StuckAt {
                site,
                pin: None,
                value,
            } => write!(f, "{site} sa{}", u8::from(value)),
            Fault::StuckAt {
                site,
                pin: Some(p),
                value,
            } => write!(f, "{site}.{p} sa{}", u8::from(value)),
            Fault::OpenSeries { site } => write!(f, "{site} op-s"),
            Fault::OpenParallel { site, pin } => write!(f, "{site}.{pin} op-p"),
            Fault::OpenRise { site } => write!(f, "{site} op-r"),
            Fault::OpenFall { site } => write!(f, "{site} op-f"),
        }
    }
}

/// Lifecycle of a fault during grading and test generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultStatus {
    /// Not yet detected by any simulated pattern.
    #[default]
    Undetected,
    /// Detected by at least one pattern (or pattern pair).
    Detected,
    /// Proven untestable by exhaustive ATPG search — excluded from the
    /// achievable-coverage denominator ceiling (the paper's 96.7 % for
    /// C3540 comes from 135 such faults).
    Redundant,
    /// ATPG gave up before proving either way (backtrack limit).
    Aborted,
}

impl FaultStatus {
    /// True if the fault still needs attention from ATPG.
    pub fn is_open(self) -> bool {
        matches!(self, FaultStatus::Undetected | FaultStatus::Aborted)
    }
}

impl fmt::Display for FaultStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultStatus::Undetected => "undetected",
            FaultStatus::Detected => "detected",
            FaultStatus::Redundant => "redundant",
            FaultStatus::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_stem_and_branch() {
        let c17 = bist_netlist::iscas85::c17();
        let g16 = c17.find("G16").unwrap();
        let stem = Fault::StuckAt {
            site: g16,
            pin: None,
            value: false,
        };
        assert_eq!(stem.describe(&c17), "G16 stuck-at-0");
        let branch = Fault::StuckAt {
            site: g16,
            pin: Some(1),
            value: true,
        };
        assert_eq!(branch.describe(&c17), "G16.pin1(G11) stuck-at-1");
    }

    #[test]
    fn status_lifecycle() {
        assert!(FaultStatus::Undetected.is_open());
        assert!(FaultStatus::Aborted.is_open());
        assert!(!FaultStatus::Detected.is_open());
        assert!(!FaultStatus::Redundant.is_open());
        assert_eq!(FaultStatus::default(), FaultStatus::Undetected);
    }

    #[test]
    fn classification_helpers() {
        let c17 = bist_netlist::iscas85::c17();
        let g10 = c17.find("G10").unwrap();
        assert!(Fault::OpenSeries { site: g10 }.is_stuck_open());
        assert!(!Fault::OpenSeries { site: g10 }.is_stuck_at());
    }
}
