//! Fault models for the LFSROM mixed-BIST reproduction.
//!
//! The paper grades test sequences against *gate-level stuck-at and
//! stuck-open faults* (its §3.1/§3.2 fault model). This crate provides:
//!
//! * [`Fault`] — single stuck-at faults on stems and fan-out branches, and
//!   CMOS transistor-open (stuck-open) faults that need ordered two-pattern
//!   tests,
//! * [`FaultList`] — fault universe construction with classic equivalence
//!   collapsing (fault folding through single-fan-out nets and
//!   controlling-value equivalence inside AND/NAND/OR/NOR gates),
//! * [`CollapsedUniverse`] — the full↔collapsed bridge: per-fault
//!   representative maps so engines grade only class representatives while
//!   reports keep speaking in the full universe, plus the dominance-pruned
//!   prime set for ATPG targeting,
//! * [`FaultStatus`] — the lifecycle a fault goes through during fault
//!   simulation and ATPG.
//!
//! # Stuck-open semantics
//!
//! A CMOS stuck-open fault turns a combinational gate into a dynamic memory
//! element: when the broken transistor path is the only one that should
//! drive the output, the output *retains its previous value*. Detection
//! therefore needs two consecutive patterns — an initialization pattern and
//! a transition pattern — which is exactly why the paper insists the
//! LFSROM preserves the *order* of the deterministic sequence. The
//! conditions encoded here (see [`Fault`] variants):
//!
//! * [`Fault::OpenSeries`] — a transistor of the series network is open
//!   (e.g. an nMOS of a NAND): the output cannot make the transition that
//!   requires *all inputs non-controlling*.
//! * [`Fault::OpenParallel`] — the parallel transistor of one pin is open:
//!   the transition is blocked only when that pin is the *only* one at the
//!   controlling value.
//! * [`Fault::OpenRise`] / [`Fault::OpenFall`] — for inverters, buffers and
//!   XOR-family complex gates: the output cannot rise / fall.
//!
//! # Example
//!
//! ```
//! use bist_fault::FaultList;
//!
//! let c17 = bist_netlist::iscas85::c17();
//! let sa = FaultList::stuck_at_collapsed(&c17);
//! assert_eq!(sa.len(), 22); // the textbook collapsed count for c17
//! let mixed = FaultList::mixed_model(&c17);
//! assert!(mixed.len() > sa.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collapse;
mod fault;
mod list;

pub use collapse::{CollapseStats, CollapsedUniverse};
pub use fault::{Fault, FaultStatus};
pub use list::FaultList;
