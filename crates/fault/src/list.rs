use bist_netlist::{Circuit, GateKind, NodeId};

use crate::fault::Fault;

/// An ordered fault universe over one circuit.
///
/// Construction methods implement the fault models the paper grades
/// against; see [`FaultList::stuck_at_collapsed`] for the collapsing rules.
///
/// # Example
///
/// ```
/// use bist_fault::FaultList;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let list = FaultList::mixed_model(&c17);
/// // iterate, index, count
/// assert_eq!(list.iter().count(), list.len());
/// assert!(list.get(0).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultList {
    faults: Vec<Fault>,
}

impl FaultList {
    /// Builds an empty list (useful as an accumulator).
    pub fn new() -> Self {
        FaultList { faults: Vec::new() }
    }

    /// The *uncollapsed* single stuck-at universe: both polarities on every
    /// stem and on every fan-out branch.
    pub fn stuck_at_full(circuit: &Circuit) -> Self {
        let mut faults = Vec::new();
        for (idx, node) in circuit.nodes().iter().enumerate() {
            let id = NodeId::from_index(idx);
            if node.kind() == GateKind::Dff {
                continue;
            }
            for value in [false, true] {
                faults.push(Fault::StuckAt {
                    site: id,
                    pin: None,
                    value,
                });
            }
            if node.kind().is_combinational() {
                for (p, _) in node.fanin().iter().enumerate() {
                    for value in [false, true] {
                        faults.push(Fault::StuckAt {
                            site: id,
                            pin: Some(p as u8),
                            value,
                        });
                    }
                }
            }
        }
        FaultList { faults }
    }

    /// The equivalence-collapsed single stuck-at universe.
    ///
    /// Rules (classic fault folding):
    ///
    /// * inside AND/NAND/OR/NOR: a pin stuck at the *controlling* value is
    ///   equivalent to the output stuck at the controlled value — dropped;
    /// * inside NOT/BUF: pin faults are equivalent to output faults —
    ///   dropped;
    /// * a branch fault on a pin whose driver has fan-out 1 is the same
    ///   signal as the driver's stem — dropped;
    /// * a stem feeding exactly one AND/NAND/OR/NOR pin loses its
    ///   stuck-at-controlling fault (equivalent through the gate); a stem
    ///   feeding exactly one NOT/BUF loses both (they fold into the
    ///   inverter's output faults).
    ///
    /// For c17 this yields the textbook 22-fault list.
    pub fn stuck_at_collapsed(circuit: &Circuit) -> Self {
        let mut faults = Vec::new();
        for (idx, node) in circuit.nodes().iter().enumerate() {
            let id = NodeId::from_index(idx);
            if node.kind() == GateKind::Dff {
                continue;
            }
            // stem faults, subject to folding through a single consumer
            let fanout = circuit.fanout(id);
            for value in [false, true] {
                let folded = if fanout.len() == 1 && !circuit.is_output(id) {
                    let consumer = circuit.node(fanout[0]);
                    match consumer.kind() {
                        GateKind::Not | GateKind::Buf => true,
                        k => k.controlling_value() == Some(value),
                    }
                } else {
                    false
                };
                if !folded {
                    faults.push(Fault::StuckAt {
                        site: id,
                        pin: None,
                        value,
                    });
                }
            }
            // branch faults: only meaningful when the driver forks
            if node.kind().is_combinational() {
                for (p, driver) in node.fanin().iter().enumerate() {
                    if circuit.fanout(*driver).len() <= 1 {
                        continue; // same signal as the stem
                    }
                    for value in [false, true] {
                        let equivalent_inside_gate = match node.kind() {
                            GateKind::Not | GateKind::Buf => true,
                            k => k.controlling_value() == Some(value),
                        };
                        if !equivalent_inside_gate {
                            faults.push(Fault::StuckAt {
                                site: id,
                                pin: Some(p as u8),
                                value,
                            });
                        }
                    }
                }
            }
        }
        FaultList { faults }
    }

    /// The CMOS stuck-open universe: one series-open plus one parallel-open
    /// per pin for AND/NAND/OR/NOR gates; open-rise/open-fall for
    /// inverters, buffers and XOR-family gates.
    pub fn stuck_open(circuit: &Circuit) -> Self {
        let mut faults = Vec::new();
        for (idx, node) in circuit.nodes().iter().enumerate() {
            let id = NodeId::from_index(idx);
            match node.kind() {
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    faults.push(Fault::OpenSeries { site: id });
                    for (p, _) in node.fanin().iter().enumerate() {
                        faults.push(Fault::OpenParallel {
                            site: id,
                            pin: p as u8,
                        });
                    }
                }
                GateKind::Not | GateKind::Buf | GateKind::Xor | GateKind::Xnor => {
                    faults.push(Fault::OpenRise { site: id });
                    faults.push(Fault::OpenFall { site: id });
                }
                _ => {}
            }
        }
        FaultList { faults }
    }

    /// The paper's fault model: collapsed stuck-at plus stuck-open.
    pub fn mixed_model(circuit: &Circuit) -> Self {
        let mut list = Self::stuck_at_collapsed(circuit);
        list.faults.extend(Self::stuck_open(circuit).faults);
        list
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the list holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault at position `index`.
    pub fn get(&self, index: usize) -> Option<&Fault> {
        self.faults.get(index)
    }

    /// Iterates over the faults in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Fault> {
        self.faults.iter()
    }

    /// The faults as a slice.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Appends a fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Number of stuck-at faults in the list.
    pub fn num_stuck_at(&self) -> usize {
        self.faults.iter().filter(|f| f.is_stuck_at()).count()
    }

    /// Number of stuck-open faults in the list.
    pub fn num_stuck_open(&self) -> usize {
        self.faults.iter().filter(|f| f.is_stuck_open()).count()
    }
}

impl Default for FaultList {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<Fault> for FaultList {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        FaultList {
            faults: iter.into_iter().collect(),
        }
    }
}

impl Extend<Fault> for FaultList {
    fn extend<I: IntoIterator<Item = Fault>>(&mut self, iter: I) {
        self.faults.extend(iter);
    }
}

impl<'a> IntoIterator for &'a FaultList {
    type Item = &'a Fault;
    type IntoIter = std::slice::Iter<'a, Fault>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

impl IntoIterator for FaultList {
    type Item = Fault;
    type IntoIter = std::vec::IntoIter<Fault>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_full_universe_counts() {
        let c17 = bist_netlist::iscas85::c17();
        let full = FaultList::stuck_at_full(&c17);
        // 11 stems * 2 + 12 pins * 2 = 46
        assert_eq!(full.len(), 46);
    }

    #[test]
    fn c17_collapsed_is_textbook_22() {
        let c17 = bist_netlist::iscas85::c17();
        let collapsed = FaultList::stuck_at_collapsed(&c17);
        assert_eq!(collapsed.len(), 22);
    }

    #[test]
    fn c17_stuck_open_counts() {
        let c17 = bist_netlist::iscas85::c17();
        let so = FaultList::stuck_open(&c17);
        // 6 NAND gates: 1 series + 2 parallel each = 18
        assert_eq!(so.len(), 18);
        assert!(so.iter().all(Fault::is_stuck_open));
    }

    #[test]
    fn mixed_model_concatenates() {
        let c17 = bist_netlist::iscas85::c17();
        let m = FaultList::mixed_model(&c17);
        assert_eq!(m.len(), 22 + 18);
        assert_eq!(m.num_stuck_at(), 22);
        assert_eq!(m.num_stuck_open(), 18);
    }

    #[test]
    fn collapsing_never_grows_the_universe() {
        for name in ["c432", "c880"] {
            let c = bist_netlist::iscas85::circuit(name).unwrap();
            let full = FaultList::stuck_at_full(&c);
            let collapsed = FaultList::stuck_at_collapsed(&c);
            assert!(collapsed.len() < full.len(), "{name}");
            // every collapsed fault exists in the full universe
            // determinism-vetted: membership probe only, never iterated
            #[allow(clippy::disallowed_types)]
            let full_set: std::collections::HashSet<_> = full.iter().collect();
            for f in collapsed.iter() {
                assert!(full_set.contains(f), "{name}: {f} not in full universe");
            }
        }
    }

    #[test]
    fn collect_and_extend() {
        let c17 = bist_netlist::iscas85::c17();
        let collapsed = FaultList::stuck_at_collapsed(&c17);
        let only_sa1: FaultList = collapsed
            .iter()
            .copied()
            .filter(|f| matches!(f, Fault::StuckAt { value: true, .. }))
            .collect();
        assert!(only_sa1.len() < collapsed.len());
        let mut acc = FaultList::new();
        acc.extend(only_sa1.iter().copied());
        assert_eq!(acc.len(), only_sa1.len());
    }
}
