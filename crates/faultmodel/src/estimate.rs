//! Sampled coverage estimation: the cheap, statistically qualified first
//! answer a service returns before the exact run finishes.
//!
//! The estimator grades a deterministic, seed-pinned stratified sample of
//! the full stuck-at universe instead of all of it. Stratification is by
//! logic level of the fault site (faults near the inputs and faults deep
//! in the cone behave differently under random patterns), allocation is
//! proportional with largest-remainder rounding, and the within-stratum
//! draw is a partial Fisher–Yates over a SplitMix64 stream seeded from
//! the spec — the same `(circuit, prefix, samples, confidence, seed)`
//! always selects the same faults and returns the same interval, at
//! every pool width. Sampled faults are graded through their
//! [`CollapsedUniverse`] representatives, so the simulator touches only
//! the distinct class representatives the sample lands on.

use std::collections::BTreeMap;

use bist_core::MixedSchemeConfig;
use bist_fault::{CollapsedUniverse, FaultStatus};
use bist_faultsim::FaultSim;
use bist_netlist::Circuit;

use crate::session::stream;

/// One sampled coverage estimate with its confidence interval.
///
/// All figures speak in the *full* stuck-at universe (the one
/// [`bist_fault::FaultList::stuck_at_full`] enumerates); the interval is
/// a Wilson score interval over the sampled detection rate.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageEstimate {
    /// Size of the full stuck-at universe being estimated.
    pub fault_universe: usize,
    /// Equivalence-class representatives in the collapsed universe.
    pub representatives: usize,
    /// Pseudo-random prefix length graded.
    pub prefix_len: usize,
    /// Faults actually sampled (the request, capped at the universe).
    pub samples: usize,
    /// Sampled faults whose class representative was detected.
    pub detected_samples: usize,
    /// Point estimate of the coverage, percent.
    pub estimate_pct: f64,
    /// Lower bound of the confidence interval, percent.
    pub lo_pct: f64,
    /// Upper bound of the confidence interval, percent.
    pub hi_pct: f64,
    /// Confidence level, percent (90, 95 or 99).
    pub confidence: u32,
    /// The sampling seed the estimate is pinned to.
    pub seed: u64,
}

/// Estimates the coverage the first `prefix_len` patterns of the
/// scheme's pseudo-random stream reach on `circuit`'s full stuck-at
/// universe, by grading a seed-pinned stratified sample of `samples`
/// faults (capped at the universe size).
///
/// The result is a pure function of the arguments: the sample is drawn
/// by a SplitMix64 stream from `seed`, the grading is the bit-identical
/// PPSFP engine, and no wall-clock or machine property participates.
///
/// # Panics
///
/// Panics if `confidence` is not 90, 95 or 99 (the engine validates
/// specs before calling).
///
/// # Example
///
/// ```
/// use bist_core::MixedSchemeConfig;
/// use bist_faultmodel::estimate_coverage;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let config = MixedSchemeConfig::default();
/// let e = estimate_coverage(&c17, &config, 32, 20, 95, 0xb157);
/// assert_eq!(e.fault_universe, 46);
/// assert_eq!(e.samples, 20);
/// assert!(e.lo_pct <= e.estimate_pct && e.estimate_pct <= e.hi_pct);
/// // pinned to the seed: same spec, same interval, bit for bit
/// let again = estimate_coverage(&c17, &config, 32, 20, 95, 0xb157);
/// assert_eq!(e, again);
/// ```
pub fn estimate_coverage(
    circuit: &Circuit,
    config: &MixedSchemeConfig,
    prefix_len: usize,
    samples: usize,
    confidence: u32,
    seed: u64,
) -> CoverageEstimate {
    let z = z_score(confidence);
    let universe = CollapsedUniverse::build(circuit);
    let full_len = universe.full().len();
    let n = samples.min(full_len);

    let sampled = sample_indices(circuit, &universe, n, seed);

    // grade only the distinct representatives the sample lands on
    let mut rep_indices: Vec<usize> = sampled.iter().map(|&i| universe.rep_of(i)).collect();
    rep_indices.sort_unstable();
    rep_indices.dedup();
    let subset: bist_fault::FaultList = rep_indices
        .iter()
        .map(|&r| universe.representatives().faults()[r])
        .collect();
    let mut sim = FaultSim::new(circuit, subset).with_threads(config.threads);
    sim.simulate(&stream(config, circuit).patterns(prefix_len));

    // status of each sampled full fault = its representative's status
    let status_of_rep: BTreeMap<usize, FaultStatus> = rep_indices
        .iter()
        .enumerate()
        .map(|(pos, &r)| (r, sim.status_of(pos)))
        .collect();
    let detected_samples = sampled
        .iter()
        .filter(|&&i| status_of_rep[&universe.rep_of(i)] == FaultStatus::Detected)
        .count();

    let (estimate, lo, hi) = wilson_interval(detected_samples, n, z);
    CoverageEstimate {
        fault_universe: full_len,
        representatives: universe.representatives().len(),
        prefix_len,
        samples: n,
        detected_samples,
        estimate_pct: 100.0 * estimate,
        lo_pct: 100.0 * lo,
        hi_pct: 100.0 * hi,
        confidence,
        seed,
    }
}

/// Draws `n` distinct full-universe fault indices, stratified by the
/// logic level of the fault site: proportional quotas with
/// largest-remainder rounding (ties to the lower level), then a partial
/// Fisher–Yates inside each stratum. Returns them sorted ascending.
fn sample_indices(
    circuit: &Circuit,
    universe: &CollapsedUniverse,
    n: usize,
    seed: u64,
) -> Vec<usize> {
    let graph = circuit.sim_graph();
    let mut strata: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, fault) in universe.full().iter().enumerate() {
        strata
            .entry(graph.level(fault.site().index()))
            .or_default()
            .push(i);
    }
    let full_len = universe.full().len();
    if full_len == 0 || n == 0 {
        return Vec::new();
    }

    // proportional quotas: floor(n·size/N), then hand the shortfall to
    // the largest remainders (exact integer arithmetic, lower level wins
    // ties) — each +1 fits because a nonzero remainder means the floor
    // sits strictly below the stratum size
    let mut quotas: Vec<(u32, usize, usize)> = strata
        .iter()
        .map(|(&level, members)| {
            let exact = n * members.len();
            (level, exact / full_len, exact % full_len)
        })
        .collect();
    let assigned: usize = quotas.iter().map(|&(_, q, _)| q).sum();
    let mut by_remainder: Vec<usize> = (0..quotas.len()).collect();
    by_remainder.sort_by_key(|&k| (std::cmp::Reverse(quotas[k].2), quotas[k].0));
    for &k in by_remainder.iter().take(n - assigned) {
        quotas[k].1 += 1;
    }

    let mut rng = seed;
    let mut chosen = Vec::with_capacity(n);
    for (level, quota, _) in quotas {
        let members = strata.get_mut(&level).expect("stratum exists");
        for k in 0..quota {
            let j = k + (splitmix64(&mut rng) as usize) % (members.len() - k);
            members.swap(k, j);
            chosen.push(members[k]);
        }
    }
    chosen.sort_unstable();
    chosen
}

/// One step of the SplitMix64 stream (the workspace's standard cheap
/// deterministic generator; see the ATPG fill seeds).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The two-sided z score for the supported confidence levels.
fn z_score(confidence: u32) -> f64 {
    match confidence {
        90 => 1.6448536269514722,
        95 => 1.959963984540054,
        99 => 2.5758293035489004,
        other => panic!("unsupported confidence level: {other} (use 90, 95 or 99)"),
    }
}

/// Wilson score interval for `detected` successes in `n` trials:
/// `(point, lo, hi)` as proportions in `[0, 1]`. An empty sample
/// follows the empty-universe convention (fully covered, degenerate
/// interval).
fn wilson_interval(detected: usize, n: usize, z: f64) -> (f64, f64, f64) {
    if n == 0 {
        return (1.0, 1.0, 1.0);
    }
    let n_f = n as f64;
    let phat = detected as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = (phat + z2 / (2.0 * n_f)) / denom;
    let half = z * (phat * (1.0 - phat) / n_f + z2 / (4.0 * n_f * n_f)).sqrt() / denom;
    (phat, (center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_deterministic_and_distinct() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let universe = CollapsedUniverse::build(&c);
        let a = sample_indices(&c, &universe, 200, 0xb157);
        let b = sample_indices(&c, &universe, 200, 0xb157);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(*a.last().unwrap() < universe.full().len());
        // a different seed draws a different sample
        assert_ne!(a, sample_indices(&c, &universe, 200, 0xb158));
    }

    #[test]
    fn sample_covers_the_whole_universe_when_asked() {
        let c17 = bist_netlist::iscas85::c17();
        let universe = CollapsedUniverse::build(&c17);
        let all = sample_indices(&c17, &universe, 46, 7);
        assert_eq!(all, (0..46).collect::<Vec<_>>());
    }

    #[test]
    fn full_sample_reproduces_exact_coverage() {
        // sampling the entire universe leaves nothing to chance: the
        // point estimate must equal full-universe grading exactly
        let c17 = bist_netlist::iscas85::c17();
        let config = MixedSchemeConfig::default();
        let e = estimate_coverage(&c17, &config, 64, usize::MAX, 95, 1);
        assert_eq!(e.samples, 46);

        let universe = CollapsedUniverse::build(&c17);
        let mut sim = FaultSim::new(&c17, universe.full().clone());
        sim.simulate(&stream(&config, &c17).patterns(64));
        let exact = sim.report().coverage_pct();
        assert!((e.estimate_pct - exact).abs() < 1e-9, "{e:?} vs {exact}");
        assert!(e.lo_pct <= exact && exact <= e.hi_pct);
    }

    #[test]
    fn estimate_is_thread_width_invariant() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let mut config = MixedSchemeConfig {
            threads: 1,
            ..MixedSchemeConfig::default()
        };
        let one = estimate_coverage(&c, &config, 128, 256, 95, 0xb157);
        config.threads = 4;
        let four = estimate_coverage(&c, &config, 128, 256, 95, 0xb157);
        assert_eq!(one, four);
    }

    #[test]
    fn wilson_brackets_the_point_estimate() {
        for (detected, n) in [(0usize, 50usize), (25, 50), (50, 50), (1, 3)] {
            let (p, lo, hi) = wilson_interval(detected, n, z_score(95));
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "{detected}/{n}");
        }
        // wider confidence, wider interval
        let (_, lo90, hi90) = wilson_interval(30, 40, z_score(90));
        let (_, lo99, hi99) = wilson_interval(30, 40, z_score(99));
        assert!(lo99 < lo90 && hi90 < hi99);
    }

    #[test]
    #[should_panic(expected = "unsupported confidence")]
    fn odd_confidence_levels_are_rejected() {
        z_score(42);
    }
}
