//! Model-generic fault subsystem for the LFSROM mixed-BIST reproduction.
//!
//! The paper evaluates its mixed test scheme on the stuck-at/stuck-open
//! universe only, while *arguing* about delay and bridging defects (§2.2,
//! §3.1, and the \[Hwa93\] ceiling citation). This crate turns those
//! arguments into workloads: one [`FaultModel`] value selects which
//! universe a job enumerates, grades and — where the model admits ATPG —
//! tops up deterministically, behind the same face the stuck-at flow has
//! always had.
//!
//! * [`FaultModel`] — the model selector (`stuck-at` is the default and
//!   keeps every digest, cache key and wire byte unchanged; `transition`
//!   grades launch-on-capture pattern *pairs*; `bridging` grades a
//!   reproducibly sampled short universe).
//! * [`ModelSim`] — one word-parallel simulator for any model, all three
//!   backed by the same [`WordSim`](bist_faultsim::WordSim) engine
//!   (64-pattern blocks, levelized cone propagation, fault dropping,
//!   bit-identical results at every `bist-par` width).
//! * [`serial_grade`] — the naive pattern-at-a-time oracles, for
//!   property-testing the packed engines per model.
//! * [`ModelSession`] — the mixed-scheme solve/sweep/curve flow over any
//!   model, delegating to [`bist_core::BistSession`] for the default one.
//! * [`estimate_coverage`] — seed-pinned stratified sampling of the
//!   stuck-at universe with a Wilson confidence interval: the cheap
//!   first answer a service returns before the exact run finishes.
//!
//! # Example
//!
//! ```
//! use bist_core::MixedSchemeConfig;
//! use bist_faultmodel::{FaultModel, ModelSession};
//!
//! let c17 = bist_netlist::iscas85::c17();
//! let model: FaultModel = "transition".parse().unwrap();
//! let mut session = ModelSession::new(&c17, MixedSchemeConfig::default(), model);
//! let solution = session.solve_at(8)?;
//! assert!(solution.generator.verify());
//! # Ok::<(), bist_core::MixedSchemeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimate;
mod model;
mod session;

pub use estimate::{estimate_coverage, CoverageEstimate};
pub use model::{
    serial_grade, FaultModel, ModelSim, ParseFaultModelError, DEFAULT_BRIDGE_PAIRS,
    DEFAULT_BRIDGE_SEED,
};
pub use session::ModelSession;
