use std::fmt;
use std::str::FromStr;

use bist_bridging::{BridgingFaultList, BridgingSim};
use bist_delay::{TransitionFaultList, TransitionSim};
use bist_fault::{FaultList, FaultStatus};
use bist_faultsim::{CoverageReport, FaultSim, SimCounters};
use bist_logicsim::Pattern;
use bist_netlist::Circuit;

/// Default number of sampled bridge sites when the CLI / spec says just
/// "bridging" without parameters.
pub const DEFAULT_BRIDGE_PAIRS: u32 = 256;

/// Default sampling seed for the bridging universe.
pub const DEFAULT_BRIDGE_SEED: u64 = 0x1dd9;

/// Which fault universe a job grades and tops up against.
///
/// The paper's 1995 evaluation only exercises the stuck-at/stuck-open
/// mixed model; its §2.2 and §3.1 *argue* that the deterministic suffix is
/// what carries "much more realistic and complex faults like delay ...
/// faults" and its ceiling citation \[Hwa93\] is about bridging defects
/// under Iddq. This type makes those two classes first-class engine
/// workloads so the claims can be measured instead of argued:
///
/// * [`FaultModel::StuckAt`] — the paper's mixed stuck-at/stuck-open
///   universe, graded one pattern at a time (the default; specs carrying
///   it hash and cache exactly as before the model existed).
/// * [`FaultModel::Transition`] — gate-level transition (gross-delay)
///   faults, graded launch-on-capture over *consecutive pattern pairs* of
///   the applied sequence.
/// * [`FaultModel::Bridging`] — a reproducibly sampled universe of
///   non-feedback wired-AND/wired-OR shorts, graded voltage-sense (with
///   Iddq excitation tracked on the side).
///
/// # Example
///
/// ```
/// use bist_faultmodel::FaultModel;
///
/// let m: FaultModel = "bridging:64:7".parse()?;
/// assert_eq!(m, FaultModel::Bridging { pairs: 64, seed: 7 });
/// assert_eq!(m.to_string().parse::<FaultModel>()?, m);
/// assert_eq!(FaultModel::default(), FaultModel::StuckAt);
/// # Ok::<(), bist_faultmodel::ParseFaultModelError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultModel {
    /// The paper's mixed stuck-at + stuck-open universe (the default).
    #[default]
    StuckAt,
    /// Gate-level transition (slow-to-rise / slow-to-fall) faults.
    Transition,
    /// Sampled non-feedback bridging (short) faults.
    Bridging {
        /// Number of bridge *sites* the universe samples (each site keeps
        /// the resolution the sampler drew for it).
        pairs: u32,
        /// Seed of the reproducible site sampler.
        seed: u64,
    },
}

impl FaultModel {
    /// The bridging model with the default universe parameters.
    pub fn bridging() -> Self {
        FaultModel::Bridging {
            pairs: DEFAULT_BRIDGE_PAIRS,
            seed: DEFAULT_BRIDGE_SEED,
        }
    }

    /// The model's bare name (no universe parameters): `stuck-at`,
    /// `transition` or `bridging`.
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::StuckAt => "stuck-at",
            FaultModel::Transition => "transition",
            FaultModel::Bridging { .. } => "bridging",
        }
    }

    /// True for the default ([`FaultModel::StuckAt`]) model — the one
    /// whose jobs hash, encode and cache exactly as they did before fault
    /// models existed.
    pub fn is_default(&self) -> bool {
        *self == FaultModel::StuckAt
    }

    /// Size of this model's fault universe on `circuit`.
    pub fn universe_len(&self, circuit: &Circuit) -> usize {
        match *self {
            FaultModel::StuckAt => FaultList::mixed_model(circuit).len(),
            FaultModel::Transition => TransitionFaultList::universe(circuit).len(),
            FaultModel::Bridging { pairs, seed } => {
                BridgingFaultList::sample(circuit, pairs as usize, seed).len()
            }
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultModel::StuckAt => f.write_str("stuck-at"),
            FaultModel::Transition => f.write_str("transition"),
            FaultModel::Bridging { pairs, seed } => {
                if pairs == DEFAULT_BRIDGE_PAIRS && seed == DEFAULT_BRIDGE_SEED {
                    f.write_str("bridging")
                } else {
                    write!(f, "bridging:{pairs}:{seed}")
                }
            }
        }
    }
}

/// Error parsing a [`FaultModel`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultModelError {
    input: String,
}

impl fmt::Display for ParseFaultModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown fault model `{}` (expected `stuck-at`, `transition` or `bridging[:pairs[:seed]]`)",
            self.input
        )
    }
}

impl std::error::Error for ParseFaultModelError {}

impl FromStr for FaultModel {
    type Err = ParseFaultModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseFaultModelError {
            input: s.to_string(),
        };
        match s {
            "stuck-at" | "stuckat" | "stuck_at" => return Ok(FaultModel::StuckAt),
            "transition" | "delay" => return Ok(FaultModel::Transition),
            "bridging" | "bridge" => return Ok(FaultModel::bridging()),
            _ => {}
        }
        let rest = s.strip_prefix("bridging:").ok_or_else(err)?;
        let (pairs_text, seed_text) = match rest.split_once(':') {
            Some((p, q)) => (p, Some(q)),
            None => (rest, None),
        };
        let pairs: u32 = pairs_text.parse().map_err(|_| err())?;
        let seed: u64 = match seed_text {
            Some(t) => t.parse().map_err(|_| err())?,
            None => DEFAULT_BRIDGE_SEED,
        };
        if pairs == 0 {
            return Err(err());
        }
        Ok(FaultModel::Bridging { pairs, seed })
    }
}

/// One fault simulator for any [`FaultModel`]: the dispatch face over
/// [`FaultSim`] (stuck-at/stuck-open), [`TransitionSim`] and
/// [`BridgingSim`], which all run on the same allocation-free
/// [`WordSim`](bist_faultsim::WordSim) engine underneath.
///
/// All shared semantics come with the engine: 64-pattern word blocks,
/// levelized cone propagation, fault dropping, first-detection indices,
/// and bit-identical grading at every `bist-par` width.
///
/// # Example
///
/// ```
/// use bist_faultmodel::{FaultModel, ModelSim};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let mut sim = ModelSim::new(&c17, FaultModel::Transition);
/// sim.simulate(&bist_lfsr::pseudo_random_patterns(bist_lfsr::paper_poly(), 5, 128));
/// assert!(sim.report().coverage_pct() > 50.0);
/// ```
#[derive(Debug)]
pub enum ModelSim<'c> {
    /// Stuck-at / stuck-open grading.
    StuckAt(FaultSim<'c>),
    /// Transition-delay grading over consecutive pattern pairs.
    Transition(TransitionSim<'c>),
    /// Bridging grading (voltage-sense, with Iddq excitation tracked).
    Bridging(BridgingSim<'c>),
}

impl<'c> ModelSim<'c> {
    /// Builds the model's standard universe on `circuit` and a simulator
    /// over it (pool width from `BIST_THREADS` / the machine).
    pub fn new(circuit: &'c Circuit, model: FaultModel) -> Self {
        match model {
            FaultModel::StuckAt => {
                ModelSim::StuckAt(FaultSim::new(circuit, FaultList::mixed_model(circuit)))
            }
            FaultModel::Transition => ModelSim::Transition(TransitionSim::new(
                circuit,
                TransitionFaultList::universe(circuit),
            )),
            FaultModel::Bridging { pairs, seed } => ModelSim::Bridging(BridgingSim::new(
                circuit,
                BridgingFaultList::sample(circuit, pairs as usize, seed),
            )),
        }
    }

    /// The model this simulator grades. Bridging parameters are not
    /// recoverable from the universe, so this reports the bare variant
    /// with the universe's actual size.
    pub fn model_name(&self) -> &'static str {
        match self {
            ModelSim::StuckAt(_) => "stuck-at",
            ModelSim::Transition(_) => "transition",
            ModelSim::Bridging(_) => "bridging",
        }
    }

    /// Sets the pool width for subsequent grading (`0` = automatic).
    /// Results never depend on this knob.
    pub fn set_threads(&mut self, threads: usize) {
        match self {
            ModelSim::StuckAt(s) => s.set_threads(threads),
            ModelSim::Transition(s) => s.set_threads(threads),
            ModelSim::Bridging(s) => s.set_threads(threads),
        }
    }

    /// Builder form of [`ModelSim::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Number of faults in the universe.
    pub fn universe_len(&self) -> usize {
        self.statuses().len()
    }

    /// Status of every fault, in universe order.
    pub fn statuses(&self) -> &[FaultStatus] {
        match self {
            ModelSim::StuckAt(s) => s.statuses(),
            ModelSim::Transition(s) => s.statuses(),
            ModelSim::Bridging(s) => s.statuses(),
        }
    }

    /// Status of fault `index`.
    pub fn status_of(&self, index: usize) -> FaultStatus {
        match self {
            ModelSim::StuckAt(s) => s.status_of(index),
            ModelSim::Transition(s) => s.status_of(index),
            ModelSim::Bridging(s) => s.status_of(index),
        }
    }

    /// Global index of the first pattern that detected fault `index`.
    pub fn first_detection(&self, index: usize) -> Option<u32> {
        match self {
            ModelSim::StuckAt(s) => s.first_detection(index),
            ModelSim::Transition(s) => s.first_detection(index),
            ModelSim::Bridging(s) => s.first_detection(index),
        }
    }

    /// Human-readable description of fault `index`.
    pub fn describe(&self, index: usize, circuit: &Circuit) -> Option<String> {
        match self {
            ModelSim::StuckAt(s) => s.faults().get(index).map(|f| f.describe(circuit)),
            ModelSim::Transition(s) => s.faults().get(index).map(|f| f.describe(circuit)),
            ModelSim::Bridging(s) => s.faults().get(index).map(|f| f.describe(circuit)),
        }
    }

    /// Number of patterns consumed so far.
    pub fn patterns_seen(&self) -> u32 {
        match self {
            ModelSim::StuckAt(s) => s.patterns_seen(),
            ModelSim::Transition(s) => s.patterns_seen(),
            ModelSim::Bridging(s) => s.patterns_seen(),
        }
    }

    /// The engine work counters. Deterministic at every thread width.
    pub fn counters(&self) -> SimCounters {
        match self {
            ModelSim::StuckAt(s) => s.counters(),
            ModelSim::Transition(s) => s.counters(),
            ModelSim::Bridging(s) => s.counters(),
        }
    }

    /// Iddq (excitation-only) coverage — meaningful for bridging only,
    /// `None` for the other models.
    pub fn iddq_coverage_pct(&self) -> Option<f64> {
        match self {
            ModelSim::Bridging(s) => Some(s.iddq_coverage_pct()),
            _ => None,
        }
    }

    /// Grades `patterns` as a continuation of everything fed so far
    /// (transition and stuck-open faults pair across call boundaries).
    /// Returns the number of newly detected faults.
    pub fn simulate(&mut self, patterns: &[Pattern]) -> usize {
        match self {
            ModelSim::StuckAt(s) => s.simulate(patterns),
            ModelSim::Transition(s) => s.simulate(patterns),
            ModelSim::Bridging(s) => s.simulate(patterns),
        }
    }

    /// Forgets all grading results and the sequence position.
    pub fn reset(&mut self) {
        match self {
            ModelSim::StuckAt(s) => s.reset(),
            ModelSim::Transition(s) => s.reset(),
            ModelSim::Bridging(s) => s.reset(),
        }
    }

    /// Coverage summary over the universe.
    pub fn report(&self) -> CoverageReport {
        match self {
            ModelSim::StuckAt(s) => s.report(),
            ModelSim::Transition(s) => s.report(),
            ModelSim::Bridging(s) => s.report(),
        }
    }
}

/// Grades `patterns` against `model`'s standard universe on `circuit`
/// with the naive pattern-at-a-time **serial oracles** — one independent
/// reference implementation per model, none of them sharing code with the
/// packed engine. Returns, per fault, the index of the first detecting
/// pattern.
///
/// This is the cross-model identity anchor: property tests pit
/// [`ModelSim`] (any width) against this function.
pub fn serial_grade(
    circuit: &Circuit,
    model: FaultModel,
    patterns: &[Pattern],
) -> Vec<Option<u32>> {
    match model {
        FaultModel::StuckAt => bist_faultsim::serial::grade_sequence(
            circuit,
            FaultList::mixed_model(circuit).faults(),
            patterns,
        ),
        FaultModel::Transition => {
            let universe = TransitionFaultList::universe(circuit);
            universe
                .iter()
                .map(|&fault| {
                    // pattern 0 has no predecessor: nothing can launch, so
                    // grading starts at the pair (0, 1)
                    (1..patterns.len())
                        .find(|&t| {
                            bist_delay::serial::detects(
                                circuit,
                                fault,
                                &patterns[t - 1],
                                &patterns[t],
                            )
                        })
                        .map(|t| t as u32)
                })
                .collect()
        }
        FaultModel::Bridging { pairs, seed } => {
            let universe = BridgingFaultList::sample(circuit, pairs as usize, seed);
            bist_bridging::serial::grade_sequence(circuit, universe.faults(), patterns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trips() {
        let cases = [
            ("stuck-at", FaultModel::StuckAt),
            ("transition", FaultModel::Transition),
            ("bridging", FaultModel::bridging()),
            (
                "bridging:64",
                FaultModel::Bridging {
                    pairs: 64,
                    seed: DEFAULT_BRIDGE_SEED,
                },
            ),
            ("bridging:64:7", FaultModel::Bridging { pairs: 64, seed: 7 }),
        ];
        for (text, model) in cases {
            assert_eq!(text.parse::<FaultModel>().unwrap(), model, "{text}");
            let shown = model.to_string();
            assert_eq!(shown.parse::<FaultModel>().unwrap(), model, "{shown}");
        }
        assert_eq!(FaultModel::bridging().to_string(), "bridging");
        for bad in ["", "stuck", "bridging:", "bridging:0", "bridging:8:x"] {
            assert!(bad.parse::<FaultModel>().is_err(), "{bad}");
        }
    }

    #[test]
    fn default_model_is_stuck_at() {
        assert!(FaultModel::default().is_default());
        assert!(!FaultModel::Transition.is_default());
        assert!(!FaultModel::bridging().is_default());
    }

    #[test]
    fn universes_are_non_empty_on_c17() {
        let c17 = bist_netlist::iscas85::c17();
        for model in [
            FaultModel::StuckAt,
            FaultModel::Transition,
            FaultModel::bridging(),
        ] {
            let n = model.universe_len(&c17);
            assert!(n > 0, "{model}: empty universe");
            assert_eq!(ModelSim::new(&c17, model).universe_len(), n, "{model}");
        }
    }

    #[test]
    fn dispatch_matches_the_dedicated_simulators() {
        let c17 = bist_netlist::iscas85::c17();
        let patterns = bist_lfsr::pseudo_random_patterns(bist_lfsr::paper_poly(), 5, 96);

        let mut stuck = FaultSim::new(&c17, FaultList::mixed_model(&c17));
        stuck.simulate(&patterns);
        let mut via = ModelSim::new(&c17, FaultModel::StuckAt);
        via.simulate(&patterns);
        assert_eq!(via.statuses(), stuck.statuses());

        let mut transition = TransitionSim::new(&c17, TransitionFaultList::universe(&c17));
        transition.simulate(&patterns);
        let mut via = ModelSim::new(&c17, FaultModel::Transition);
        via.simulate(&patterns);
        assert_eq!(via.statuses(), transition.statuses());

        let universe = BridgingFaultList::sample(&c17, 40, 7);
        let mut bridging = BridgingSim::new(&c17, universe);
        bridging.simulate(&patterns);
        let mut via = ModelSim::new(&c17, FaultModel::Bridging { pairs: 40, seed: 7 });
        via.simulate(&patterns);
        assert_eq!(via.statuses(), bridging.statuses());
        assert_eq!(
            via.iddq_coverage_pct(),
            Some(bridging.iddq_coverage_pct()),
            "iddq must flow through the dispatch"
        );
    }

    #[test]
    fn serial_oracle_agrees_with_the_packed_engine_on_c17() {
        let c17 = bist_netlist::iscas85::c17();
        let patterns = bist_lfsr::pseudo_random_patterns(bist_lfsr::paper_poly(), 5, 48);
        for model in [
            FaultModel::StuckAt,
            FaultModel::Transition,
            FaultModel::Bridging { pairs: 30, seed: 3 },
        ] {
            let serial = serial_grade(&c17, model, &patterns);
            let mut packed = ModelSim::new(&c17, model);
            packed.simulate(&patterns);
            for (i, &expect) in serial.iter().enumerate() {
                assert_eq!(
                    expect,
                    packed.first_detection(i),
                    "{model}: fault {} disagrees",
                    packed.describe(i, &c17).unwrap()
                );
            }
        }
    }
}
