//! The mixed-scheme flow generalized over [`FaultModel`].

use std::collections::BTreeMap;
use std::rc::Rc;

use bist_bridging::{BridgingFaultList, BridgingSim};
use bist_core::{
    BistSession, CollapseMode, MixedGenerator, MixedSchemeConfig, MixedSchemeError, MixedSolution,
    SessionStats, SweepSummary,
};
use bist_delay::{
    DelayAtpgOptions, DelayRun, DelayTestGenerator, TransitionFaultList, TransitionSim,
};
use bist_faultsim::{CoverageCurve, CoverageReport};
use bist_lfsr::{Lfsr, ScanExpander};
use bist_netlist::Circuit;

use crate::model::FaultModel;

/// The incremental mixed-BIST flow for one circuit under test and one
/// [`FaultModel`] — the model-generic face the engine drives.
///
/// * [`FaultModel::StuckAt`] delegates every call to [`BistSession`]
///   unchanged, so default-model jobs stay byte-identical to the
///   pre-model pipeline (same solutions, same work counters). That
///   session grades representatives only by default
///   ([`CollapseMode::InFlow`]) and projects back at every report
///   boundary, so the delegation stays byte-identical *and* cheaper;
///   [`ModelSession::with_collapse_mode`] pins the mode explicitly.
/// * [`FaultModel::Transition`] runs the same solve shape on the
///   transition universe: incremental pair-wise prefix grading, then the
///   two-pattern deterministic ATPG ([`DelayTestGenerator`]) as the
///   top-up, then [`MixedGenerator`] synthesis over the emitted pairs.
/// * [`FaultModel::Bridging`] is the \[Hwa93\] measurement: the hardware
///   generator is the **stuck-at** solution's (shorts are not ATPG
///   targets in this flow), and the bridge universe is graded against
///   that generator's full mixed sequence — the solution's coverage
///   figures answer "how much of a realistic short universe does a
///   stuck-at-derived BIST sequence detect?".
///
/// Prefix requests advance one shared simulator monotonically; a request
/// below the front re-grades from scratch and is counted in
/// [`SessionStats::patterns_resimulated`].
///
/// # Example
///
/// ```
/// use bist_core::MixedSchemeConfig;
/// use bist_faultmodel::{FaultModel, ModelSession};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let mut session = ModelSession::new(&c17, MixedSchemeConfig::default(), FaultModel::Transition);
/// let solution = session.solve_at(16)?;
/// assert!(solution.coverage.coverage_pct() > 90.0);
/// assert_eq!(solution.det_len % 2, 0, "delay tests come in pairs");
/// # Ok::<(), bist_core::MixedSchemeError>(())
/// ```
#[derive(Debug)]
pub struct ModelSession<'c> {
    model: FaultModel,
    inner: Inner<'c>,
}

#[derive(Debug)]
enum Inner<'c> {
    StuckAt(Box<BistSession<'c>>),
    Transition(Box<TransitionSession<'c>>),
    Bridging(Box<BridgingSession<'c>>),
}

impl<'c> ModelSession<'c> {
    /// Opens a session for `circuit` grading `model`'s universe, with
    /// the stuck-at collapse mode taken from the environment (see
    /// [`CollapseMode::from_env`]).
    pub fn new(circuit: &'c Circuit, config: MixedSchemeConfig, model: FaultModel) -> Self {
        Self::with_collapse_mode(circuit, config, model, CollapseMode::from_env())
    }

    /// Opens a session with an explicit stuck-at [`CollapseMode`]. The
    /// mode reaches every flow that rides a stuck-at universe — the
    /// stuck-at model itself and the bridging flow's hardware solve;
    /// transition grading has no stuck-at universe, so the mode is
    /// inert there. Committed results are bit-identical in every mode.
    pub fn with_collapse_mode(
        circuit: &'c Circuit,
        config: MixedSchemeConfig,
        model: FaultModel,
        mode: CollapseMode,
    ) -> Self {
        let inner = match model {
            FaultModel::StuckAt => {
                Inner::StuckAt(Box::new(BistSession::with_mode(circuit, config, mode)))
            }
            FaultModel::Transition => {
                Inner::Transition(Box::new(TransitionSession::new(circuit, config)))
            }
            FaultModel::Bridging { pairs, seed } => Inner::Bridging(Box::new(
                BridgingSession::new(circuit, config, pairs, seed, mode),
            )),
        };
        ModelSession { model, inner }
    }

    /// The collapsed stuck-at universe attached to the session, when
    /// one is ([`FaultModel::StuckAt`] in [`CollapseMode::InFlow`]).
    pub fn collapse(&self) -> Option<&bist_fault::CollapsedUniverse> {
        match &self.inner {
            Inner::StuckAt(s) => s.collapse(),
            _ => None,
        }
    }

    /// The model this session grades.
    pub fn fault_model(&self) -> FaultModel {
        self.model
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        match &self.inner {
            Inner::StuckAt(s) => s.circuit(),
            Inner::Transition(s) => s.circuit,
            Inner::Bridging(s) => s.circuit,
        }
    }

    /// Size of the fault universe the session grades against.
    pub fn universe_len(&self) -> usize {
        match &self.inner {
            Inner::StuckAt(s) => s.faults().len(),
            Inner::Transition(s) => s.universe.len(),
            Inner::Bridging(s) => s.universe.len(),
        }
    }

    /// Work counters. For the bridging model these merge the inner
    /// stuck-at session's counters with the bridge-grading ones.
    pub fn stats(&self) -> SessionStats {
        match &self.inner {
            Inner::StuckAt(s) => s.stats(),
            Inner::Transition(s) => s.stats,
            Inner::Bridging(s) => s.stats(),
        }
    }

    /// Solves the mixed scheme for prefix length `p` against the model's
    /// universe.
    ///
    /// # Errors
    ///
    /// Returns [`MixedSchemeError`] when the hardware generator cannot be
    /// built.
    pub fn solve_at(&mut self, p: usize) -> Result<MixedSolution, MixedSchemeError> {
        match &mut self.inner {
            Inner::StuckAt(s) => s.solve_at(p),
            Inner::Transition(s) => s.solve_at(p),
            Inner::Bridging(s) => s.solve_at(p),
        }
    }

    /// Solves every prefix length of `prefix_lengths` (results in request
    /// order), sharing the session's incremental state: checkpoints are
    /// processed ascending, so each prefix pattern is graded at most once.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MixedSchemeError`] encountered.
    pub fn sweep(&mut self, prefix_lengths: &[usize]) -> Result<SweepSummary, MixedSchemeError> {
        if let Inner::StuckAt(s) = &mut self.inner {
            return s.sweep(prefix_lengths);
        }
        let mut ascending: Vec<usize> = prefix_lengths.to_vec();
        ascending.sort_unstable();
        ascending.dedup();
        let mut solved: BTreeMap<usize, MixedSolution> = BTreeMap::new();
        for &p in &ascending {
            solved.insert(p, self.solve_at(p)?);
        }
        let solutions = prefix_lengths
            .iter()
            .map(|&p| match solved.get(&p) {
                Some(s) => Ok(s.clone()),
                None => self.solve_at(p),
            })
            .collect::<Result<_, _>>()?;
        Ok(SweepSummary::from_solutions(solutions))
    }

    /// Coverage-versus-length curve of the pure pseudo-random sequence
    /// over the model's universe (the paper's Figure 4, per model).
    pub fn random_coverage_curve(&mut self, checkpoints: &[usize]) -> CoverageCurve {
        match &mut self.inner {
            Inner::StuckAt(s) => s.random_coverage_curve(checkpoints),
            Inner::Transition(s) => curve(checkpoints, |cp| s.statuses_at(cp)),
            Inner::Bridging(s) => curve(checkpoints, |cp| s.statuses_at(cp)),
        }
    }
}

fn curve(
    checkpoints: &[usize],
    mut statuses_at: impl FnMut(usize) -> Vec<bist_fault::FaultStatus>,
) -> CoverageCurve {
    let points = checkpoints
        .iter()
        .map(|&cp| {
            let statuses = statuses_at(cp);
            (cp, CoverageReport::from_statuses(&statuses).coverage_pct())
        })
        .collect();
    CoverageCurve::new(points)
}

/// The scheme's pseudo-random stream — identical to the one
/// [`BistSession`] feeds its own simulator (the coverage estimator
/// grades a sample of the universe against the very same stream).
pub(crate) fn stream(config: &MixedSchemeConfig, circuit: &Circuit) -> ScanExpander {
    ScanExpander::new(Lfsr::fibonacci(config.poly, 1), circuit.inputs().len())
}

/// Transition-model flow: incremental pair-wise prefix grading plus the
/// two-pattern deterministic top-up, cached per prefix length.
#[derive(Debug)]
struct TransitionSession<'c> {
    circuit: &'c Circuit,
    config: MixedSchemeConfig,
    universe: TransitionFaultList,
    sim: TransitionSim<'c>,
    expander: ScanExpander,
    simulated: usize,
    /// Deterministic top-ups keyed by prefix length: a delay top-up pairs
    /// its first vector with the *last prefix pattern*, so — unlike the
    /// stuck-at flow — equal open frontiers at different `p` may still
    /// need different sequences.
    runs: BTreeMap<usize, Rc<DelayRun>>,
    stats: SessionStats,
}

impl<'c> TransitionSession<'c> {
    fn new(circuit: &'c Circuit, config: MixedSchemeConfig) -> Self {
        let universe = TransitionFaultList::universe(circuit);
        let sim = TransitionSim::new(circuit, universe.clone()).with_threads(config.threads);
        let expander = stream(&config, circuit);
        TransitionSession {
            circuit,
            config,
            universe,
            sim,
            expander,
            simulated: 0,
            runs: BTreeMap::new(),
            stats: SessionStats::default(),
        }
    }

    fn statuses_at(&mut self, p: usize) -> Vec<bist_fault::FaultStatus> {
        if p >= self.simulated {
            let chunk = self.expander.patterns(p - self.simulated);
            self.sim.simulate(&chunk);
            self.stats.patterns_simulated += chunk.len();
            self.simulated = p;
            self.sim.statuses().to_vec()
        } else {
            // below the incremental front: re-grade from scratch without
            // disturbing the shared simulator
            let mut sim = TransitionSim::new(self.circuit, self.universe.clone())
                .with_threads(self.config.threads);
            let prefix = stream(&self.config, self.circuit).patterns(p);
            sim.simulate(&prefix);
            self.stats.patterns_resimulated += p;
            sim.statuses().to_vec()
        }
    }

    fn run_for(&mut self, p: usize) -> Rc<DelayRun> {
        if let Some(hit) = self.runs.get(&p) {
            self.stats.atpg_cache_hits += 1;
            return Rc::clone(hit);
        }
        let prefix = stream(&self.config, self.circuit).patterns(p);
        let run = Rc::new(
            DelayTestGenerator::new(
                self.circuit,
                self.universe.clone(),
                DelayAtpgOptions {
                    podem: self.config.atpg.podem,
                    no_compaction: self.config.atpg.no_compaction,
                    prefix,
                },
            )
            .run(),
        );
        self.stats.atpg_runs += 1;
        self.runs.insert(p, Rc::clone(&run));
        run
    }

    fn solve_at(&mut self, p: usize) -> Result<MixedSolution, MixedSchemeError> {
        let statuses = self.statuses_at(p);
        let prefix_coverage = CoverageReport::from_statuses(&statuses);
        let run = self.run_for(p);
        let det = run.sequence();
        let generator =
            MixedGenerator::build(self.circuit.inputs().len(), self.config.poly, p, &det)?;
        debug_assert!(generator.verify(), "mixed generator failed replay");
        Ok(MixedSolution {
            prefix_len: p,
            det_len: det.len(),
            coverage: run.report,
            prefix_coverage,
            generator_area_mm2: generator.area_mm2(&self.config.area),
            chip_area_mm2: self.config.area.circuit_area_mm2(self.circuit),
            generator,
        })
    }
}

/// Bridging-model flow: the hardware is the stuck-at solution's; the
/// bridge universe is graded against its full mixed sequence.
#[derive(Debug)]
struct BridgingSession<'c> {
    circuit: &'c Circuit,
    config: MixedSchemeConfig,
    universe: BridgingFaultList,
    sim: BridgingSim<'c>,
    expander: ScanExpander,
    simulated: usize,
    stuck: BistSession<'c>,
    /// Bridge-grading counters; the ATPG side lives in `stuck`.
    extra: SessionStats,
}

impl<'c> BridgingSession<'c> {
    fn new(
        circuit: &'c Circuit,
        config: MixedSchemeConfig,
        pairs: u32,
        seed: u64,
        mode: CollapseMode,
    ) -> Self {
        let universe = BridgingFaultList::sample(circuit, pairs as usize, seed);
        let sim = BridgingSim::new(circuit, universe.clone()).with_threads(config.threads);
        let expander = stream(&config, circuit);
        let stuck = BistSession::with_mode(circuit, config.clone(), mode);
        BridgingSession {
            circuit,
            config,
            universe,
            sim,
            expander,
            simulated: 0,
            stuck,
            extra: SessionStats::default(),
        }
    }

    fn stats(&self) -> SessionStats {
        let s = self.stuck.stats();
        SessionStats {
            patterns_simulated: s.patterns_simulated + self.extra.patterns_simulated,
            patterns_resimulated: s.patterns_resimulated + self.extra.patterns_resimulated,
            ..s
        }
    }

    fn statuses_at(&mut self, p: usize) -> Vec<bist_fault::FaultStatus> {
        if p >= self.simulated {
            let chunk = self.expander.patterns(p - self.simulated);
            self.sim.simulate(&chunk);
            self.extra.patterns_simulated += chunk.len();
            self.simulated = p;
            self.sim.statuses().to_vec()
        } else {
            let mut sim = BridgingSim::new(self.circuit, self.universe.clone())
                .with_threads(self.config.threads);
            let prefix = stream(&self.config, self.circuit).patterns(p);
            sim.simulate(&prefix);
            self.extra.patterns_resimulated += p;
            sim.statuses().to_vec()
        }
    }

    fn solve_at(&mut self, p: usize) -> Result<MixedSolution, MixedSchemeError> {
        let statuses = self.statuses_at(p);
        let prefix_coverage = CoverageReport::from_statuses(&statuses);
        let stuck = self.stuck.solve_at(p)?;
        // grade the bridge universe over the *full* mixed sequence the
        // stuck-at hardware emits: prefix, then deterministic suffix
        let mut graded =
            BridgingSim::new(self.circuit, self.universe.clone()).with_threads(self.config.threads);
        let prefix = stream(&self.config, self.circuit).patterns(p);
        graded.simulate(&prefix);
        graded.simulate(stuck.generator.deterministic());
        self.extra.patterns_resimulated += p + stuck.det_len;
        Ok(MixedSolution {
            coverage: graded.report(),
            prefix_coverage,
            ..stuck
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_sessions_delegate_byte_for_byte() {
        let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
        let mut model = ModelSession::new(&c, MixedSchemeConfig::default(), FaultModel::StuckAt);
        let mut plain = BistSession::new(&c, MixedSchemeConfig::default());
        for p in [0usize, 60] {
            let a = model.solve_at(p).expect("model solve");
            let b = plain.solve_at(p).expect("plain solve");
            assert_eq!(a.det_len, b.det_len, "p={p}");
            assert_eq!(
                a.generator.deterministic(),
                b.generator.deterministic(),
                "p={p}"
            );
            assert_eq!(a.coverage, b.coverage, "p={p}");
            assert_eq!(a.prefix_coverage, b.prefix_coverage, "p={p}");
        }
        assert_eq!(model.stats(), plain.stats());
        assert_eq!(model.universe_len(), plain.faults().len());
    }

    #[test]
    fn transition_solutions_verify_and_pair_up() {
        let c17 = bist_netlist::iscas85::c17();
        let mut session =
            ModelSession::new(&c17, MixedSchemeConfig::default(), FaultModel::Transition);
        for p in [0usize, 16] {
            let s = session.solve_at(p).expect("solve succeeds");
            assert_eq!(s.prefix_len, p);
            assert_eq!(s.det_len % 2, 0, "p={p}: delay tests come in pairs");
            assert!(s.generator.verify(), "p={p}");
            assert!(
                s.coverage.coverage_pct() >= s.prefix_coverage.coverage_pct(),
                "p={p}"
            );
            assert_eq!(s.coverage.undetected, 0, "p={p}: c17 is fully testable");
        }
        assert_eq!(session.stats().atpg_runs, 2);
        // same point again: answered from the per-prefix run cache
        session.solve_at(16).expect("solve succeeds");
        assert_eq!(session.stats().atpg_cache_hits, 1);
    }

    #[test]
    fn transition_non_monotone_matches_fresh_session() {
        let c17 = bist_netlist::iscas85::c17();
        let cfg = MixedSchemeConfig::default();
        let mut forward = ModelSession::new(&c17, cfg.clone(), FaultModel::Transition);
        let a16 = forward.solve_at(16).expect("solve succeeds");
        let a8 = forward.solve_at(8).expect("below the front");
        assert!(forward.stats().patterns_resimulated > 0);

        let mut fresh = ModelSession::new(&c17, cfg, FaultModel::Transition);
        let b8 = fresh.solve_at(8).expect("solve succeeds");
        let b16 = fresh.solve_at(16).expect("solve succeeds");
        assert_eq!(a8.det_len, b8.det_len);
        assert_eq!(a8.coverage, b8.coverage);
        assert_eq!(a16.det_len, b16.det_len);
        assert_eq!(a16.coverage, b16.coverage);
    }

    #[test]
    fn bridging_rides_the_stuck_at_hardware() {
        let c17 = bist_netlist::iscas85::c17();
        let model = FaultModel::Bridging { pairs: 40, seed: 7 };
        let mut session = ModelSession::new(&c17, MixedSchemeConfig::default(), model);
        let mut stuck = BistSession::new(&c17, MixedSchemeConfig::default());
        let p = 16;
        let bridge = session.solve_at(p).expect("solve succeeds");
        let sa = stuck.solve_at(p).expect("solve succeeds");
        // identical hardware: the generator is the stuck-at solution's
        assert_eq!(bridge.det_len, sa.det_len);
        assert_eq!(
            bridge.generator.deterministic(),
            sa.generator.deterministic()
        );
        assert_eq!(bridge.generator_area_mm2, sa.generator_area_mm2);
        // but coverage is measured over the bridge universe
        assert_eq!(bridge.coverage.total(), session.universe_len());
        assert!(
            bridge.coverage.detected >= bridge.prefix_coverage.detected,
            "the deterministic suffix can only add detections"
        );
    }

    #[test]
    fn curves_are_monotone_for_every_model() {
        let c17 = bist_netlist::iscas85::c17();
        for model in [
            FaultModel::StuckAt,
            FaultModel::Transition,
            FaultModel::Bridging { pairs: 40, seed: 7 },
        ] {
            let mut session = ModelSession::new(&c17, MixedSchemeConfig::default(), model);
            let curve = session.random_coverage_curve(&[0, 8, 16, 32, 64]);
            assert!(curve.is_monotone(), "{model}");
            assert_eq!(curve.points()[0].1, 0.0, "{model}: empty prefix");
            assert!(curve.final_coverage().expect("non-empty") > 0.0, "{model}");
        }
    }

    #[test]
    fn sweep_preserves_request_order() {
        let c17 = bist_netlist::iscas85::c17();
        let mut session =
            ModelSession::new(&c17, MixedSchemeConfig::default(), FaultModel::Transition);
        let summary = session.sweep(&[16, 0, 8]).expect("sweep succeeds");
        let ps: Vec<usize> = summary.solutions().iter().map(|s| s.prefix_len).collect();
        assert_eq!(ps, vec![16, 0, 8]);
        // ascending processing: each prefix pattern graded once
        assert_eq!(session.stats().patterns_simulated, 16);
    }
}
