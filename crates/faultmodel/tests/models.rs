//! Cross-model contract of the fault subsystem: for every
//! [`FaultModel`] the packed word-parallel engine agrees with the naive
//! serial oracle fault for fault at every pool width, and the coverage
//! a fixed LFSR sequence reaches on the reference circuits is pinned so
//! simulator changes cannot silently move the numbers the docs and the
//! paper comparison quote.

use bist_core::prelude::*;
use bist_faultmodel::{serial_grade, FaultModel, ModelSim};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bridging kept small so the serial oracle stays fast.
const MODELS: [FaultModel; 3] = [
    FaultModel::StuckAt,
    FaultModel::Transition,
    FaultModel::Bridging {
        pairs: 64,
        seed: 0x1dd9,
    },
];

fn random_patterns(circuit: &Circuit, n: usize, seed: u64) -> Vec<Pattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = circuit.inputs().len();
    (0..n).map(|_| Pattern::random(&mut rng, width)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn packed_engines_match_the_serial_oracle_for_every_model(seed in any::<u64>()) {
        for circuit in [bist_netlist::iscas85::c17(), bist_netlist::iscas89::s27()] {
            let patterns = random_patterns(&circuit, 48, seed);
            for model in MODELS {
                let serial = serial_grade(&circuit, model, &patterns);
                for width in [1, 2, 4] {
                    let mut sim = ModelSim::new(&circuit, model).with_threads(width);
                    sim.simulate(&patterns);
                    prop_assert_eq!(serial.len(), sim.universe_len());
                    for (i, &reference) in serial.iter().enumerate() {
                        prop_assert_eq!(
                            reference,
                            sim.first_detection(i),
                            "{} fault {i} of {} disagrees at width {width}",
                            model,
                            circuit.name()
                        );
                    }
                }
            }
        }
    }
}

/// Detected/universe counts of the flow's default LFSR sequence —
/// pinned, so a simulator change that moves them is a loud diff, not a
/// silent drift.
#[test]
fn pinned_coverage_of_the_default_lfsr_sequence() {
    let poly = MixedSchemeConfig::default().poly;
    let expect = [
        ("c432", FaultModel::StuckAt, (806usize, 1159usize)),
        ("c432", FaultModel::Transition, (627, 946)),
        ("c432", FaultModel::bridging(), (241, 256)),
        ("s27", FaultModel::StuckAt, (26, 55)),
        ("s27", FaultModel::Transition, (20, 44)),
        ("s27", FaultModel::bridging(), (60, 102)),
    ];
    let mut failed = false;
    for (name, model, (detected, universe)) in expect {
        let circuit =
            bist_netlist::iscas85::circuit(name).unwrap_or_else(bist_netlist::iscas89::s27);
        let patterns = pseudo_random_patterns(poly, circuit.inputs().len(), 256);
        let mut sim = ModelSim::new(&circuit, model);
        sim.simulate(&patterns);
        let report = sim.report();
        println!(
            "(\"{}\", {:?}, ({}, {})),",
            name,
            model,
            report.detected,
            report.total()
        );
        failed |= (report.detected, report.total()) != (detected, universe);
    }
    assert!(!failed, "a pinned coverage number moved (see stdout)");
}
