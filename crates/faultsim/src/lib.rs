//! PPSFP fault simulation for the LFSROM mixed-BIST reproduction.
//!
//! Implements *parallel-pattern single-fault propagation*: 64 patterns are
//! simulated bit-parallel through the good machine, then each live fault is
//! injected and only its fan-out cone re-evaluated, comparing primary
//! outputs to the good machine. Faults are dropped on first detection.
//! On top of the bit-parallelism the live faults of every block are
//! sharded across a work-stealing pool (`bist-par`; `BIST_THREADS` or
//! [`FaultSim::with_threads`]) with per-worker cone scratch and a
//! deterministic fault-order merge, so grading results are bit-identical
//! at every thread count.
//!
//! Both fault classes of the paper's model are graded:
//!
//! * **stuck-at** — classic single-pattern detection;
//! * **stuck-open** — two-pattern detection over *consecutive* patterns of
//!   the sequence (see [`bist_fault`] for the transistor-level semantics).
//!   The simulator tracks the previous pattern across block and call
//!   boundaries, so a sequence graded in chunks behaves identically to one
//!   graded in a single call. Initialization uses good-machine values
//!   (single-fault, non-robust two-pattern semantics).
//!
//! The crate also contains [`serial`] — a deliberately naive
//! pattern-at-a-time reference simulator used as the oracle in property
//! tests — and [`CoverageReport`]/[`CoverageCurve`] reporting types used by
//! the experiment harness to regenerate the paper's Figures 4 and 5.
//!
//! # Example
//!
//! ```
//! use bist_fault::FaultList;
//! use bist_faultsim::FaultSim;
//! use bist_logicsim::Pattern;
//!
//! let c17 = bist_netlist::iscas85::c17();
//! let faults = FaultList::stuck_at_collapsed(&c17);
//! let mut sim = FaultSim::new(&c17, faults);
//! // grade the exhaustive pattern set
//! let patterns: Vec<Pattern> =
//!     (0u32..32).map(|v| Pattern::from_fn(5, |i| (v >> i) & 1 == 1)).collect();
//! sim.simulate(&patterns);
//! assert_eq!(sim.report().coverage_pct(), 100.0); // c17 has no redundancy
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ppsfp;
mod report;
pub mod serial;
mod testability;
mod wordsim;

pub use ppsfp::FaultSim;
pub use report::{CoverageCurve, CoverageReport};
pub use testability::Testability;
pub use wordsim::{BlockCtx, Seeds, SimCounters, WordFault, WordSim};
