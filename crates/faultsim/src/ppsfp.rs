use bist_fault::{CollapsedUniverse, Fault, FaultList, FaultStatus};
use bist_logicsim::Pattern;
use bist_netlist::{Circuit, NodeId};

use crate::wordsim::{BlockCtx, Seeds, SimCounters, WordFault, WordSim};

/// Parallel-pattern single-fault-propagation simulator with fault dropping
/// for the paper's stuck-at + stuck-open universe.
///
/// Create one per (circuit, fault list) pair, feed it patterns with
/// [`FaultSim::simulate`] — in one call or incrementally; the engine keeps
/// the sequence position and the previous pattern, so stuck-open pairs
/// spanning call boundaries are honoured — then read results via
/// [`FaultSim::report`], [`FaultSim::status_of`] and
/// [`FaultSim::first_detection`].
///
/// This is the stuck-at/stuck-open instantiation of the model-generic
/// [`WordSim`] engine: the [`Fault`] model contributes only the faulty
/// seed words (see the [`WordFault`] impl below); everything else —
/// flattened-graph good machine, allocation-free levelized cone
/// propagation, live-list fault dropping, `bist-par` sharding with
/// fault-order merge (**bit-identical at every thread count**), carry
/// checkpoints — lives in the shared engine.
#[derive(Debug)]
pub struct FaultSim<'c> {
    /// The universe, kept in list form for [`FaultSim::faults`] /
    /// [`FaultSim::open_faults`] (the engine holds its own flat copy).
    list: FaultList,
    inner: WordSim<'c, Fault>,
}

impl<'c> FaultSim<'c> {
    /// Creates a simulator grading `faults` on `circuit`, with the pool
    /// width taken from `BIST_THREADS` / the machine.
    pub fn new(circuit: &'c Circuit, faults: FaultList) -> Self {
        let flat: Vec<Fault> = faults.iter().copied().collect();
        FaultSim {
            list: faults,
            inner: WordSim::new(circuit, flat),
        }
    }

    /// Re-creates a simulator mid-sequence from a carry checkpoint: the
    /// per-fault `statuses` and good-machine `carry` bits recorded after
    /// exactly `patterns_seen` patterns of some sequence (see
    /// [`FaultSim::carry_bits`]). Feeding the remainder of that sequence
    /// behaves exactly like one simulator that consumed it end to end,
    /// except that [`FaultSim::first_detection`] is only populated for
    /// faults detected *after* the resume point (earlier detections carry
    /// a status but no index).
    pub fn resume(
        circuit: &'c Circuit,
        faults: FaultList,
        statuses: &[FaultStatus],
        carry: &[bool],
        patterns_seen: u32,
    ) -> Self {
        let flat: Vec<Fault> = faults.iter().copied().collect();
        FaultSim {
            list: faults,
            inner: WordSim::resume(circuit, flat, statuses, carry, patterns_seen),
        }
    }

    /// Sets the pool width for subsequent [`FaultSim::simulate`] calls
    /// (`0` = automatic: `BIST_THREADS` or the machine width). Grading
    /// results never depend on this knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.inner.set_threads(threads);
    }

    /// Pretends the machine has `n` hardware threads (see
    /// `WordSim::set_hw_threads`): keeps the sharded path under test on
    /// boxes narrower than the test's pool.
    #[cfg(test)]
    pub(crate) fn set_hw_threads(&mut self, n: usize) {
        self.inner.set_hw_threads(n);
    }

    /// Builder form of [`FaultSim::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// The pool width grading currently uses.
    pub fn threads(&self) -> usize {
        self.inner.threads()
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.inner.circuit()
    }

    /// The fault universe being graded.
    pub fn faults(&self) -> &FaultList {
        &self.list
    }

    /// Status of fault `index`.
    pub fn status_of(&self, index: usize) -> FaultStatus {
        self.inner.status_of(index)
    }

    /// All statuses, parallel to [`FaultSim::faults`].
    pub fn statuses(&self) -> &[FaultStatus] {
        self.inner.statuses()
    }

    /// Overrides the status of fault `index` (the ATPG uses this to mark
    /// redundant or aborted faults).
    pub fn set_status(&mut self, index: usize, status: FaultStatus) {
        self.inner.set_status(index, status);
    }

    /// Global index (0-based position in the full sequence fed so far) of
    /// the first pattern that detected fault `index`.
    pub fn first_detection(&self, index: usize) -> Option<u32> {
        self.inner.first_detection(index)
    }

    /// Number of patterns consumed so far.
    pub fn patterns_seen(&self) -> u32 {
        self.inner.patterns_seen()
    }

    /// The work performed so far (blocks, good-machine gate evaluations,
    /// cone events). Deterministic at every thread width.
    pub fn counters(&self) -> SimCounters {
        self.inner.counters()
    }

    /// The good-machine node values after the last consumed pattern — the
    /// stuck-open carry. Together with [`FaultSim::statuses`] and
    /// [`FaultSim::patterns_seen`] this is a complete mid-sequence
    /// checkpoint for [`FaultSim::resume`].
    pub fn carry_bits(&self) -> &[bool] {
        self.inner.carry_bits()
    }

    /// Forgets all grading results and the sequence position.
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Grades `patterns` (in order, continuing any previously fed
    /// sequence). Returns the number of newly detected faults.
    pub fn simulate(&mut self, patterns: &[Pattern]) -> usize {
        self.inner.simulate(patterns)
    }

    /// Coverage summary over the whole universe.
    pub fn report(&self) -> crate::CoverageReport {
        self.inner.report()
    }

    /// The per-fault statuses of the *full* stuck-at universe, for a
    /// simulator grading only `universe`'s representatives: each full
    /// fault reports its class representative's status. Because every
    /// collapsing step is a true equivalence, this is bit-identical to
    /// grading the full universe directly.
    ///
    /// # Panics
    ///
    /// Panics if this simulator is not grading exactly
    /// `universe.representatives()`.
    pub fn statuses_projected(&self, universe: &CollapsedUniverse) -> Vec<FaultStatus> {
        assert_eq!(
            &self.list,
            universe.representatives(),
            "simulator must grade the universe's representative list"
        );
        universe.project(self.inner.statuses())
    }

    /// Coverage summary over the *full* stuck-at universe, for a
    /// simulator grading only `universe`'s representatives (see
    /// [`FaultSim::statuses_projected`]).
    pub fn report_projected(&self, universe: &CollapsedUniverse) -> crate::CoverageReport {
        crate::CoverageReport::from_statuses(&self.statuses_projected(universe))
    }

    /// The faults that are still open (undetected or aborted), with their
    /// indices in the original universe.
    pub fn open_faults(&self) -> Vec<(usize, Fault)> {
        self.list
            .iter()
            .enumerate()
            .filter(|(i, _)| self.inner.status_of(*i).is_open())
            .map(|(i, f)| (i, *f))
            .collect()
    }
}

impl WordFault for Fault {
    /// Computes the faulty seed value at the fault site, or no seeds if
    /// the fault cannot change anything in this block.
    fn seeds(&self, ctx: &BlockCtx<'_>) -> Seeds {
        let g = ctx.graph;
        let seed = match *self {
            Fault::StuckAt {
                site,
                pin: None,
                value,
            } => {
                let forced = if value { !0u64 } else { 0 };
                let diff = (ctx.good[site.index()] ^ forced) & ctx.valid;
                (diff != 0).then_some((site, forced))
            }
            Fault::StuckAt {
                site,
                pin: Some(p),
                value,
            } => {
                let forced = if value { !0u64 } else { 0 };
                let fv = g.kind(site.index()).eval_word_iter(
                    g.fanin(site.index()).iter().enumerate().map(|(k, &f)| {
                        if k == p as usize {
                            forced
                        } else {
                            ctx.good[f as usize]
                        }
                    }),
                );
                let diff = (fv ^ ctx.good[site.index()]) & ctx.valid;
                (diff != 0).then_some((site, fv))
            }
            Fault::OpenSeries { site } => {
                let excite = series_excitation(ctx, site);
                memory_seed(ctx, site, excite)
            }
            Fault::OpenParallel { site, pin } => {
                let excite = parallel_excitation(ctx, site, pin);
                memory_seed(ctx, site, excite)
            }
            Fault::OpenRise { site } => {
                let g = ctx.good[site.index()];
                let excite = g & !ctx.prev[site.index()];
                memory_seed(ctx, site, excite)
            }
            Fault::OpenFall { site } => {
                let g = ctx.good[site.index()];
                let excite = !g & ctx.prev[site.index()];
                memory_seed(ctx, site, excite)
            }
        };
        match seed {
            Some((site, value)) => Seeds::one(site.index() as u32, value),
            None => Seeds::NONE,
        }
    }
}

/// Faulty value of a stuck-open site: the output retains its previous
/// good value wherever the fault is excited.
fn memory_seed(ctx: &BlockCtx<'_>, site: NodeId, excite: u64) -> Option<(NodeId, u64)> {
    let g = ctx.good[site.index()];
    let fv = (g & !excite) | (ctx.prev[site.index()] & excite);
    let diff = (fv ^ g) & ctx.valid;
    (diff != 0).then_some((site, fv))
}

/// Mask of patterns where *all* inputs of `site` hold the
/// non-controlling value at `t` but not at `t-1` (series-open
/// excitation).
fn series_excitation(ctx: &BlockCtx<'_>, site: NodeId) -> u64 {
    let g = ctx.graph;
    let c = match g.kind(site.index()).controlling_value() {
        Some(c) => c,
        None => return 0,
    };
    let mut all_nc_now = !0u64;
    let mut all_nc_prev = !0u64;
    for &f in g.fanin(site.index()) {
        let now = ctx.good[f as usize];
        let before = ctx.prev[f as usize];
        // non-controlling: value != c
        all_nc_now &= if c { !now } else { now };
        all_nc_prev &= if c { !before } else { before };
    }
    all_nc_now & !all_nc_prev
}

/// Mask of patterns where pin `p` is the only controlling input at `t`
/// and all inputs were non-controlling at `t-1` (parallel-open
/// excitation).
fn parallel_excitation(ctx: &BlockCtx<'_>, site: NodeId, p: u8) -> u64 {
    let g = ctx.graph;
    let c = match g.kind(site.index()).controlling_value() {
        Some(c) => c,
        None => return 0,
    };
    let mut only_p_now = !0u64;
    let mut all_nc_prev = !0u64;
    for (k, &f) in g.fanin(site.index()).iter().enumerate() {
        let now = ctx.good[f as usize];
        let before = ctx.prev[f as usize];
        if k == p as usize {
            only_p_now &= if c { now } else { !now };
        } else {
            only_p_now &= if c { !now } else { now };
        }
        all_nc_prev &= if c { !before } else { before };
    }
    only_p_now & all_nc_prev
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_fault::FaultList;
    use bist_netlist::GateKind;

    fn exhaustive_patterns(width: usize) -> Vec<Pattern> {
        (0u32..(1 << width))
            .map(|v| Pattern::from_fn(width, |i| (v >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn c17_stuck_at_full_coverage() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let total = faults.len();
        let mut sim = FaultSim::new(&c17, faults);
        let newly = sim.simulate(&exhaustive_patterns(5));
        assert_eq!(newly, total, "all 22 collapsed faults detectable");
    }

    #[test]
    fn c17_stuck_open_coverage_with_transitions() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_open(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        // a long random sequence supplies every needed transition pair
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let seq: Vec<Pattern> = (0..2000).map(|_| Pattern::random(&mut rng, 5)).collect();
        sim.simulate(&seq);
        let rep = sim.report();
        // NAND-only circuit: all stuck-open faults are two-pattern testable
        assert_eq!(
            rep.coverage_pct(),
            100.0,
            "stuck-open coverage too low: {}",
            rep.coverage_pct()
        );
    }

    #[test]
    fn first_pattern_cannot_detect_stuck_open() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_open(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        // a single pattern has no predecessor: nothing may be detected
        let newly = sim.simulate(&[Pattern::from_fn(5, |_| true)]);
        assert_eq!(newly, 0);
    }

    #[test]
    fn representative_grading_projects_to_full_universe_grading() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let universe = CollapsedUniverse::build(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let patterns: Vec<Pattern> = (0..200)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut full = FaultSim::new(&c, universe.full().clone());
        full.simulate(&patterns);

        let mut reps = FaultSim::new(&c, universe.representatives().clone());
        reps.simulate(&patterns);

        assert_eq!(reps.statuses_projected(&universe), full.statuses());
        assert_eq!(reps.report_projected(&universe), full.report());
        // and strictly less grading work
        assert!(reps.counters().cone_events < full.counters().cone_events);
    }

    #[test]
    fn chunked_equals_monolithic() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let patterns: Vec<Pattern> = (0..300)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut mono = FaultSim::new(&c, faults.clone());
        mono.simulate(&patterns);

        let mut chunked = FaultSim::new(&c, faults);
        for chunk in patterns.chunks(37) {
            chunked.simulate(chunk);
        }
        assert_eq!(mono.statuses(), chunked.statuses());
        for i in 0..mono.faults().len() {
            assert_eq!(
                mono.first_detection(i),
                chunked.first_detection(i),
                "fault {i}"
            );
        }
    }

    #[test]
    fn parallel_grading_is_bit_identical_to_serial() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let patterns: Vec<Pattern> = (0..400)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut serial = FaultSim::new(&c, faults.clone()).with_threads(1);
        serial.simulate(&patterns);

        for threads in [2, 3, 4, 8] {
            let mut par = FaultSim::new(&c, faults.clone()).with_threads(threads);
            // force the sharded path even on a narrower machine (the
            // hw clamp would otherwise grade inline and test nothing)
            par.set_hw_threads(threads);
            par.simulate(&patterns);
            assert_eq!(serial.statuses(), par.statuses(), "threads={threads}");
            for i in 0..serial.faults().len() {
                assert_eq!(
                    serial.first_detection(i),
                    par.first_detection(i),
                    "threads={threads}, fault {i}"
                );
            }
            assert_eq!(
                serial.counters(),
                par.counters(),
                "work counters drift at threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_incremental_feeding_matches_serial_monolithic() {
        // chunked feeding at 4 threads vs one serial call: the stuck-open
        // carry and the drop decisions must line up across both axes
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let patterns: Vec<Pattern> = (0..300)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut mono = FaultSim::new(&c, faults.clone()).with_threads(1);
        mono.simulate(&patterns);

        let mut par = FaultSim::new(&c, faults).with_threads(4);
        par.set_hw_threads(4);
        for chunk in patterns.chunks(53) {
            par.simulate(chunk);
        }
        assert_eq!(mono.statuses(), par.statuses());
    }

    #[test]
    fn resume_from_carry_checkpoint_matches_straight_run() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let patterns: Vec<Pattern> = (0..200)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut straight = FaultSim::new(&c, faults.clone());
        straight.simulate(&patterns);

        // checkpoint after 77 patterns, resume a fresh simulator from it
        let mut head = FaultSim::new(&c, faults.clone());
        head.simulate(&patterns[..77]);
        let mut tail = FaultSim::resume(
            &c,
            faults,
            head.statuses(),
            head.carry_bits(),
            head.patterns_seen(),
        );
        tail.simulate(&patterns[77..]);

        assert_eq!(straight.statuses(), tail.statuses());
        assert_eq!(straight.patterns_seen(), tail.patterns_seen());
        // faults detected after the resume point carry identical global
        // first-detection indices
        for i in 0..straight.faults().len() {
            if let Some(first) = tail.first_detection(i) {
                if first >= 77 {
                    assert_eq!(straight.first_detection(i), Some(first), "fault {i}");
                }
            }
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        sim.simulate(&exhaustive_patterns(5));
        assert!(sim.report().detected > 0);
        sim.reset();
        assert_eq!(sim.report().detected, 0);
        assert_eq!(sim.patterns_seen(), 0);
        // the live list is rebuilt: a re-run re-detects everything
        let newly = sim.simulate(&exhaustive_patterns(5));
        assert_eq!(newly, sim.faults().len());
    }

    #[test]
    fn set_status_removes_fault_from_grading() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let total = faults.len();
        let mut sim = FaultSim::new(&c17, faults);
        sim.set_status(0, FaultStatus::Redundant);
        let newly = sim.simulate(&exhaustive_patterns(5));
        assert_eq!(newly, total - 1, "marked fault must not be graded");
        assert_eq!(sim.status_of(0), FaultStatus::Redundant);
        assert_eq!(sim.first_detection(0), None);
    }

    #[test]
    fn counters_track_block_work() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        assert_eq!(sim.counters(), SimCounters::default());
        sim.simulate(&exhaustive_patterns(5)); // 32 patterns = 1 block
        let counters = sim.counters();
        assert_eq!(counters.blocks, 1);
        assert_eq!(counters.good_gate_evals, 6, "c17 has six NAND gates");
        assert!(counters.cone_events > 0);
    }

    #[test]
    fn planted_redundant_faults_stay_undetected() {
        // OR(a, AND(a, b)): AND-output stuck-at-0 is redundant.
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("red");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("t", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("r", GateKind::Or, &["a", "t"]).unwrap();
        b.mark_output("r").unwrap();
        let c = b.build().unwrap();
        let t = c.find("t").unwrap();
        let faults: FaultList = [Fault::StuckAt {
            site: t,
            pin: None,
            value: false,
        }]
        .into_iter()
        .collect();
        let mut sim = FaultSim::new(&c, faults);
        sim.simulate(&exhaustive_patterns(2));
        assert_eq!(
            sim.report().detected,
            0,
            "redundant fault must not be detected"
        );
    }

    #[test]
    fn detection_indices_are_global() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        let all = exhaustive_patterns(5);
        sim.simulate(&all[..3]);
        sim.simulate(&all[3..]);
        let max_idx = (0..sim.faults().len())
            .filter_map(|i| sim.first_detection(i))
            .max()
            .unwrap();
        assert!(max_idx >= 3, "later chunks must report global indices");
        assert_eq!(sim.patterns_seen(), 32);
    }
}
