use std::sync::Mutex;

use bist_fault::{Fault, FaultList, FaultStatus};
use bist_logicsim::{Pattern, PatternBlock};
use bist_netlist::{Circuit, GateKind, LevelQueue, NodeId, SimGraph};
use bist_par::Pool;

/// Below this many live faults a block is graded serially even on a wide
/// pool: the per-block spawn cost would exceed the cone work. The cutoff
/// only moves work between identical code paths — results are the same on
/// either side of it.
const PAR_MIN_FAULTS: usize = 128;

/// Monotonic work counters of one [`FaultSim`], exposed so throughput
/// benchmarks can report rates (and so reviews can assert the steady-state
/// block loop does the expected amount of work and nothing more). All
/// counts are deterministic — identical at every thread width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// 64-pattern blocks graded so far.
    pub blocks: u64,
    /// Gate evaluations performed by the good-machine simulation
    /// (combinational gates × blocks).
    pub good_gate_evals: u64,
    /// Cone-propagation events: nodes drained from the levelized bucket
    /// queue across all faults and blocks.
    pub cone_events: u64,
}

/// Parallel-pattern single-fault-propagation simulator with fault dropping.
///
/// Create one per (circuit, fault list) pair, feed it patterns with
/// [`FaultSim::simulate`] — in one call or incrementally; the engine keeps
/// the sequence position and the previous pattern, so stuck-open pairs
/// spanning call boundaries are honoured — then read results via
/// [`FaultSim::report`], [`FaultSim::status_of`] and
/// [`FaultSim::first_detection`].
///
/// # Data layout
///
/// All hot loops run over the circuit's flattened [`SimGraph`] view (CSR
/// adjacency + parallel kind/level arrays) and a per-worker
/// `ConeScratch` holding a levelized bucket queue. After warm-up the
/// steady-state block loop performs **zero heap allocations**: the good
/// machine evaluates gates straight from CSR slices, cone propagation
/// drains reusable per-level buckets with epoch-stamped deduplication, the
/// live-fault list is maintained incrementally (swap-remove on detection)
/// and the 64-pattern packing buffer is reused across blocks.
///
/// # Parallel grading
///
/// Within each 64-pattern block the good machine is simulated once, then
/// the live faults are sharded across the pool ([`FaultSim::with_threads`]
/// / `BIST_THREADS`): every worker owns a contiguous fault partition and a
/// private cone-propagation scratch, reading the shared good/previous
/// value words. Per-fault detection masks are merged back in
/// ascending fault order at the block barrier, so statuses, first-detection
/// indices and drop decisions are **bit-identical at every thread count**
/// — one thread runs the very same code inline.
#[derive(Debug)]
pub struct FaultSim<'c> {
    circuit: &'c Circuit,
    graph: &'c SimGraph,
    faults: FaultList,
    status: Vec<FaultStatus>,
    /// Global index of the first pattern that detected each fault.
    first_detection: Vec<Option<u32>>,
    /// Patterns consumed so far (across all `simulate` calls).
    patterns_seen: u32,
    /// Good-machine value of every node for the last pattern of the
    /// previous block (the stuck-open carry).
    last_bits: Vec<bool>,
    // --- scratch buffers, reused across blocks ---
    good: Vec<u64>,
    prev: Vec<u64>,
    scratch: ConeScratch,
    /// Indices of still-undetected faults, maintained incrementally
    /// (swap-remove on detection). Rebuilt lazily after out-of-band status
    /// edits ([`FaultSim::set_status`] / [`FaultSim::reset`]).
    live: Vec<u32>,
    live_dirty: bool,
    /// Reused 64-pattern packing buffer (allocated on the first block).
    block_buf: Option<PatternBlock>,
    /// Parked per-worker scratches for the sharded path: workers lease one
    /// at block start and return it at the block barrier, so the warm
    /// buckets survive across blocks at every pool width.
    scratch_park: Mutex<Vec<ConeScratch>>,
    /// Number of combinational gates — the good-sim work per block.
    comb_gates: u64,
    counters: SimCounters,
    pool: Pool,
}

impl<'c> FaultSim<'c> {
    /// Creates a simulator grading `faults` on `circuit`, with the pool
    /// width taken from `BIST_THREADS` / the machine.
    pub fn new(circuit: &'c Circuit, faults: FaultList) -> Self {
        let graph = circuit.sim_graph();
        let n = circuit.num_nodes();
        let len = faults.len();
        let comb_gates = (0..n).filter(|&i| graph.kind(i).is_combinational()).count() as u64;
        FaultSim {
            circuit,
            graph,
            faults,
            status: vec![FaultStatus::Undetected; len],
            first_detection: vec![None; len],
            patterns_seen: 0,
            last_bits: vec![false; n],
            good: vec![0; n],
            prev: vec![0; n],
            scratch: ConeScratch::new(graph),
            live: Vec::with_capacity(len),
            live_dirty: true,
            block_buf: None,
            scratch_park: Mutex::new(Vec::new()),
            comb_gates,
            counters: SimCounters::default(),
            pool: Pool::from_env(),
        }
    }

    /// Re-creates a simulator mid-sequence from a carry checkpoint: the
    /// per-fault `statuses` and good-machine `carry` bits recorded after
    /// exactly `patterns_seen` patterns of some sequence (see
    /// [`FaultSim::carry_bits`]). Feeding the remainder of that sequence
    /// behaves exactly like one simulator that consumed it end to end,
    /// except that [`FaultSim::first_detection`] is only populated for
    /// faults detected *after* the resume point (earlier detections carry
    /// a status but no index).
    pub fn resume(
        circuit: &'c Circuit,
        faults: FaultList,
        statuses: &[FaultStatus],
        carry: &[bool],
        patterns_seen: u32,
    ) -> Self {
        assert_eq!(statuses.len(), faults.len(), "status/universe mismatch");
        assert_eq!(carry.len(), circuit.num_nodes(), "carry/circuit mismatch");
        let mut sim = FaultSim::new(circuit, faults);
        sim.status.copy_from_slice(statuses);
        sim.last_bits.copy_from_slice(carry);
        sim.patterns_seen = patterns_seen;
        sim
    }

    /// Sets the pool width for subsequent [`FaultSim::simulate`] calls
    /// (`0` = automatic: `BIST_THREADS` or the machine width). Grading
    /// results never depend on this knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = Pool::resolve(threads);
    }

    /// Builder form of [`FaultSim::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// The pool width grading currently uses.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The fault universe being graded.
    pub fn faults(&self) -> &FaultList {
        &self.faults
    }

    /// Status of fault `index`.
    pub fn status_of(&self, index: usize) -> FaultStatus {
        self.status[index]
    }

    /// All statuses, parallel to [`FaultSim::faults`].
    pub fn statuses(&self) -> &[FaultStatus] {
        &self.status
    }

    /// Overrides the status of fault `index` (the ATPG uses this to mark
    /// redundant or aborted faults).
    pub fn set_status(&mut self, index: usize, status: FaultStatus) {
        self.status[index] = status;
        self.live_dirty = true;
    }

    /// Global index (0-based position in the full sequence fed so far) of
    /// the first pattern that detected fault `index`.
    pub fn first_detection(&self, index: usize) -> Option<u32> {
        self.first_detection[index]
    }

    /// Number of patterns consumed so far.
    pub fn patterns_seen(&self) -> u32 {
        self.patterns_seen
    }

    /// The work performed so far (blocks, good-machine gate evaluations,
    /// cone events). Deterministic at every thread width.
    pub fn counters(&self) -> SimCounters {
        self.counters
    }

    /// The good-machine node values after the last consumed pattern — the
    /// stuck-open carry. Together with [`FaultSim::statuses`] and
    /// [`FaultSim::patterns_seen`] this is a complete mid-sequence
    /// checkpoint for [`FaultSim::resume`].
    pub fn carry_bits(&self) -> &[bool] {
        &self.last_bits
    }

    /// Forgets all grading results and the sequence position.
    pub fn reset(&mut self) {
        self.status.fill(FaultStatus::Undetected);
        self.first_detection.fill(None);
        self.patterns_seen = 0;
        self.last_bits.fill(false);
        self.live_dirty = true;
    }

    /// Grades `patterns` (in order, continuing any previously fed
    /// sequence). Returns the number of newly detected faults.
    pub fn simulate(&mut self, patterns: &[Pattern]) -> usize {
        let mut newly = 0;
        let mut buf = self.block_buf.take();
        for chunk in patterns.chunks(64) {
            match buf.as_mut() {
                Some(block) => block.pack_into(self.circuit, chunk),
                None => buf = Some(PatternBlock::pack(self.circuit, chunk)),
            }
            let block = buf.as_ref().expect("packed above");
            newly += self.simulate_block(block);
        }
        self.block_buf = buf;
        newly
    }

    /// Coverage summary over the whole universe.
    pub fn report(&self) -> crate::CoverageReport {
        crate::CoverageReport::from_statuses(&self.status)
    }

    /// The faults that are still open (undetected or aborted), with their
    /// indices in the original universe.
    pub fn open_faults(&self) -> Vec<(usize, Fault)> {
        self.faults
            .iter()
            .enumerate()
            .filter(|(i, _)| self.status[*i].is_open())
            .map(|(i, f)| (i, *f))
            .collect()
    }

    fn simulate_block(&mut self, block: &PatternBlock) -> usize {
        let valid = block.valid_mask();
        self.good_simulate(block);
        // previous-pattern words: bit j of prev = bit j-1 of good, with the
        // carry from the previous block in bit 0
        let first_ever = self.patterns_seen == 0;
        for (i, g) in self.good.iter().enumerate() {
            let carry = if first_ever {
                g & 1 // pattern 0 has no predecessor: prev := self (kills excitation)
            } else {
                u64::from(self.last_bits[i])
            };
            self.prev[i] = (g << 1) | carry;
        }
        // stash the carry for the next block
        let last = block.count() - 1;
        for (i, g) in self.good.iter().enumerate() {
            self.last_bits[i] = (g >> last) & 1 == 1;
        }

        if self.live_dirty {
            self.live.clear();
            self.live.extend(
                (0..self.faults.len() as u32)
                    .filter(|&fi| self.status[fi as usize] == FaultStatus::Undetected),
            );
            self.live_dirty = false;
        }

        let view = BlockView {
            graph: self.graph,
            good: &self.good,
            prev: &self.prev,
            valid,
        };
        let seen = self.patterns_seen;

        let mut newly = 0;
        if self.pool.is_serial() || self.live.len() < PAR_MIN_FAULTS {
            // inline path: one persistent scratch, exactly the historical
            // serial engine; detected faults are swap-removed from the live
            // list as they drop
            let mut i = 0;
            while i < self.live.len() {
                let fi = self.live[i];
                let fault = *self.faults.get(fi as usize).expect("index in range");
                if let Some(mask) = view.try_detect(&mut self.scratch, fault) {
                    self.status[fi as usize] = FaultStatus::Detected;
                    self.first_detection[fi as usize] = Some(seen + mask.trailing_zeros());
                    newly += 1;
                    self.live.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            self.counters.cone_events += std::mem::take(&mut self.scratch.events);
        } else {
            // sharded path: contiguous fault partitions, one private
            // scratch per worker — leased from the park so its warm
            // buckets survive the block barrier — detection masks merged
            // in fault order
            let graph = self.graph;
            let faults = &self.faults;
            let park = &self.scratch_park;
            let chunk = self
                .live
                .len()
                .div_ceil(self.pool.threads() * 4)
                .max(PAR_MIN_FAULTS / 4);
            let detected: Vec<(Vec<(u32, u64)>, u64)> = self.pool.par_chunks_init(
                &self.live,
                chunk,
                || ScratchLease::take(park, graph),
                |lease, _chunk_index, part| {
                    let scratch = lease.scratch();
                    let hits = part
                        .iter()
                        .filter_map(|&fi| {
                            let fault = *faults.get(fi as usize).expect("index in range");
                            view.try_detect(scratch, fault).map(|mask| (fi, mask))
                        })
                        .collect();
                    (hits, std::mem::take(&mut scratch.events))
                },
            );
            for (hits, events) in detected {
                self.counters.cone_events += events;
                for (fi, mask) in hits {
                    self.status[fi as usize] = FaultStatus::Detected;
                    self.first_detection[fi as usize] = Some(seen + mask.trailing_zeros());
                    newly += 1;
                }
            }
            if newly > 0 {
                let status = &self.status;
                self.live
                    .retain(|&fi| status[fi as usize] == FaultStatus::Undetected);
            }
        }
        self.patterns_seen += block.count() as u32;
        self.counters.blocks += 1;
        self.counters.good_gate_evals += self.comb_gates;
        newly
    }

    fn good_simulate(&mut self, block: &PatternBlock) {
        let g = self.graph;
        for (i, &pi) in g.inputs().iter().enumerate() {
            self.good[pi as usize] = block.input_word(i);
        }
        for &id in g.topo() {
            let id = id as usize;
            match g.kind(id) {
                GateKind::Input => {}
                GateKind::Dff => self.good[id] = 0,
                _ => {
                    let v = g.eval_word(id, |f| self.good[f]);
                    self.good[id] = v;
                }
            }
        }
    }
}

/// Per-worker cone-propagation scratch: faulty value words, visitation
/// stamps, and a levelized bucket queue ([`LevelQueue`]). Reused across
/// every fault a worker grades — after warm-up the cone walk allocates
/// nothing.
#[derive(Debug)]
struct ConeScratch {
    /// Faulty value word per node, valid where `stamp == epoch`.
    fval: Vec<u64>,
    /// Faulty-value validity stamp per node.
    stamp: Vec<u32>,
    epoch: u32,
    queue: LevelQueue,
    /// Nodes drained from the queue since the counter was last harvested.
    events: u64,
}

impl ConeScratch {
    fn new(graph: &SimGraph) -> Self {
        let n = graph.num_nodes();
        ConeScratch {
            fval: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
            queue: LevelQueue::new(graph),
            events: 0,
        }
    }
}

/// A worker's block-scoped loan of a [`ConeScratch`] from the simulator's
/// park: taken at worker start-up, handed back on drop at the block
/// barrier. Steady-state blocks therefore reuse warm scratches instead of
/// allocating fresh ones per block.
struct ScratchLease<'p> {
    scratch: Option<ConeScratch>,
    park: &'p Mutex<Vec<ConeScratch>>,
}

impl<'p> ScratchLease<'p> {
    fn take(park: &'p Mutex<Vec<ConeScratch>>, graph: &SimGraph) -> Self {
        let parked = park.lock().expect("scratch park poisoned").pop();
        ScratchLease {
            scratch: Some(parked.unwrap_or_else(|| ConeScratch::new(graph))),
            park,
        }
    }

    fn scratch(&mut self) -> &mut ConeScratch {
        self.scratch.as_mut().expect("present until drop")
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.park
                .lock()
                .expect("scratch park poisoned")
                .push(scratch);
        }
    }
}

/// The read-only context shared by every worker grading one pattern block:
/// the flattened circuit view, the good-machine and previous-pattern value
/// words, and the block's valid-lane mask.
#[derive(Clone, Copy)]
struct BlockView<'a> {
    graph: &'a SimGraph,
    good: &'a [u64],
    prev: &'a [u64],
    valid: u64,
}

impl BlockView<'_> {
    /// Computes the faulty seed value at the fault site, or `None` if the
    /// fault cannot change anything in this block.
    fn seed_value(&self, fault: Fault) -> Option<(NodeId, u64)> {
        let g = self.graph;
        match fault {
            Fault::StuckAt {
                site,
                pin: None,
                value,
            } => {
                let forced = if value { !0u64 } else { 0 };
                let diff = (self.good[site.index()] ^ forced) & self.valid;
                (diff != 0).then_some((site, forced))
            }
            Fault::StuckAt {
                site,
                pin: Some(p),
                value,
            } => {
                let forced = if value { !0u64 } else { 0 };
                let fv = g.kind(site.index()).eval_word_iter(
                    g.fanin(site.index()).iter().enumerate().map(|(k, &f)| {
                        if k == p as usize {
                            forced
                        } else {
                            self.good[f as usize]
                        }
                    }),
                );
                let diff = (fv ^ self.good[site.index()]) & self.valid;
                (diff != 0).then_some((site, fv))
            }
            Fault::OpenSeries { site } => {
                let excite = self.series_excitation(site);
                self.memory_seed(site, excite)
            }
            Fault::OpenParallel { site, pin } => {
                let excite = self.parallel_excitation(site, pin);
                self.memory_seed(site, excite)
            }
            Fault::OpenRise { site } => {
                let g = self.good[site.index()];
                let excite = g & !self.prev[site.index()];
                self.memory_seed(site, excite)
            }
            Fault::OpenFall { site } => {
                let g = self.good[site.index()];
                let excite = !g & self.prev[site.index()];
                self.memory_seed(site, excite)
            }
        }
    }

    /// Faulty value of a stuck-open site: the output retains its previous
    /// good value wherever the fault is excited.
    fn memory_seed(&self, site: NodeId, excite: u64) -> Option<(NodeId, u64)> {
        let g = self.good[site.index()];
        let fv = (g & !excite) | (self.prev[site.index()] & excite);
        let diff = (fv ^ g) & self.valid;
        (diff != 0).then_some((site, fv))
    }

    /// Mask of patterns where *all* inputs of `site` hold the
    /// non-controlling value at `t` but not at `t-1` (series-open
    /// excitation).
    fn series_excitation(&self, site: NodeId) -> u64 {
        let g = self.graph;
        let c = match g.kind(site.index()).controlling_value() {
            Some(c) => c,
            None => return 0,
        };
        let mut all_nc_now = !0u64;
        let mut all_nc_prev = !0u64;
        for &f in g.fanin(site.index()) {
            let now = self.good[f as usize];
            let before = self.prev[f as usize];
            // non-controlling: value != c
            all_nc_now &= if c { !now } else { now };
            all_nc_prev &= if c { !before } else { before };
        }
        all_nc_now & !all_nc_prev
    }

    /// Mask of patterns where pin `p` is the only controlling input at `t`
    /// and all inputs were non-controlling at `t-1` (parallel-open
    /// excitation).
    fn parallel_excitation(&self, site: NodeId, p: u8) -> u64 {
        let g = self.graph;
        let c = match g.kind(site.index()).controlling_value() {
            Some(c) => c,
            None => return 0,
        };
        let mut only_p_now = !0u64;
        let mut all_nc_prev = !0u64;
        for (k, &f) in g.fanin(site.index()).iter().enumerate() {
            let now = self.good[f as usize];
            let before = self.prev[f as usize];
            if k == p as usize {
                only_p_now &= if c { now } else { !now };
            } else {
                only_p_now &= if c { !now } else { now };
            }
            all_nc_prev &= if c { !before } else { before };
        }
        only_p_now & all_nc_prev
    }

    /// Injects `fault` and propagates through its fan-out cone with the
    /// levelized bucket queue; returns the mask of patterns detecting it at
    /// a primary output, or `None`.
    ///
    /// Draining buckets in ascending level order visits every reached node
    /// exactly once, after all of its fan-ins (which sit at strictly lower
    /// levels) are final — the same values, and therefore the same
    /// detection masks, as any other topological evaluation order.
    fn try_detect(&self, scratch: &mut ConeScratch, fault: Fault) -> Option<u64> {
        let (site, seed) = self.seed_value(fault)?;
        let g = self.graph;

        scratch.epoch = scratch.epoch.wrapping_add(1);
        if scratch.epoch == 0 {
            scratch.stamp.fill(0);
            scratch.epoch = 1;
        }
        let epoch = scratch.epoch;

        let site_idx = site.index();
        scratch.fval[site_idx] = seed;
        scratch.stamp[site_idx] = epoch;
        let mut detect = 0u64;
        if g.is_output(site_idx) {
            detect |= (seed ^ self.good[site_idx]) & self.valid;
        }

        scratch.queue.begin(g.level(site_idx));
        for &s in g.fanout(site_idx) {
            if g.kind(s as usize).is_combinational() {
                scratch.queue.push(s, g.level(s as usize));
            }
        }

        while let Some(bucket) = scratch.queue.take_bucket() {
            scratch.events += bucket.len() as u64;
            for &id in &bucket {
                let id = id as usize;
                let fv = g.eval_word(id, |f| {
                    if scratch.stamp[f] == epoch {
                        scratch.fval[f]
                    } else {
                        self.good[f]
                    }
                });
                if fv == self.good[id] {
                    continue; // fault effect died here
                }
                scratch.fval[id] = fv;
                scratch.stamp[id] = epoch;
                if g.is_output(id) {
                    detect |= (fv ^ self.good[id]) & self.valid;
                }
                for &s in g.fanout(id) {
                    if g.kind(s as usize).is_combinational() {
                        scratch.queue.push(s, g.level(s as usize));
                    }
                }
            }
            scratch.queue.restore(bucket);
        }
        (detect != 0).then_some(detect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_fault::FaultList;

    fn exhaustive_patterns(width: usize) -> Vec<Pattern> {
        (0u32..(1 << width))
            .map(|v| Pattern::from_fn(width, |i| (v >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn c17_stuck_at_full_coverage() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let total = faults.len();
        let mut sim = FaultSim::new(&c17, faults);
        let newly = sim.simulate(&exhaustive_patterns(5));
        assert_eq!(newly, total, "all 22 collapsed faults detectable");
    }

    #[test]
    fn c17_stuck_open_coverage_with_transitions() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_open(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        // a long random sequence supplies every needed transition pair
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let seq: Vec<Pattern> = (0..2000).map(|_| Pattern::random(&mut rng, 5)).collect();
        sim.simulate(&seq);
        let rep = sim.report();
        // NAND-only circuit: all stuck-open faults are two-pattern testable
        assert_eq!(
            rep.coverage_pct(),
            100.0,
            "stuck-open coverage too low: {}",
            rep.coverage_pct()
        );
    }

    #[test]
    fn first_pattern_cannot_detect_stuck_open() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_open(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        // a single pattern has no predecessor: nothing may be detected
        let newly = sim.simulate(&[Pattern::from_fn(5, |_| true)]);
        assert_eq!(newly, 0);
    }

    #[test]
    fn chunked_equals_monolithic() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let patterns: Vec<Pattern> = (0..300)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut mono = FaultSim::new(&c, faults.clone());
        mono.simulate(&patterns);

        let mut chunked = FaultSim::new(&c, faults);
        for chunk in patterns.chunks(37) {
            chunked.simulate(chunk);
        }
        assert_eq!(mono.statuses(), chunked.statuses());
        for i in 0..mono.faults().len() {
            assert_eq!(
                mono.first_detection(i),
                chunked.first_detection(i),
                "fault {i}"
            );
        }
    }

    #[test]
    fn parallel_grading_is_bit_identical_to_serial() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let patterns: Vec<Pattern> = (0..400)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut serial = FaultSim::new(&c, faults.clone()).with_threads(1);
        serial.simulate(&patterns);

        for threads in [2, 3, 4, 8] {
            let mut par = FaultSim::new(&c, faults.clone()).with_threads(threads);
            par.simulate(&patterns);
            assert_eq!(serial.statuses(), par.statuses(), "threads={threads}");
            for i in 0..serial.faults().len() {
                assert_eq!(
                    serial.first_detection(i),
                    par.first_detection(i),
                    "threads={threads}, fault {i}"
                );
            }
            assert_eq!(
                serial.counters(),
                par.counters(),
                "work counters drift at threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_incremental_feeding_matches_serial_monolithic() {
        // chunked feeding at 4 threads vs one serial call: the stuck-open
        // carry and the drop decisions must line up across both axes
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let patterns: Vec<Pattern> = (0..300)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut mono = FaultSim::new(&c, faults.clone()).with_threads(1);
        mono.simulate(&patterns);

        let mut par = FaultSim::new(&c, faults).with_threads(4);
        for chunk in patterns.chunks(53) {
            par.simulate(chunk);
        }
        assert_eq!(mono.statuses(), par.statuses());
    }

    #[test]
    fn resume_from_carry_checkpoint_matches_straight_run() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let patterns: Vec<Pattern> = (0..200)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut straight = FaultSim::new(&c, faults.clone());
        straight.simulate(&patterns);

        // checkpoint after 77 patterns, resume a fresh simulator from it
        let mut head = FaultSim::new(&c, faults.clone());
        head.simulate(&patterns[..77]);
        let mut tail = FaultSim::resume(
            &c,
            faults,
            head.statuses(),
            head.carry_bits(),
            head.patterns_seen(),
        );
        tail.simulate(&patterns[77..]);

        assert_eq!(straight.statuses(), tail.statuses());
        assert_eq!(straight.patterns_seen(), tail.patterns_seen());
        // faults detected after the resume point carry identical global
        // first-detection indices
        for i in 0..straight.faults().len() {
            if let Some(first) = tail.first_detection(i) {
                if first >= 77 {
                    assert_eq!(straight.first_detection(i), Some(first), "fault {i}");
                }
            }
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        sim.simulate(&exhaustive_patterns(5));
        assert!(sim.report().detected > 0);
        sim.reset();
        assert_eq!(sim.report().detected, 0);
        assert_eq!(sim.patterns_seen(), 0);
        // the live list is rebuilt: a re-run re-detects everything
        let newly = sim.simulate(&exhaustive_patterns(5));
        assert_eq!(newly, sim.faults().len());
    }

    #[test]
    fn set_status_removes_fault_from_grading() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let total = faults.len();
        let mut sim = FaultSim::new(&c17, faults);
        sim.set_status(0, FaultStatus::Redundant);
        let newly = sim.simulate(&exhaustive_patterns(5));
        assert_eq!(newly, total - 1, "marked fault must not be graded");
        assert_eq!(sim.status_of(0), FaultStatus::Redundant);
        assert_eq!(sim.first_detection(0), None);
    }

    #[test]
    fn counters_track_block_work() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        assert_eq!(sim.counters(), SimCounters::default());
        sim.simulate(&exhaustive_patterns(5)); // 32 patterns = 1 block
        let counters = sim.counters();
        assert_eq!(counters.blocks, 1);
        assert_eq!(counters.good_gate_evals, 6, "c17 has six NAND gates");
        assert!(counters.cone_events > 0);
    }

    #[test]
    fn planted_redundant_faults_stay_undetected() {
        // OR(a, AND(a, b)): AND-output stuck-at-0 is redundant.
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("red");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("t", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("r", GateKind::Or, &["a", "t"]).unwrap();
        b.mark_output("r").unwrap();
        let c = b.build().unwrap();
        let t = c.find("t").unwrap();
        let faults: FaultList = [Fault::StuckAt {
            site: t,
            pin: None,
            value: false,
        }]
        .into_iter()
        .collect();
        let mut sim = FaultSim::new(&c, faults);
        sim.simulate(&exhaustive_patterns(2));
        assert_eq!(
            sim.report().detected,
            0,
            "redundant fault must not be detected"
        );
    }

    #[test]
    fn detection_indices_are_global() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        let all = exhaustive_patterns(5);
        sim.simulate(&all[..3]);
        sim.simulate(&all[3..]);
        let max_idx = (0..sim.faults().len())
            .filter_map(|i| sim.first_detection(i))
            .max()
            .unwrap();
        assert!(max_idx >= 3, "later chunks must report global indices");
        assert_eq!(sim.patterns_seen(), 32);
    }
}
