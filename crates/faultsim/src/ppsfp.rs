use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bist_fault::{Fault, FaultList, FaultStatus};
use bist_logicsim::{Pattern, PatternBlock};
use bist_netlist::{Circuit, GateKind, NodeId};
use bist_par::Pool;

/// Below this many live faults a block is graded serially even on a wide
/// pool: the per-block spawn cost would exceed the cone work. The cutoff
/// only moves work between identical code paths — results are the same on
/// either side of it.
const PAR_MIN_FAULTS: usize = 128;

/// Parallel-pattern single-fault-propagation simulator with fault dropping.
///
/// Create one per (circuit, fault list) pair, feed it patterns with
/// [`FaultSim::simulate`] — in one call or incrementally; the engine keeps
/// the sequence position and the previous pattern, so stuck-open pairs
/// spanning call boundaries are honoured — then read results via
/// [`FaultSim::report`], [`FaultSim::status_of`] and
/// [`FaultSim::first_detection`].
///
/// # Parallel grading
///
/// Within each 64-pattern block the good machine is simulated once, then
/// the live faults are sharded across the pool ([`FaultSim::with_threads`]
/// / `BIST_THREADS`): every worker owns a contiguous fault partition and a
/// private cone-propagation scratch, reading the shared good/previous
/// value words. Per-fault detection masks are merged back in
/// ascending fault order at the block barrier, so statuses, first-detection
/// indices and drop decisions are **bit-identical at every thread count**
/// — one thread runs the very same code inline.
#[derive(Debug)]
pub struct FaultSim<'c> {
    circuit: &'c Circuit,
    faults: FaultList,
    status: Vec<FaultStatus>,
    /// Global index of the first pattern that detected each fault.
    first_detection: Vec<Option<u32>>,
    /// Patterns consumed so far (across all `simulate` calls).
    patterns_seen: u32,
    /// Good-machine value of every node for the last pattern of the
    /// previous block (the stuck-open carry).
    last_bits: Vec<bool>,
    // --- scratch buffers, reused across blocks ---
    good: Vec<u64>,
    prev: Vec<u64>,
    scratch: ConeScratch,
    topo_pos: Vec<u32>,
    pool: Pool,
}

impl<'c> FaultSim<'c> {
    /// Creates a simulator grading `faults` on `circuit`, with the pool
    /// width taken from `BIST_THREADS` / the machine.
    pub fn new(circuit: &'c Circuit, faults: FaultList) -> Self {
        let n = circuit.num_nodes();
        let mut topo_pos = vec![0u32; n];
        for (pos, &id) in circuit.topo_order().iter().enumerate() {
            topo_pos[id.index()] = pos as u32;
        }
        let len = faults.len();
        FaultSim {
            circuit,
            faults,
            status: vec![FaultStatus::Undetected; len],
            first_detection: vec![None; len],
            patterns_seen: 0,
            last_bits: vec![false; n],
            good: vec![0; n],
            prev: vec![0; n],
            scratch: ConeScratch::new(n),
            topo_pos,
            pool: Pool::from_env(),
        }
    }

    /// Re-creates a simulator mid-sequence from a carry checkpoint: the
    /// per-fault `statuses` and good-machine `carry` bits recorded after
    /// exactly `patterns_seen` patterns of some sequence (see
    /// [`FaultSim::carry_bits`]). Feeding the remainder of that sequence
    /// behaves exactly like one simulator that consumed it end to end,
    /// except that [`FaultSim::first_detection`] is only populated for
    /// faults detected *after* the resume point (earlier detections carry
    /// a status but no index).
    pub fn resume(
        circuit: &'c Circuit,
        faults: FaultList,
        statuses: &[FaultStatus],
        carry: &[bool],
        patterns_seen: u32,
    ) -> Self {
        assert_eq!(statuses.len(), faults.len(), "status/universe mismatch");
        assert_eq!(carry.len(), circuit.num_nodes(), "carry/circuit mismatch");
        let mut sim = FaultSim::new(circuit, faults);
        sim.status.copy_from_slice(statuses);
        sim.last_bits.copy_from_slice(carry);
        sim.patterns_seen = patterns_seen;
        sim
    }

    /// Sets the pool width for subsequent [`FaultSim::simulate`] calls
    /// (`0` = automatic: `BIST_THREADS` or the machine width). Grading
    /// results never depend on this knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = Pool::resolve(threads);
    }

    /// Builder form of [`FaultSim::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// The pool width grading currently uses.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The fault universe being graded.
    pub fn faults(&self) -> &FaultList {
        &self.faults
    }

    /// Status of fault `index`.
    pub fn status_of(&self, index: usize) -> FaultStatus {
        self.status[index]
    }

    /// All statuses, parallel to [`FaultSim::faults`].
    pub fn statuses(&self) -> &[FaultStatus] {
        &self.status
    }

    /// Overrides the status of fault `index` (the ATPG uses this to mark
    /// redundant or aborted faults).
    pub fn set_status(&mut self, index: usize, status: FaultStatus) {
        self.status[index] = status;
    }

    /// Global index (0-based position in the full sequence fed so far) of
    /// the first pattern that detected fault `index`.
    pub fn first_detection(&self, index: usize) -> Option<u32> {
        self.first_detection[index]
    }

    /// Number of patterns consumed so far.
    pub fn patterns_seen(&self) -> u32 {
        self.patterns_seen
    }

    /// The good-machine node values after the last consumed pattern — the
    /// stuck-open carry. Together with [`FaultSim::statuses`] and
    /// [`FaultSim::patterns_seen`] this is a complete mid-sequence
    /// checkpoint for [`FaultSim::resume`].
    pub fn carry_bits(&self) -> &[bool] {
        &self.last_bits
    }

    /// Forgets all grading results and the sequence position.
    pub fn reset(&mut self) {
        self.status.fill(FaultStatus::Undetected);
        self.first_detection.fill(None);
        self.patterns_seen = 0;
        self.last_bits.fill(false);
    }

    /// Grades `patterns` (in order, continuing any previously fed
    /// sequence). Returns the number of newly detected faults.
    pub fn simulate(&mut self, patterns: &[Pattern]) -> usize {
        let mut newly = 0;
        for chunk in patterns.chunks(64) {
            let block = PatternBlock::pack(self.circuit, chunk);
            newly += self.simulate_block(&block);
        }
        newly
    }

    /// Coverage summary over the whole universe.
    pub fn report(&self) -> crate::CoverageReport {
        crate::CoverageReport::from_statuses(&self.status)
    }

    /// The faults that are still open (undetected or aborted), with their
    /// indices in the original universe.
    pub fn open_faults(&self) -> Vec<(usize, Fault)> {
        self.faults
            .iter()
            .enumerate()
            .filter(|(i, _)| self.status[*i].is_open())
            .map(|(i, f)| (i, *f))
            .collect()
    }

    fn simulate_block(&mut self, block: &PatternBlock) -> usize {
        let valid = block.valid_mask();
        self.good_simulate(block);
        // previous-pattern words: bit j of prev = bit j-1 of good, with the
        // carry from the previous block in bit 0
        let first_ever = self.patterns_seen == 0;
        for (i, g) in self.good.iter().enumerate() {
            let carry = if first_ever {
                g & 1 // pattern 0 has no predecessor: prev := self (kills excitation)
            } else {
                u64::from(self.last_bits[i])
            };
            self.prev[i] = (g << 1) | carry;
        }
        // stash the carry for the next block
        let last = block.count() - 1;
        for (i, g) in self.good.iter().enumerate() {
            self.last_bits[i] = (g >> last) & 1 == 1;
        }

        let view = BlockView {
            circuit: self.circuit,
            topo_pos: &self.topo_pos,
            good: &self.good,
            prev: &self.prev,
            valid,
        };
        let live: Vec<u32> = (0..self.faults.len() as u32)
            .filter(|&fi| self.status[fi as usize] == FaultStatus::Undetected)
            .collect();

        let mut newly = 0;
        let mut apply =
            |fi: u32, mask: u64, status: &mut [FaultStatus], first: &mut [Option<u32>]| {
                let first_idx = mask.trailing_zeros();
                status[fi as usize] = FaultStatus::Detected;
                first[fi as usize] = Some(self.patterns_seen + first_idx);
                newly += 1;
            };

        if self.pool.is_serial() || live.len() < PAR_MIN_FAULTS {
            // inline path: one persistent scratch, exactly the historical
            // serial engine
            for &fi in &live {
                let fault = *self.faults.get(fi as usize).expect("index in range");
                if let Some(mask) = view.try_detect(&mut self.scratch, fault) {
                    apply(fi, mask, &mut self.status, &mut self.first_detection);
                }
            }
        } else {
            // sharded path: contiguous fault partitions, one private
            // scratch per worker, detection masks merged in fault order
            let n = self.circuit.num_nodes();
            let faults = &self.faults;
            let chunk = live
                .len()
                .div_ceil(self.pool.threads() * 4)
                .max(PAR_MIN_FAULTS / 4);
            let detected: Vec<Vec<(u32, u64)>> = self.pool.par_chunks_init(
                &live,
                chunk,
                || ConeScratch::new(n),
                |scratch, _chunk_index, part| {
                    part.iter()
                        .filter_map(|&fi| {
                            let fault = *faults.get(fi as usize).expect("index in range");
                            view.try_detect(scratch, fault).map(|mask| (fi, mask))
                        })
                        .collect()
                },
            );
            for (fi, mask) in detected.into_iter().flatten() {
                apply(fi, mask, &mut self.status, &mut self.first_detection);
            }
        }
        self.patterns_seen += block.count() as u32;
        newly
    }

    fn good_simulate(&mut self, block: &PatternBlock) {
        for (i, &pi) in self.circuit.inputs().iter().enumerate() {
            self.good[pi.index()] = block.input_word(i);
        }
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in self.circuit.topo_order() {
            let node = self.circuit.node(id);
            match node.kind() {
                GateKind::Input => {}
                GateKind::Dff => self.good[id.index()] = 0,
                kind => {
                    fanin_buf.clear();
                    fanin_buf.extend(node.fanin().iter().map(|f| self.good[f.index()]));
                    self.good[id.index()] = kind.eval_word(&fanin_buf);
                }
            }
        }
    }
}

/// Per-worker cone-propagation scratch: faulty value words, visitation
/// stamps and the current epoch. Cheap to create (two zeroed vectors) and
/// reused across every fault a worker grades.
#[derive(Debug)]
struct ConeScratch {
    fval: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl ConeScratch {
    fn new(num_nodes: usize) -> Self {
        ConeScratch {
            fval: vec![0; num_nodes],
            stamp: vec![0; num_nodes],
            epoch: 0,
        }
    }
}

/// The read-only context shared by every worker grading one pattern block:
/// the circuit, the good-machine and previous-pattern value words, and the
/// block's valid-lane mask.
#[derive(Clone, Copy)]
struct BlockView<'a> {
    circuit: &'a Circuit,
    topo_pos: &'a [u32],
    good: &'a [u64],
    prev: &'a [u64],
    valid: u64,
}

impl BlockView<'_> {
    /// Computes the faulty seed value at the fault site, or `None` if the
    /// fault cannot change anything in this block.
    fn seed_value(&self, fault: Fault) -> Option<(NodeId, u64)> {
        match fault {
            Fault::StuckAt {
                site,
                pin: None,
                value,
            } => {
                let forced = if value { !0u64 } else { 0 };
                let diff = (self.good[site.index()] ^ forced) & self.valid;
                (diff != 0).then_some((site, forced))
            }
            Fault::StuckAt {
                site,
                pin: Some(p),
                value,
            } => {
                let node = self.circuit.node(site);
                let forced = if value { !0u64 } else { 0 };
                let fanin: Vec<u64> = node
                    .fanin()
                    .iter()
                    .enumerate()
                    .map(|(k, f)| {
                        if k == p as usize {
                            forced
                        } else {
                            self.good[f.index()]
                        }
                    })
                    .collect();
                let fv = node.kind().eval_word(&fanin);
                let diff = (fv ^ self.good[site.index()]) & self.valid;
                (diff != 0).then_some((site, fv))
            }
            Fault::OpenSeries { site } => {
                let excite = self.series_excitation(site);
                self.memory_seed(site, excite)
            }
            Fault::OpenParallel { site, pin } => {
                let excite = self.parallel_excitation(site, pin);
                self.memory_seed(site, excite)
            }
            Fault::OpenRise { site } => {
                let g = self.good[site.index()];
                let excite = g & !self.prev[site.index()];
                self.memory_seed(site, excite)
            }
            Fault::OpenFall { site } => {
                let g = self.good[site.index()];
                let excite = !g & self.prev[site.index()];
                self.memory_seed(site, excite)
            }
        }
    }

    /// Faulty value of a stuck-open site: the output retains its previous
    /// good value wherever the fault is excited.
    fn memory_seed(&self, site: NodeId, excite: u64) -> Option<(NodeId, u64)> {
        let g = self.good[site.index()];
        let fv = (g & !excite) | (self.prev[site.index()] & excite);
        let diff = (fv ^ g) & self.valid;
        (diff != 0).then_some((site, fv))
    }

    /// Mask of patterns where *all* inputs of `site` hold the
    /// non-controlling value at `t` but not at `t-1` (series-open
    /// excitation).
    fn series_excitation(&self, site: NodeId) -> u64 {
        let node = self.circuit.node(site);
        let c = match node.kind().controlling_value() {
            Some(c) => c,
            None => return 0,
        };
        let mut all_nc_now = !0u64;
        let mut all_nc_prev = !0u64;
        for f in node.fanin() {
            let now = self.good[f.index()];
            let before = self.prev[f.index()];
            // non-controlling: value != c
            all_nc_now &= if c { !now } else { now };
            all_nc_prev &= if c { !before } else { before };
        }
        all_nc_now & !all_nc_prev
    }

    /// Mask of patterns where pin `p` is the only controlling input at `t`
    /// and all inputs were non-controlling at `t-1` (parallel-open
    /// excitation).
    fn parallel_excitation(&self, site: NodeId, p: u8) -> u64 {
        let node = self.circuit.node(site);
        let c = match node.kind().controlling_value() {
            Some(c) => c,
            None => return 0,
        };
        let mut only_p_now = !0u64;
        let mut all_nc_prev = !0u64;
        for (k, f) in node.fanin().iter().enumerate() {
            let now = self.good[f.index()];
            let before = self.prev[f.index()];
            if k == p as usize {
                only_p_now &= if c { now } else { !now };
            } else {
                only_p_now &= if c { !now } else { now };
            }
            all_nc_prev &= if c { !before } else { before };
        }
        only_p_now & all_nc_prev
    }

    /// Injects `fault` and propagates through its fan-out cone; returns the
    /// mask of patterns detecting it at a primary output, or `None`.
    fn try_detect(&self, scratch: &mut ConeScratch, fault: Fault) -> Option<u64> {
        let (site, seed) = self.seed_value(fault)?;

        scratch.epoch = scratch.epoch.wrapping_add(1);
        if scratch.epoch == 0 {
            scratch.stamp.fill(0);
            scratch.epoch = 1;
        }
        let epoch = scratch.epoch;

        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        scratch.fval[site.index()] = seed;
        scratch.stamp[site.index()] = epoch;
        let mut detect = 0u64;
        if self.circuit.is_output(site) {
            detect |= (seed ^ self.good[site.index()]) & self.valid;
        }
        for &s in self.circuit.fanout(site) {
            heap.push(Reverse((self.topo_pos[s.index()], s.index() as u32)));
        }

        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        let mut last_popped = u32::MAX;
        while let Some(Reverse((pos, idx))) = heap.pop() {
            if pos == last_popped {
                continue; // duplicate entry for the same node
            }
            last_popped = pos;
            let id = NodeId::from_index(idx as usize);
            let node = self.circuit.node(id);
            if !node.kind().is_combinational() {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(node.fanin().iter().map(|f| {
                if scratch.stamp[f.index()] == epoch {
                    scratch.fval[f.index()]
                } else {
                    self.good[f.index()]
                }
            }));
            let fv = node.kind().eval_word(&fanin_buf);
            if fv == self.good[id.index()] {
                continue; // fault effect died here
            }
            scratch.fval[id.index()] = fv;
            scratch.stamp[id.index()] = epoch;
            if self.circuit.is_output(id) {
                detect |= (fv ^ self.good[id.index()]) & self.valid;
            }
            for &s in self.circuit.fanout(id) {
                heap.push(Reverse((self.topo_pos[s.index()], s.index() as u32)));
            }
        }
        (detect != 0).then_some(detect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_fault::FaultList;

    fn exhaustive_patterns(width: usize) -> Vec<Pattern> {
        (0u32..(1 << width))
            .map(|v| Pattern::from_fn(width, |i| (v >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn c17_stuck_at_full_coverage() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let total = faults.len();
        let mut sim = FaultSim::new(&c17, faults);
        let newly = sim.simulate(&exhaustive_patterns(5));
        assert_eq!(newly, total, "all 22 collapsed faults detectable");
    }

    #[test]
    fn c17_stuck_open_coverage_with_transitions() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_open(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        // a long random sequence supplies every needed transition pair
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let seq: Vec<Pattern> = (0..2000).map(|_| Pattern::random(&mut rng, 5)).collect();
        sim.simulate(&seq);
        let rep = sim.report();
        // NAND-only circuit: all stuck-open faults are two-pattern testable
        assert_eq!(
            rep.coverage_pct(),
            100.0,
            "stuck-open coverage too low: {}",
            rep.coverage_pct()
        );
    }

    #[test]
    fn first_pattern_cannot_detect_stuck_open() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_open(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        // a single pattern has no predecessor: nothing may be detected
        let newly = sim.simulate(&[Pattern::from_fn(5, |_| true)]);
        assert_eq!(newly, 0);
    }

    #[test]
    fn chunked_equals_monolithic() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let patterns: Vec<Pattern> = (0..300)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut mono = FaultSim::new(&c, faults.clone());
        mono.simulate(&patterns);

        let mut chunked = FaultSim::new(&c, faults);
        for chunk in patterns.chunks(37) {
            chunked.simulate(chunk);
        }
        assert_eq!(mono.statuses(), chunked.statuses());
        for i in 0..mono.faults().len() {
            assert_eq!(
                mono.first_detection(i),
                chunked.first_detection(i),
                "fault {i}"
            );
        }
    }

    #[test]
    fn parallel_grading_is_bit_identical_to_serial() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let patterns: Vec<Pattern> = (0..400)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut serial = FaultSim::new(&c, faults.clone()).with_threads(1);
        serial.simulate(&patterns);

        for threads in [2, 3, 4, 8] {
            let mut par = FaultSim::new(&c, faults.clone()).with_threads(threads);
            par.simulate(&patterns);
            assert_eq!(serial.statuses(), par.statuses(), "threads={threads}");
            for i in 0..serial.faults().len() {
                assert_eq!(
                    serial.first_detection(i),
                    par.first_detection(i),
                    "threads={threads}, fault {i}"
                );
            }
        }
    }

    #[test]
    fn parallel_incremental_feeding_matches_serial_monolithic() {
        // chunked feeding at 4 threads vs one serial call: the stuck-open
        // carry and the drop decisions must line up across both axes
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let patterns: Vec<Pattern> = (0..300)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut mono = FaultSim::new(&c, faults.clone()).with_threads(1);
        mono.simulate(&patterns);

        let mut par = FaultSim::new(&c, faults).with_threads(4);
        for chunk in patterns.chunks(53) {
            par.simulate(chunk);
        }
        assert_eq!(mono.statuses(), par.statuses());
    }

    #[test]
    fn resume_from_carry_checkpoint_matches_straight_run() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let patterns: Vec<Pattern> = (0..200)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut straight = FaultSim::new(&c, faults.clone());
        straight.simulate(&patterns);

        // checkpoint after 77 patterns, resume a fresh simulator from it
        let mut head = FaultSim::new(&c, faults.clone());
        head.simulate(&patterns[..77]);
        let mut tail = FaultSim::resume(
            &c,
            faults,
            head.statuses(),
            head.carry_bits(),
            head.patterns_seen(),
        );
        tail.simulate(&patterns[77..]);

        assert_eq!(straight.statuses(), tail.statuses());
        assert_eq!(straight.patterns_seen(), tail.patterns_seen());
        // faults detected after the resume point carry identical global
        // first-detection indices
        for i in 0..straight.faults().len() {
            if let Some(first) = tail.first_detection(i) {
                if first >= 77 {
                    assert_eq!(straight.first_detection(i), Some(first), "fault {i}");
                }
            }
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        sim.simulate(&exhaustive_patterns(5));
        assert!(sim.report().detected > 0);
        sim.reset();
        assert_eq!(sim.report().detected, 0);
        assert_eq!(sim.patterns_seen(), 0);
    }

    #[test]
    fn planted_redundant_faults_stay_undetected() {
        // OR(a, AND(a, b)): AND-output stuck-at-0 is redundant.
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("red");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("t", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("r", GateKind::Or, &["a", "t"]).unwrap();
        b.mark_output("r").unwrap();
        let c = b.build().unwrap();
        let t = c.find("t").unwrap();
        let faults: FaultList = [Fault::StuckAt {
            site: t,
            pin: None,
            value: false,
        }]
        .into_iter()
        .collect();
        let mut sim = FaultSim::new(&c, faults);
        sim.simulate(&exhaustive_patterns(2));
        assert_eq!(
            sim.report().detected,
            0,
            "redundant fault must not be detected"
        );
    }

    #[test]
    fn detection_indices_are_global() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let mut sim = FaultSim::new(&c17, faults);
        let all = exhaustive_patterns(5);
        sim.simulate(&all[..3]);
        sim.simulate(&all[3..]);
        let max_idx = (0..sim.faults().len())
            .filter_map(|i| sim.first_detection(i))
            .max()
            .unwrap();
        assert!(max_idx >= 3, "later chunks must report global indices");
        assert_eq!(sim.patterns_seen(), 32);
    }
}
