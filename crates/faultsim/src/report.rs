use std::fmt;

use bist_fault::FaultStatus;

/// Coverage summary over a fault universe.
///
/// Two figures of merit are reported, matching the paper's conventions:
///
/// * [`CoverageReport::coverage_pct`] — detected / total. This is what
///   Figure 4 plots; it saturates *below* 100 % on circuits with redundant
///   faults (96.7 % for C3540 in the paper).
/// * [`CoverageReport::efficiency_pct`] — detected / (total − redundant),
///   the ATPG-style metric that reaches 100 % when everything testable is
///   covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// Faults detected by the graded sequence.
    pub detected: usize,
    /// Faults proven untestable.
    pub redundant: usize,
    /// Faults the ATPG gave up on.
    pub aborted: usize,
    /// Faults still undetected (and not proven redundant).
    pub undetected: usize,
}

impl CoverageReport {
    /// Builds a report by counting statuses.
    pub fn from_statuses(statuses: &[FaultStatus]) -> Self {
        let mut r = CoverageReport {
            detected: 0,
            redundant: 0,
            aborted: 0,
            undetected: 0,
        };
        for s in statuses {
            match s {
                FaultStatus::Detected => r.detected += 1,
                FaultStatus::Redundant => r.redundant += 1,
                FaultStatus::Aborted => r.aborted += 1,
                FaultStatus::Undetected => r.undetected += 1,
            }
        }
        r
    }

    /// Total number of faults in the universe.
    pub fn total(&self) -> usize {
        self.detected + self.redundant + self.aborted + self.undetected
    }

    /// Raw fault coverage: detected / total, in percent.
    pub fn coverage_pct(&self) -> f64 {
        if self.total() == 0 {
            return 100.0;
        }
        100.0 * self.detected as f64 / self.total() as f64
    }

    /// Test efficiency: detected / (total − redundant), in percent. The
    /// ceiling of [`CoverageReport::coverage_pct`] once redundancy is
    /// proven.
    pub fn efficiency_pct(&self) -> f64 {
        let testable = self.total() - self.redundant;
        if testable == 0 {
            return 100.0;
        }
        100.0 * self.detected as f64 / testable as f64
    }

    /// The maximum achievable coverage_pct given the proven redundancy —
    /// the paper's "96.7 %" ceiling for C3540.
    pub fn achievable_pct(&self) -> f64 {
        if self.total() == 0 {
            return 100.0;
        }
        100.0 * (self.total() - self.redundant) as f64 / self.total() as f64
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} detected ({:.2} %), {} redundant, {} aborted, {} undetected",
            self.detected,
            self.total(),
            self.coverage_pct(),
            self.redundant,
            self.aborted,
            self.undetected
        )
    }
}

/// A coverage-versus-sequence-length curve: the data behind the paper's
/// Figure 4 (pure pseudo-random) and Figure 5 (mixed sequences).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCurve {
    points: Vec<(usize, f64)>,
}

impl CoverageCurve {
    /// Builds a curve from `(sequence length, coverage %)` points.
    pub fn new(points: Vec<(usize, f64)>) -> Self {
        CoverageCurve { points }
    }

    /// The `(length, coverage %)` points, in increasing length order.
    pub fn points(&self) -> &[(usize, f64)] {
        &self.points
    }

    /// Coverage at the longest measured length.
    pub fn final_coverage(&self) -> Option<f64> {
        self.points.last().map(|&(_, c)| c)
    }

    /// The shortest measured length reaching at least `target` percent.
    pub fn length_for(&self, target: f64) -> Option<usize> {
        self.points
            .iter()
            .find(|&&(_, c)| c >= target)
            .map(|&(l, _)| l)
    }

    /// True if coverage never decreases with length (a sanity invariant:
    /// fault dropping makes coverage monotone).
    pub fn is_monotone(&self) -> bool {
        self.points.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-9)
    }
}

impl fmt::Display for CoverageCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (len, cov) in &self.points {
            writeln!(f, "{len:>8}  {cov:6.2} %")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_arithmetic() {
        let statuses = [
            FaultStatus::Detected,
            FaultStatus::Detected,
            FaultStatus::Redundant,
            FaultStatus::Undetected,
        ];
        let r = CoverageReport::from_statuses(&statuses);
        assert_eq!(r.total(), 4);
        assert!((r.coverage_pct() - 50.0).abs() < 1e-9);
        assert!((r.efficiency_pct() - 2.0 / 3.0 * 100.0).abs() < 1e-9);
        assert!((r.achievable_pct() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn empty_universe_is_fully_covered() {
        let r = CoverageReport::from_statuses(&[]);
        assert_eq!(r.coverage_pct(), 100.0);
        assert_eq!(r.efficiency_pct(), 100.0);
    }

    #[test]
    fn curve_queries() {
        let c = CoverageCurve::new(vec![(0, 0.0), (100, 70.0), (200, 88.4), (1000, 96.7)]);
        assert!(c.is_monotone());
        assert_eq!(c.length_for(85.0), Some(200));
        assert_eq!(c.length_for(99.0), None);
        assert_eq!(c.final_coverage(), Some(96.7));
    }
}
