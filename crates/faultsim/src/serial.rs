//! Naive pattern-at-a-time reference fault simulator.
//!
//! An independent, deliberately simple implementation of the same fault
//! semantics as the PPSFP engine, used as the oracle in property tests:
//! the faulty machine is evaluated node by node with plain booleans, one
//! pattern (or pattern pair) at a time.

use bist_fault::Fault;
use bist_logicsim::{naive_eval, Pattern};
use bist_netlist::{Circuit, GateKind, NodeId};

/// Evaluates the faulty machine for `pattern`, with `prev` supplying the
/// initialization values stuck-open faults need (good-machine
/// initialization; `None` means "first pattern of the sequence", which
/// cannot excite a stuck-open fault).
///
/// Returns the faulty value of every node, or `None` when the fault is not
/// excited under this pattern (pair) — the machine then behaves like the
/// good one.
pub fn faulty_eval(
    circuit: &Circuit,
    fault: Fault,
    prev: Option<&Pattern>,
    pattern: &Pattern,
) -> Option<Vec<bool>> {
    let good_now = naive_eval(circuit, &pattern.to_bits());
    let forced: Option<(NodeId, ForcedValue)> = match fault {
        Fault::StuckAt {
            site,
            pin: None,
            value,
        } => Some((site, ForcedValue::Output(value))),
        Fault::StuckAt {
            site,
            pin: Some(p),
            value,
        } => Some((site, ForcedValue::Pin(p, value))),
        Fault::OpenSeries { site } => {
            let good_prev = naive_eval(circuit, &prev?.to_bits());
            let node = circuit.node(site);
            let c = node.kind().controlling_value()?;
            let all_nc_now = node.fanin().iter().all(|f| good_now[f.index()] != c);
            let all_nc_prev = node.fanin().iter().all(|f| good_prev[f.index()] != c);
            (all_nc_now && !all_nc_prev)
                .then_some((site, ForcedValue::Output(good_prev[site.index()])))
        }
        Fault::OpenParallel { site, pin } => {
            let good_prev = naive_eval(circuit, &prev?.to_bits());
            let node = circuit.node(site);
            let c = node.kind().controlling_value()?;
            let only_p = node.fanin().iter().enumerate().all(|(k, f)| {
                if k == pin as usize {
                    good_now[f.index()] == c
                } else {
                    good_now[f.index()] != c
                }
            });
            let all_nc_prev = node.fanin().iter().all(|f| good_prev[f.index()] != c);
            (only_p && all_nc_prev).then_some((site, ForcedValue::Output(good_prev[site.index()])))
        }
        Fault::OpenRise { site } => {
            let good_prev = naive_eval(circuit, &prev?.to_bits());
            (good_now[site.index()] && !good_prev[site.index()])
                .then_some((site, ForcedValue::Output(false)))
        }
        Fault::OpenFall { site } => {
            let good_prev = naive_eval(circuit, &prev?.to_bits());
            (!good_now[site.index()] && good_prev[site.index()])
                .then_some((site, ForcedValue::Output(true)))
        }
    };
    let (site, force) = forced?;

    // forward-evaluate the faulty machine over the flattened view
    let g = circuit.sim_graph();
    let mut values = vec![false; circuit.num_nodes()];
    for (i, &pi) in g.inputs().iter().enumerate() {
        values[pi as usize] = pattern.get(i);
    }
    for &id in g.topo() {
        let id = id as usize;
        let mut v = match g.kind(id) {
            GateKind::Input => values[id],
            GateKind::Dff => false,
            kind => {
                kind.eval_bool_iter(g.fanin(id).iter().enumerate().map(|(k, &f)| match force {
                    ForcedValue::Pin(p, fv) if id == site.index() && k == p as usize => fv,
                    _ => values[f as usize],
                }))
            }
        };
        if id == site.index() {
            if let ForcedValue::Output(fv) = force {
                v = fv;
            }
        }
        values[id] = v;
    }
    Some(values)
}

#[derive(Debug, Clone, Copy)]
enum ForcedValue {
    Output(bool),
    Pin(u8, bool),
}

/// True if `fault` is detected at a primary output by `pattern` (with
/// `prev` as the preceding pattern of the sequence).
pub fn detects(circuit: &Circuit, fault: Fault, prev: Option<&Pattern>, pattern: &Pattern) -> bool {
    let Some(faulty) = faulty_eval(circuit, fault, prev, pattern) else {
        return false;
    };
    let good = naive_eval(circuit, &pattern.to_bits());
    circuit
        .outputs()
        .iter()
        .any(|o| faulty[o.index()] != good[o.index()])
}

/// Grades a whole ordered sequence serially; returns, for each fault of
/// `faults`, the index of the first detecting pattern (or `None`).
pub fn grade_sequence(
    circuit: &Circuit,
    faults: &[Fault],
    patterns: &[Pattern],
) -> Vec<Option<u32>> {
    faults
        .iter()
        .map(|&fault| {
            let mut prev: Option<&Pattern> = None;
            for (t, p) in patterns.iter().enumerate() {
                if detects(circuit, fault, prev, p) {
                    return Some(t as u32);
                }
                prev = Some(p);
            }
            None
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultSim;
    use bist_fault::FaultList;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ppsfp_matches_serial_on_c17_exhaustive() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::mixed_model(&c17);
        let patterns: Vec<Pattern> = (0u32..32)
            .chain((0..32).rev())
            .map(|v| Pattern::from_fn(5, |i| (v >> i) & 1 == 1))
            .collect();
        let serial = grade_sequence(&c17, faults.faults(), &patterns);
        let mut ppsfp = FaultSim::new(&c17, faults);
        ppsfp.simulate(&patterns);
        for (i, &graded) in serial.iter().enumerate() {
            assert_eq!(
                graded,
                ppsfp.first_detection(i),
                "fault {} disagrees",
                ppsfp.faults().get(i).unwrap().describe(&c17)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn ppsfp_matches_serial_on_c432_random(seed in any::<u64>()) {
            let c = bist_netlist::iscas85::circuit("c432").unwrap();
            let faults = FaultList::mixed_model(&c);
            let mut rng = StdRng::seed_from_u64(seed);
            let patterns: Vec<Pattern> = (0..80)
                .map(|_| Pattern::random(&mut rng, c.inputs().len()))
                .collect();
            // serial grading is slow: sample a slice of the universe
            let sampled: Vec<Fault> = faults
                .iter()
                .copied()
                .enumerate()
                .filter(|(i, _)| i % 37 == 0)
                .map(|(_, f)| f)
                .collect();
            let serial = grade_sequence(&c, &sampled, &patterns);

            let universe: FaultList = sampled.iter().copied().collect();
            let mut ppsfp = FaultSim::new(&c, universe);
            ppsfp.simulate(&patterns);
            for i in 0..sampled.len() {
                prop_assert_eq!(
                    serial[i],
                    ppsfp.first_detection(i),
                    "fault {} disagrees",
                    sampled[i].describe(&c)
                );
            }
        }
    }

    #[test]
    fn stuck_open_requires_named_transition() {
        // NAND(a, b): series-open is detected by 0x -> 11 (output 1 -> 0
        // blocked), observed directly at the output.
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("nand2");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("y", GateKind::Nand, &["a", "b"]).unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        let y = c.find("y").unwrap();
        let f = Fault::OpenSeries { site: y };
        let p00: Pattern = "00".parse().unwrap();
        let p11: Pattern = "11".parse().unwrap();
        assert!(detects(&c, f, Some(&p00), &p11));
        assert!(!detects(&c, f, Some(&p11), &p11), "no transition, no test");
        assert!(
            !detects(&c, f, None, &p11),
            "first pattern cannot test opens"
        );

        // parallel-open on pin 0: 11 -> 01 ... pin a goes controlling alone
        let fp = Fault::OpenParallel { site: y, pin: 0 };
        let p01: Pattern = "01".parse().unwrap(); // a=0, b=1
        assert!(detects(&c, fp, Some(&p11), &p01));
        // a=0,b=0: both controlling -> output driven through b's transistor too
        assert!(!detects(&c, fp, Some(&p11), &p00));
    }
}
