//! COP-style testability analysis: signal probabilities, observabilities
//! and per-fault random-detection estimates.
//!
//! The paper's whole trade-off turns on *random-pattern-resistant* faults
//! — faults whose detection probability under random stimuli is so low
//! that the pseudo-random prefix realistically never catches them. This
//! module implements the classic COP (controllability/observability
//! program) estimates: one forward pass computes `P(node = 1)` under
//! independent uniform inputs, one backward pass computes the probability
//! that a change at a node propagates to an output. Their product bounds
//! the per-pattern detection probability of a stuck-at fault, which is
//! how tools predict where a Figure-4-style coverage curve will flatten.
//!
//! The estimates assume signal independence (they ignore reconvergent
//! fan-out), so they are heuristics — good for ranking faults, not for
//! exact prediction. The tests check exactly that: rank correlation
//! against measured detection, not equality.

use bist_fault::Fault;
use bist_netlist::{Circuit, GateKind, NodeId};

/// COP testability estimates for one circuit.
///
/// # Example
///
/// ```
/// use bist_faultsim::Testability;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let t = Testability::analyze(&c17);
/// let g10 = c17.find("G10").unwrap();
/// // NAND of two uniform inputs is 1 with probability 3/4
/// assert!((t.one_probability(g10) - 0.75).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Testability {
    c1: Vec<f64>,
    observability: Vec<f64>,
}

impl Testability {
    /// Runs the forward (controllability) and backward (observability)
    /// passes.
    pub fn analyze(circuit: &Circuit) -> Self {
        let n = circuit.num_nodes();
        let mut c1 = vec![0.5f64; n];
        for &id in circuit.topo_order() {
            let node = circuit.node(id);
            let p = match node.kind() {
                GateKind::Input | GateKind::Dff => 0.5,
                GateKind::Const0 => 0.0,
                GateKind::Const1 => 1.0,
                GateKind::Buf => c1[node.fanin()[0].index()],
                GateKind::Not => 1.0 - c1[node.fanin()[0].index()],
                GateKind::And | GateKind::Nand => {
                    let prod: f64 = node.fanin().iter().map(|f| c1[f.index()]).product();
                    if node.kind() == GateKind::And {
                        prod
                    } else {
                        1.0 - prod
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let prod: f64 = node.fanin().iter().map(|f| 1.0 - c1[f.index()]).product();
                    if node.kind() == GateKind::Or {
                        1.0 - prod
                    } else {
                        prod
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // P(odd parity) via the product identity
                    let prod: f64 = node
                        .fanin()
                        .iter()
                        .map(|f| 1.0 - 2.0 * c1[f.index()])
                        .product();
                    let odd = 0.5 * (1.0 - prod);
                    if node.kind() == GateKind::Xor {
                        odd
                    } else {
                        1.0 - odd
                    }
                }
            };
            c1[id.index()] = p;
        }

        let mut observability = vec![0.0f64; n];
        for &o in circuit.outputs() {
            observability[o.index()] = 1.0;
        }
        for &id in circuit.topo_order().iter().rev() {
            let node = circuit.node(id);
            if !node.kind().is_combinational() {
                continue;
            }
            let ob_out = observability[id.index()];
            if ob_out == 0.0 {
                continue;
            }
            for (i, &fi) in node.fanin().iter().enumerate() {
                let sensitize: f64 = match node.kind() {
                    GateKind::Buf | GateKind::Not => 1.0,
                    GateKind::And | GateKind::Nand => node
                        .fanin()
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, f)| c1[f.index()])
                        .product(),
                    GateKind::Or | GateKind::Nor => node
                        .fanin()
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, f)| 1.0 - c1[f.index()])
                        .product(),
                    GateKind::Xor | GateKind::Xnor => 1.0,
                    _ => 0.0,
                };
                let through_this_pin = ob_out * sensitize;
                // stems with several branches: combine as the complement
                // of all branches missing
                let prev = observability[fi.index()];
                observability[fi.index()] = 1.0 - (1.0 - prev) * (1.0 - through_this_pin);
            }
        }
        Testability { c1, observability }
    }

    /// `P(node = 1)` under independent uniform random inputs.
    pub fn one_probability(&self, id: NodeId) -> f64 {
        self.c1[id.index()]
    }

    /// Estimated probability that a value change at `id` reaches a
    /// primary output under a random pattern.
    pub fn observability(&self, id: NodeId) -> f64 {
        self.observability[id.index()]
    }

    /// Estimated per-pattern detection probability of a stuck-at fault
    /// (stuck-open faults return the analogous two-pattern estimate,
    /// which is the product of the excitation probabilities of the two
    /// time frames).
    pub fn detection_probability(&self, circuit: &Circuit, fault: Fault) -> f64 {
        match fault {
            Fault::StuckAt {
                site,
                pin: None,
                value,
            } => {
                let activation = if value {
                    1.0 - self.c1[site.index()]
                } else {
                    self.c1[site.index()]
                };
                activation * self.observability[site.index()]
            }
            Fault::StuckAt {
                site,
                pin: Some(p),
                value,
            } => {
                let driver = circuit.node(site).fanin()[p as usize];
                let activation = if value {
                    1.0 - self.c1[driver.index()]
                } else {
                    self.c1[driver.index()]
                };
                // approximate the branch observability by the gate's
                activation * self.observability[site.index()]
            }
            Fault::OpenSeries { site } => {
                let node = circuit.node(site);
                let c = node.kind().controlling_value().unwrap_or(false);
                let all_nc: f64 = node
                    .fanin()
                    .iter()
                    .map(|f| {
                        if c {
                            1.0 - self.c1[f.index()]
                        } else {
                            self.c1[f.index()]
                        }
                    })
                    .product();
                all_nc * (1.0 - all_nc) * self.observability[site.index()]
            }
            Fault::OpenParallel { site, pin } => {
                let node = circuit.node(site);
                let c = node.kind().controlling_value().unwrap_or(false);
                let all_nc: f64 = node
                    .fanin()
                    .iter()
                    .map(|f| {
                        if c {
                            1.0 - self.c1[f.index()]
                        } else {
                            self.c1[f.index()]
                        }
                    })
                    .product();
                let only_pin: f64 = node
                    .fanin()
                    .iter()
                    .enumerate()
                    .map(|(k, f)| {
                        let c1 = self.c1[f.index()];
                        if k == pin as usize {
                            if c {
                                c1
                            } else {
                                1.0 - c1
                            }
                        } else if c {
                            1.0 - c1
                        } else {
                            c1
                        }
                    })
                    .product();
                all_nc * only_pin * self.observability[site.index()]
            }
            Fault::OpenRise { site } => {
                let p1 = self.c1[site.index()];
                p1 * (1.0 - p1) * self.observability[site.index()]
            }
            Fault::OpenFall { site } => {
                let p1 = self.c1[site.index()];
                p1 * (1.0 - p1) * self.observability[site.index()]
            }
        }
    }

    /// The `count` faults with the lowest estimated detection probability
    /// — the random-pattern-resistant candidates the deterministic suffix
    /// exists for.
    pub fn hardest_faults(
        &self,
        circuit: &Circuit,
        faults: &[Fault],
        count: usize,
    ) -> Vec<(Fault, f64)> {
        let mut scored: Vec<(Fault, f64)> = faults
            .iter()
            .map(|&f| (f, self.detection_probability(circuit, f)))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored.truncate(count);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_fault::FaultList;
    use bist_logicsim::Pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn c17_probabilities_are_exact_for_tree_paths() {
        let c17 = bist_netlist::iscas85::c17();
        let t = Testability::analyze(&c17);
        let g10 = c17.find("G10").unwrap();
        assert!((t.one_probability(g10) - 0.75).abs() < 1e-9);
        // inputs are observable
        for &pi in c17.inputs() {
            assert!(t.observability(pi) > 0.1);
        }
        // outputs have observability 1
        for &po in c17.outputs() {
            assert!((t.observability(po) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deep_and_trees_score_as_hard() {
        use bist_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("hard");
        for i in 0..8 {
            b.add_input(&format!("i{i}")).unwrap();
        }
        let mut prev = "i0".to_owned();
        for i in 1..8 {
            let name = format!("a{i}");
            b.add_gate(&name, GateKind::And, &[&prev, &format!("i{i}")])
                .unwrap();
            prev = name;
        }
        b.mark_output("a7").unwrap();
        let c = b.build().unwrap();
        let t = Testability::analyze(&c);
        let top = c.find("a7").unwrap();
        // P(out = 1) = 2^-8
        assert!((t.one_probability(top) - 2f64.powi(-8)).abs() < 1e-9);
        let sa0 = Fault::StuckAt {
            site: top,
            pin: None,
            value: false,
        };
        assert!(t.detection_probability(&c, sa0) < 0.01);
    }

    #[test]
    fn estimates_rank_faults_like_measured_detection() {
        // Spearman-style sanity: the half of faults ranked "easy" by COP
        // must be detected measurably earlier on average than the "hard"
        // half.
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let t = Testability::analyze(&c);
        let faults = FaultList::stuck_at_collapsed(&c);
        let mut sim = crate::FaultSim::new(&c, faults.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let patterns: Vec<Pattern> = (0..2000)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();
        sim.simulate(&patterns);

        let mut scored: Vec<(usize, f64)> = faults
            .iter()
            .enumerate()
            .map(|(i, &f)| (i, t.detection_probability(&c, f)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let half = scored.len() / 2;
        let mean_first = |slice: &[(usize, f64)]| -> f64 {
            let mut sum = 0.0;
            let mut n = 0;
            for (i, _) in slice {
                if let Some(first) = sim.first_detection(*i) {
                    sum += first as f64;
                    n += 1;
                }
            }
            if n == 0 {
                f64::INFINITY
            } else {
                sum / n as f64
            }
        };
        let easy = mean_first(&scored[..half]);
        let hard = mean_first(&scored[half..]);
        assert!(
            easy < hard,
            "easy faults should be found earlier: easy {easy:.1} vs hard {hard:.1}"
        );
    }

    #[test]
    fn hardest_faults_are_sorted() {
        let c = bist_netlist::iscas85::c17();
        let t = Testability::analyze(&c);
        let faults = FaultList::mixed_model(&c);
        let hardest = t.hardest_faults(&c, faults.faults(), 5);
        assert_eq!(hardest.len(), 5);
        for w in hardest.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
