//! The model-generic word-parallel fault-grading engine.
//!
//! Every fault model in the workspace — stuck-at/stuck-open
//! ([`crate::FaultSim`]), transition-delay (`bist-delay`), bridging
//! (`bist-bridging`) — grades the same way: simulate 64 patterns
//! bit-parallel through the good machine, inject one fault, re-evaluate
//! only its fan-out cone with the levelized bucket queue, and compare
//! primary outputs. [`WordSim`] implements that loop once, generically
//! over a [`WordFault`]: the model contributes only its *seed* — the
//! faulty value word(s) at the injection site(s) — and the engine owns
//! everything else: the flattened [`SimGraph`] good machine, the
//! previous-pattern words and their carry across blocks (what two-pattern
//! models key launches on), the live-fault list with drop-on-detection,
//! per-worker cone scratches leased from a park, and the `bist-par`
//! sharding whose merge order makes results **bit-identical at every
//! thread count**.
//!
//! A model needing *two* injection sites (a bridging short drives both
//! shorted nodes to the resolved value) returns two seeds; the cone walk
//! then starts from the union of both fan-outs. Models with an
//! excitation-only detection criterion (Iddq for bridges) additionally
//! opt into per-fault excitation tracking, which the engine evaluates for
//! the *whole* universe each block — excitation is observable on already
//! voltage-detected faults too.

use std::sync::Mutex;

use bist_fault::FaultStatus;
use bist_logicsim::{Pattern, PatternBlock};
use bist_netlist::{Circuit, GateKind, LevelQueue, SimGraph};
use bist_par::Pool;

/// Below this many live faults a block is graded serially even on a wide
/// pool: the per-block spawn cost would exceed the cone work. The cutoff
/// only moves work between identical code paths — results are the same on
/// either side of it.
const PAR_MIN_FAULTS: usize = 128;

/// Minimum live faults per worker before sharding a block pays: each
/// extra worker costs a scratch lease, a spawn and a share of the merge
/// barrier, so a shard thinner than this loses more to overhead than it
/// gains in parallel cone work. Together with [`PAR_MIN_FAULTS`] this
/// puts the serial/sharded crossover at `workers × 256` live faults
/// (see DESIGN.md §13). Like `PAR_MIN_FAULTS`, the cutoff only selects
/// between bit-identical code paths.
const PAR_MIN_FAULTS_PER_WORKER: usize = 256;

/// Monotonic work counters of one [`WordSim`], exposed so throughput
/// benchmarks can report rates (and so reviews can assert the steady-state
/// block loop does the expected amount of work and nothing more). All
/// counts are deterministic — identical at every thread width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// 64-pattern blocks graded so far.
    pub blocks: u64,
    /// Gate evaluations performed by the good-machine simulation
    /// (combinational gates × blocks).
    pub good_gate_evals: u64,
    /// Cone-propagation events: nodes drained from the levelized bucket
    /// queue across all faults and blocks.
    pub cone_events: u64,
}

/// The read-only context shared by every worker grading one pattern
/// block: the flattened circuit view, the good-machine and
/// previous-pattern value words, and the block's valid-lane mask.
///
/// Bit `j` of a value word is the node's value under pattern `j` of the
/// block; bit `j` of [`BlockCtx::prev`] is the value under pattern `j-1`
/// of the *sequence* (the carry supplies bit 0 from the previous block;
/// the very first pattern's predecessor is itself, which kills every
/// transition-style excitation).
#[derive(Clone, Copy)]
pub struct BlockCtx<'a> {
    /// The flattened circuit under test.
    pub graph: &'a SimGraph,
    /// Good-machine value word per node for this block.
    pub good: &'a [u64],
    /// Previous-pattern good value word per node.
    pub prev: &'a [u64],
    /// Mask of lanes carrying real patterns (a partial last block grades
    /// fewer than 64).
    pub valid: u64,
}

/// The faulty seed(s) of one fault for one block: up to two injection
/// sites with their faulty value words. An empty seed set means the fault
/// cannot change anything in this block and the cone walk is skipped.
#[derive(Debug, Clone, Copy)]
pub struct Seeds {
    sites: [(u32, u64); 2],
    len: u8,
}

impl Seeds {
    /// No injection this block.
    pub const NONE: Seeds = Seeds {
        sites: [(0, 0); 2],
        len: 0,
    };

    /// A single-site injection (stuck-at, open, transition).
    pub fn one(site: u32, value: u64) -> Self {
        Seeds {
            sites: [(site, value), (0, 0)],
            len: 1,
        }
    }

    /// A two-site injection (a bridge drives both shorted nodes).
    pub fn two(a: u32, a_value: u64, b: u32, b_value: u64) -> Self {
        Seeds {
            sites: [(a, a_value), (b, b_value)],
            len: 2,
        }
    }

    /// The populated `(site, value)` pairs.
    pub fn as_slice(&self) -> &[(u32, u64)] {
        &self.sites[..self.len as usize]
    }

    /// True when no site is seeded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One fault of a word-parallel model: the only thing a model contributes
/// to [`WordSim`] is how to compute its faulty seed word(s) from the
/// block's good-machine values.
pub trait WordFault: Copy + Send + Sync {
    /// Whether the engine tracks per-fault excitation every block (the
    /// Iddq criterion of bridging faults). Costs one
    /// [`WordFault::excitation`] call per fault per block when enabled.
    const TRACKS_EXCITATION: bool = false;

    /// The faulty value word(s) at the injection site(s), or
    /// [`Seeds::NONE`] when the fault cannot change anything this block
    /// (not excited, or the faulty value equals the good one everywhere).
    fn seeds(&self, ctx: &BlockCtx<'_>) -> Seeds;

    /// Mask of valid lanes exciting the fault, for models with
    /// [`WordFault::TRACKS_EXCITATION`]. The default never excites.
    fn excitation(&self, _ctx: &BlockCtx<'_>) -> u64 {
        0
    }
}

/// Per-worker cone-propagation scratch: faulty value words, visitation
/// stamps, and a levelized bucket queue ([`LevelQueue`]). Reused across
/// every fault a worker grades — after warm-up the cone walk allocates
/// nothing.
#[derive(Debug)]
struct ConeScratch {
    /// Faulty value word per node, valid where `stamp == epoch`.
    fval: Vec<u64>,
    /// Faulty-value validity stamp per node.
    stamp: Vec<u32>,
    epoch: u32,
    queue: LevelQueue,
    /// Nodes drained from the queue since the counter was last harvested.
    events: u64,
}

impl ConeScratch {
    fn new(graph: &SimGraph) -> Self {
        let n = graph.num_nodes();
        ConeScratch {
            fval: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
            queue: LevelQueue::new(graph),
            events: 0,
        }
    }
}

/// A worker's block-scoped loan of a [`ConeScratch`] from the simulator's
/// park: taken at worker start-up, handed back on drop at the block
/// barrier. Steady-state blocks therefore reuse warm scratches instead of
/// allocating fresh ones per block.
struct ScratchLease<'p> {
    scratch: Option<ConeScratch>,
    park: &'p Mutex<Vec<ConeScratch>>,
}

impl<'p> ScratchLease<'p> {
    fn take(park: &'p Mutex<Vec<ConeScratch>>, graph: &SimGraph) -> Self {
        let parked = park.lock().expect("scratch park poisoned").pop();
        ScratchLease {
            scratch: Some(parked.unwrap_or_else(|| ConeScratch::new(graph))),
            park,
        }
    }

    fn scratch(&mut self) -> &mut ConeScratch {
        self.scratch.as_mut().expect("present until drop")
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.park
                .lock()
                .expect("scratch park poisoned")
                .push(scratch);
        }
    }
}

impl BlockCtx<'_> {
    /// Injects `seeds` and propagates through the union of the seeded
    /// sites' fan-out cones with the levelized bucket queue; returns the
    /// mask of patterns detecting a difference at a primary output, or
    /// `None`.
    ///
    /// Draining buckets in ascending level order visits every reached
    /// node exactly once, after all of its fan-ins (which sit at strictly
    /// lower levels) are final — the same values, and therefore the same
    /// detection masks, as any other topological evaluation order. With
    /// two seeds the wave starts at the lower of the two levels; the
    /// other seed site is already stamped, so its fan-out reads the
    /// faulty value exactly as if it had been drained.
    fn try_detect(&self, scratch: &mut ConeScratch, seeds: Seeds) -> Option<u64> {
        let seeds = seeds.as_slice();
        let &(first, _) = seeds.first()?;
        let g = self.graph;

        scratch.epoch = scratch.epoch.wrapping_add(1);
        if scratch.epoch == 0 {
            scratch.stamp.fill(0);
            scratch.epoch = 1;
        }
        let epoch = scratch.epoch;

        let mut detect = 0u64;
        let mut min_level = g.level(first as usize);
        for &(site, seed) in seeds {
            let site = site as usize;
            scratch.fval[site] = seed;
            scratch.stamp[site] = epoch;
            if g.is_output(site) {
                detect |= (seed ^ self.good[site]) & self.valid;
            }
            min_level = min_level.min(g.level(site));
        }

        scratch.queue.begin(min_level);
        for &(site, _) in seeds {
            for &s in g.fanout(site as usize) {
                if g.kind(s as usize).is_combinational() {
                    scratch.queue.push(s, g.level(s as usize));
                }
            }
        }

        while let Some(bucket) = scratch.queue.take_bucket() {
            scratch.events += bucket.len() as u64;
            for &id in &bucket {
                let id = id as usize;
                let fv = g.eval_word(id, |f| {
                    if scratch.stamp[f] == epoch {
                        scratch.fval[f]
                    } else {
                        self.good[f]
                    }
                });
                if fv == self.good[id] {
                    continue; // fault effect died here
                }
                scratch.fval[id] = fv;
                scratch.stamp[id] = epoch;
                if g.is_output(id) {
                    detect |= (fv ^ self.good[id]) & self.valid;
                }
                for &s in g.fanout(id) {
                    if g.kind(s as usize).is_combinational() {
                        scratch.queue.push(s, g.level(s as usize));
                    }
                }
            }
            scratch.queue.restore(bucket);
        }
        (detect != 0).then_some(detect)
    }
}

/// The model-generic parallel-pattern single-fault-propagation simulator
/// with fault dropping. See the `wordsim` module docs for the division
/// of labour between the engine and a [`WordFault`] model.
///
/// Create one per (circuit, fault universe) pair, feed it patterns with
/// [`WordSim::simulate`] — in one call or incrementally; the engine keeps
/// the sequence position and the previous pattern, so two-pattern
/// launches spanning call boundaries are honoured — then read results via
/// [`WordSim::report`], [`WordSim::status_of`] and
/// [`WordSim::first_detection`].
#[derive(Debug)]
pub struct WordSim<'c, F> {
    circuit: &'c Circuit,
    graph: &'c SimGraph,
    faults: Vec<F>,
    status: Vec<FaultStatus>,
    /// Global index of the first pattern that detected each fault.
    first_detection: Vec<Option<u32>>,
    /// Any-pattern excitation flag per fault (only maintained for models
    /// with [`WordFault::TRACKS_EXCITATION`]).
    excited: Vec<bool>,
    /// Patterns consumed so far (across all `simulate` calls).
    patterns_seen: u32,
    /// Good-machine value of every node for the last pattern of the
    /// previous block (the two-pattern carry).
    last_bits: Vec<bool>,
    // --- scratch buffers, reused across blocks ---
    good: Vec<u64>,
    prev: Vec<u64>,
    scratch: ConeScratch,
    /// Indices of still-undetected faults, maintained incrementally
    /// (swap-remove on detection). Rebuilt lazily after out-of-band status
    /// edits ([`WordSim::set_status`] / [`WordSim::reset`]).
    live: Vec<u32>,
    live_dirty: bool,
    /// Reused 64-pattern packing buffer (allocated on the first block).
    block_buf: Option<PatternBlock>,
    /// Parked per-worker scratches for the sharded path: workers lease one
    /// at block start and return it at the block barrier, so the warm
    /// buckets survive across blocks at every pool width.
    scratch_park: Mutex<Vec<ConeScratch>>,
    /// Number of combinational gates — the good-sim work per block.
    comb_gates: u64,
    counters: SimCounters,
    pool: Pool,
    /// Hardware thread count, cached at construction: a pool wider than
    /// the machine only adds scheduling overhead, so the sharding
    /// decision clamps the worker count here (`BIST_THREADS` above the
    /// core count still grades correctly, just without phantom workers).
    hw_threads: usize,
}

impl<'c, F: WordFault> WordSim<'c, F> {
    /// Creates a simulator grading `faults` on `circuit`, with the pool
    /// width taken from `BIST_THREADS` / the machine.
    pub fn new(circuit: &'c Circuit, faults: Vec<F>) -> Self {
        let graph = circuit.sim_graph();
        let n = circuit.num_nodes();
        let len = faults.len();
        let comb_gates = (0..n).filter(|&i| graph.kind(i).is_combinational()).count() as u64;
        WordSim {
            circuit,
            graph,
            faults,
            status: vec![FaultStatus::Undetected; len],
            first_detection: vec![None; len],
            excited: if F::TRACKS_EXCITATION {
                vec![false; len]
            } else {
                Vec::new()
            },
            patterns_seen: 0,
            last_bits: vec![false; n],
            good: vec![0; n],
            prev: vec![0; n],
            scratch: ConeScratch::new(graph),
            live: Vec::with_capacity(len),
            live_dirty: true,
            block_buf: None,
            scratch_park: Mutex::new(Vec::new()),
            comb_gates,
            counters: SimCounters::default(),
            pool: Pool::from_env(),
            hw_threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }

    /// Pretends the machine has `n` hardware threads, so the sharded
    /// path stays testable on boxes narrower than the test's pool.
    #[cfg(test)]
    pub(crate) fn set_hw_threads(&mut self, n: usize) {
        self.hw_threads = n.max(1);
    }

    /// Re-creates a simulator mid-sequence from a carry checkpoint: the
    /// per-fault `statuses` and good-machine `carry` bits recorded after
    /// exactly `patterns_seen` patterns of some sequence (see
    /// [`WordSim::carry_bits`]). Feeding the remainder of that sequence
    /// behaves exactly like one simulator that consumed it end to end,
    /// except that [`WordSim::first_detection`] is only populated for
    /// faults detected *after* the resume point (earlier detections carry
    /// a status but no index), and excitation flags restart at the resume
    /// point too.
    ///
    /// # Panics
    ///
    /// Panics when `statuses` does not match the universe or `carry` does
    /// not match the circuit.
    pub fn resume(
        circuit: &'c Circuit,
        faults: Vec<F>,
        statuses: &[FaultStatus],
        carry: &[bool],
        patterns_seen: u32,
    ) -> Self {
        assert_eq!(statuses.len(), faults.len(), "status/universe mismatch");
        assert_eq!(carry.len(), circuit.num_nodes(), "carry/circuit mismatch");
        let mut sim = WordSim::new(circuit, faults);
        sim.status.copy_from_slice(statuses);
        sim.last_bits.copy_from_slice(carry);
        sim.patterns_seen = patterns_seen;
        sim
    }

    /// Sets the pool width for subsequent [`WordSim::simulate`] calls
    /// (`0` = automatic: `BIST_THREADS` or the machine width). Grading
    /// results never depend on this knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = Pool::resolve(threads);
    }

    /// Builder form of [`WordSim::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// The pool width grading currently uses.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The fault universe being graded.
    pub fn faults(&self) -> &[F] {
        &self.faults
    }

    /// Status of fault `index`.
    pub fn status_of(&self, index: usize) -> FaultStatus {
        self.status[index]
    }

    /// All statuses, parallel to [`WordSim::faults`].
    pub fn statuses(&self) -> &[FaultStatus] {
        &self.status
    }

    /// Overrides the status of fault `index` (ATPG flows use this to mark
    /// redundant or aborted faults).
    pub fn set_status(&mut self, index: usize, status: FaultStatus) {
        self.status[index] = status;
        self.live_dirty = true;
    }

    /// Global index (0-based position in the full sequence fed so far) of
    /// the first pattern that detected fault `index`.
    pub fn first_detection(&self, index: usize) -> Option<u32> {
        self.first_detection[index]
    }

    /// True if some pattern so far excited fault `index` — always `false`
    /// for models without [`WordFault::TRACKS_EXCITATION`].
    pub fn excited(&self, index: usize) -> bool {
        self.excited.get(index).copied().unwrap_or(false)
    }

    /// Number of faults excited so far (see [`WordSim::excited`]).
    pub fn excited_count(&self) -> usize {
        self.excited.iter().filter(|&&e| e).count()
    }

    /// Number of patterns consumed so far.
    pub fn patterns_seen(&self) -> u32 {
        self.patterns_seen
    }

    /// The work performed so far (blocks, good-machine gate evaluations,
    /// cone events). Deterministic at every thread width.
    pub fn counters(&self) -> SimCounters {
        self.counters
    }

    /// The good-machine node values after the last consumed pattern — the
    /// two-pattern carry. Together with [`WordSim::statuses`] and
    /// [`WordSim::patterns_seen`] this is a complete mid-sequence
    /// checkpoint for [`WordSim::resume`].
    pub fn carry_bits(&self) -> &[bool] {
        &self.last_bits
    }

    /// Forgets all grading results and the sequence position.
    pub fn reset(&mut self) {
        self.status.fill(FaultStatus::Undetected);
        self.first_detection.fill(None);
        self.excited.fill(false);
        self.patterns_seen = 0;
        self.last_bits.fill(false);
        self.live_dirty = true;
    }

    /// Grades `patterns` (in order, continuing any previously fed
    /// sequence). Returns the number of newly detected faults.
    pub fn simulate(&mut self, patterns: &[Pattern]) -> usize {
        let mut newly = 0;
        let mut buf = self.block_buf.take();
        for chunk in patterns.chunks(64) {
            match buf.as_mut() {
                Some(block) => block.pack_into(self.circuit, chunk),
                None => buf = Some(PatternBlock::pack(self.circuit, chunk)),
            }
            let block = buf.as_ref().expect("packed above");
            newly += self.simulate_block(block);
        }
        self.block_buf = buf;
        newly
    }

    /// Coverage summary over the whole universe.
    pub fn report(&self) -> crate::CoverageReport {
        crate::CoverageReport::from_statuses(&self.status)
    }

    fn simulate_block(&mut self, block: &PatternBlock) -> usize {
        let valid = block.valid_mask();
        self.good_simulate(block);
        // previous-pattern words: bit j of prev = bit j-1 of good, with the
        // carry from the previous block in bit 0
        let first_ever = self.patterns_seen == 0;
        for (i, g) in self.good.iter().enumerate() {
            let carry = if first_ever {
                g & 1 // pattern 0 has no predecessor: prev := self (kills excitation)
            } else {
                u64::from(self.last_bits[i])
            };
            self.prev[i] = (g << 1) | carry;
        }
        // stash the carry for the next block
        let last = block.count() - 1;
        for (i, g) in self.good.iter().enumerate() {
            self.last_bits[i] = (g >> last) & 1 == 1;
        }

        if self.live_dirty {
            self.live.clear();
            self.live.extend(
                (0..self.faults.len() as u32)
                    .filter(|&fi| self.status[fi as usize] == FaultStatus::Undetected),
            );
            self.live_dirty = false;
        }

        let ctx = BlockCtx {
            graph: self.graph,
            good: &self.good,
            prev: &self.prev,
            valid,
        };
        let seen = self.patterns_seen;

        // excitation is observable regardless of (earlier) detection, so
        // the tracking pass runs over the whole universe, not the live list
        if F::TRACKS_EXCITATION {
            for (fi, fault) in self.faults.iter().enumerate() {
                if !self.excited[fi] && fault.excitation(&ctx) != 0 {
                    self.excited[fi] = true;
                }
            }
        }

        let mut newly = 0;
        let workers = self.pool.threads().min(self.hw_threads);
        let min_live = PAR_MIN_FAULTS.max(workers * PAR_MIN_FAULTS_PER_WORKER);
        if self.pool.is_serial() || workers <= 1 || self.live.len() < min_live {
            // inline path: one persistent scratch, exactly the historical
            // serial engine; detected faults are swap-removed from the live
            // list as they drop
            let mut i = 0;
            while i < self.live.len() {
                let fi = self.live[i];
                let fault = self.faults[fi as usize];
                if let Some(mask) = ctx.try_detect(&mut self.scratch, fault.seeds(&ctx)) {
                    self.status[fi as usize] = FaultStatus::Detected;
                    self.first_detection[fi as usize] = Some(seen + mask.trailing_zeros());
                    newly += 1;
                    self.live.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            self.counters.cone_events += std::mem::take(&mut self.scratch.events);
        } else {
            // sharded path: contiguous fault partitions, one private
            // scratch per worker — leased from the park so its warm
            // buckets survive the block barrier — detection masks merged
            // in fault order
            let graph = self.graph;
            let faults = &self.faults;
            let park = &self.scratch_park;
            let chunk = self
                .live
                .len()
                .div_ceil(workers * 4)
                .max(PAR_MIN_FAULTS / 4);
            let detected: Vec<(Vec<(u32, u64)>, u64)> = self.pool.par_chunks_init(
                &self.live,
                chunk,
                || ScratchLease::take(park, graph),
                |lease, _chunk_index, part| {
                    let scratch = lease.scratch();
                    let hits = part
                        .iter()
                        .filter_map(|&fi| {
                            let fault = faults[fi as usize];
                            ctx.try_detect(scratch, fault.seeds(&ctx))
                                .map(|mask| (fi, mask))
                        })
                        .collect();
                    (hits, std::mem::take(&mut scratch.events))
                },
            );
            for (hits, events) in detected {
                self.counters.cone_events += events;
                for (fi, mask) in hits {
                    self.status[fi as usize] = FaultStatus::Detected;
                    self.first_detection[fi as usize] = Some(seen + mask.trailing_zeros());
                    newly += 1;
                }
            }
            if newly > 0 {
                let status = &self.status;
                self.live
                    .retain(|&fi| status[fi as usize] == FaultStatus::Undetected);
            }
        }
        self.patterns_seen += block.count() as u32;
        self.counters.blocks += 1;
        self.counters.good_gate_evals += self.comb_gates;
        newly
    }

    fn good_simulate(&mut self, block: &PatternBlock) {
        let g = self.graph;
        for (i, &pi) in g.inputs().iter().enumerate() {
            self.good[pi as usize] = block.input_word(i);
        }
        for &id in g.topo() {
            let id = id as usize;
            match g.kind(id) {
                GateKind::Input => {}
                GateKind::Dff => self.good[id] = 0,
                _ => {
                    let v = g.eval_word(id, |f| self.good[f]);
                    self.good[id] = v;
                }
            }
        }
    }
}
