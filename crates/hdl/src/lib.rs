//! Structural HDL emission for synthesized BIST generators.
//!
//! The paper's cost flow (§4.1) describes the mixed generator in VHDL and
//! hands it to the COMPASS ASIC synthesizer for area estimation. The
//! reproduction's area model replaces COMPASS, but the hand-off artefact
//! is still valuable: this crate renders any [`bist_netlist::Circuit`] —
//! including the LFSROM and mixed-generator netlists, flip-flops and all —
//! as synthesizable structural **Verilog** ([`emit_verilog`]) or **VHDL**
//! ([`emit_vhdl`]), plus a self-checking Verilog testbench
//! ([`emit_verilog_testbench`]) that replays the expected pattern sequence
//! cycle by cycle.
//!
//! Every emitted file passes the tokenizer-level audits in [`lint`]
//! (undeclared identifiers, unbalanced blocks), which the crate's test
//! suite enforces on all generator shapes.
//!
//! # Example
//!
//! ```
//! use bist_hdl::{emit_verilog, emit_vhdl, HdlOptions};
//!
//! let c17 = bist_netlist::iscas85::c17();
//! let verilog = emit_verilog(&c17, &HdlOptions::default());
//! let vhdl = emit_vhdl(&c17, &HdlOptions::default());
//! assert!(verilog.contains("module c17"));
//! assert!(vhdl.contains("entity c17 is"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
mod names;
mod options;
mod verilog;
mod vhdl;

pub use options::HdlOptions;
pub use verilog::{emit_verilog, emit_verilog_testbench};
pub use vhdl::emit_vhdl;
