//! Lightweight structural checks over emitted HDL text.
//!
//! Not a parser — a tokenizer-level consistency audit that catches the
//! classes of emission bugs a real tool would reject immediately:
//! undeclared identifiers, unbalanced module/entity brackets, duplicate
//! declarations. The test suites of [`crate::emit_verilog`] and
//! [`crate::emit_vhdl`] run every emitted file through these checks.

// determinism-vetted: declaration/keyword sets are membership probes in
// source-line order; findings surface in text order, never set order
#[allow(clippy::disallowed_types)]
use std::collections::HashSet;
use std::fmt;

/// Category of an HDL lint finding.
///
/// Lets diagnostic front-ends (the `bist-lint` unified report) map
/// findings to stable codes without sniffing message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// An identifier is used but never declared.
    Undeclared,
    /// The same name is declared twice in one scope.
    Duplicate,
    /// Block open/close constructs do not balance.
    Unbalanced,
}

/// A lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// 1-based line of the finding.
    pub line: usize,
    /// Explanation.
    pub message: String,
    /// Category of the finding.
    pub kind: LintKind,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LintError {}

const VERILOG_KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "wire",
    "reg",
    "assign",
    "always",
    "posedge",
    "negedge",
    "begin",
    "end",
    "if",
    "else",
    "initial",
    "integer",
    "for",
    "timescale",
];

const VHDL_KEYWORDS: &[&str] = &[
    "library",
    "use",
    "all",
    "entity",
    "is",
    "port",
    "in",
    "out",
    "std_logic",
    "end",
    "architecture",
    "of",
    "signal",
    "begin",
    "process",
    "rising_edge",
    "if",
    "then",
    "else",
    "not",
    "and",
    "or",
    "xor",
    "nand",
    "nor",
    "xnor",
    "ieee",
    "std_logic_1164",
];

fn identifiers(line: &str) -> impl Iterator<Item = &str> {
    line.split(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_' || ch == '$'))
        .filter(|t| !t.is_empty())
        .filter(|t| !t.chars().next().expect("non-empty").is_ascii_digit())
}

/// Strips Verilog sized literals (`2'b10`), named port references
/// (`.clk(` — ports of an *instantiated* module live in its own scope)
/// and comments from a line.
fn strip_verilog_noise(line: &str) -> String {
    let line = line.split("//").next().unwrap_or("");
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '"' {
            // string literal: swallow to the closing quote
            for d in chars.by_ref() {
                if d == '"' {
                    break;
                }
            }
            out.push(' ');
        } else if c == '\'' {
            // swallow the base char and the literal digits
            let _base = chars.next();
            while chars
                .peek()
                .is_some_and(|d| d.is_ascii_alphanumeric() || *d == '_')
            {
                chars.next();
            }
            out.push(' ');
        } else if c == '.'
            && chars
                .peek()
                .is_some_and(|d| d.is_ascii_alphabetic() || *d == '_')
        {
            while chars
                .peek()
                .is_some_and(|d| d.is_ascii_alphanumeric() || *d == '_' || *d == '$')
            {
                chars.next();
            }
            out.push(' ');
        } else {
            out.push(c);
        }
    }
    out
}

/// Checks emitted Verilog: balanced `module`/`endmodule` and
/// `begin`/`end`, no duplicate declarations, and no identifier used
/// without a declaration.
///
/// # Errors
///
/// Returns the first [`LintError`] found.
#[allow(clippy::disallowed_types)] // membership-only sets, see above
pub fn check_verilog(text: &str) -> Result<(), LintError> {
    let mut declared: HashSet<String> = HashSet::new();
    let mut ports: HashSet<String> = HashSet::new();
    let mut nets: HashSet<String> = HashSet::new();
    let keywords: HashSet<&str> = VERILOG_KEYWORDS.iter().copied().collect();
    let mut module_depth = 0i64;
    let mut begin_depth = 0i64;

    // pass 1: declarations. `output y; wire y;` is the legal port+net
    // idiom; a second *port* declaration or a second *net* declaration of
    // the same name is a real bug.
    for (ln, raw) in text.lines().enumerate() {
        let line = strip_verilog_noise(raw);
        let trimmed = line.trim();
        if trimmed.starts_with("module ") {
            if let Some(name) = identifiers(trimmed).nth(1) {
                declared.insert(name.to_owned());
            }
        }
        // module instantiation: `<module> <instance> (` declares both
        // names in this scope (the module's ports live in its own)
        if trimmed.ends_with('(') {
            let ids: Vec<&str> = identifiers(trimmed).collect();
            if ids.len() == 2 && !keywords.contains(ids[0]) && !keywords.contains(ids[1]) {
                declared.insert(ids[0].to_owned());
                declared.insert(ids[1].to_owned());
            }
        }
        let is_port = trimmed.starts_with("input ") || trimmed.starts_with("output ");
        let is_net = ["wire ", "reg ", "integer "]
            .iter()
            .any(|k| trimmed.starts_with(k));
        if is_port || is_net {
            for id in identifiers(trimmed) {
                if keywords.contains(id) {
                    continue;
                }
                let category = if is_port { &mut ports } else { &mut nets };
                if !category.insert(id.to_owned()) {
                    return Err(LintError {
                        line: ln + 1,
                        message: format!("duplicate declaration of `{id}`"),
                        kind: LintKind::Duplicate,
                    });
                }
                declared.insert(id.to_owned());
            }
        }
    }

    // pass 2: uses and balance
    for (ln, raw) in text.lines().enumerate() {
        let line = strip_verilog_noise(raw);
        for tok in identifiers(&line) {
            if tok.starts_with('$') {
                continue; // system tasks
            }
            if keywords.contains(tok) {
                match tok {
                    "module" => module_depth += 1,
                    "endmodule" => module_depth -= 1,
                    "begin" => begin_depth += 1,
                    "end" => begin_depth -= 1,
                    _ => {}
                }
                continue;
            }
            if !declared.contains(tok) {
                return Err(LintError {
                    line: ln + 1,
                    message: format!("identifier `{tok}` used but never declared"),
                    kind: LintKind::Undeclared,
                });
            }
        }
    }
    if module_depth != 0 {
        return Err(LintError {
            line: text.lines().count(),
            message: format!("unbalanced module/endmodule (depth {module_depth})"),
            kind: LintKind::Unbalanced,
        });
    }
    if begin_depth != 0 {
        return Err(LintError {
            line: text.lines().count(),
            message: format!("unbalanced begin/end (depth {begin_depth})"),
            kind: LintKind::Unbalanced,
        });
    }
    Ok(())
}

/// Checks emitted VHDL: every identifier used in the architecture body is
/// a declared signal, a port, or a keyword; `entity`/`architecture`/
/// `process` blocks all close.
///
/// # Errors
///
/// Returns the first [`LintError`] found.
#[allow(clippy::disallowed_types)] // membership-only sets, see above
pub fn check_vhdl(text: &str) -> Result<(), LintError> {
    let keywords: HashSet<&str> = VHDL_KEYWORDS.iter().copied().collect();
    let mut declared: HashSet<String> = HashSet::new();

    for raw in text.lines() {
        let line = raw.split("--").next().unwrap_or("").trim();
        if line.starts_with("entity ") || line.starts_with("architecture ") {
            for id in identifiers(line) {
                declared.insert(id.to_owned());
            }
        }
        if line.starts_with("signal ") {
            if let Some(name) = identifiers(line).nth(1) {
                declared.insert(name.to_owned());
            }
        }
        if line.contains(": in std_logic") || line.contains(": out std_logic") {
            if let Some(name) = identifiers(line).next() {
                declared.insert(name.to_owned());
            }
        }
        // process labels
        if line.contains(": process") {
            if let Some(name) = identifiers(line).next() {
                declared.insert(name.to_owned());
            }
        }
    }

    let mut opens = 0i64;
    let mut closes = 0i64;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split("--").next().unwrap_or("");
        // strip character literals '0' / '1'
        let line: String = {
            let mut s = line.to_owned();
            for lit in ["'0'", "'1'"] {
                s = s.replace(lit, " ");
            }
            s
        };
        let trimmed = line.trim();
        if trimmed.starts_with("entity ")
            || trimmed.starts_with("architecture ")
            || trimmed.contains(": process")
        {
            opens += 1;
        }
        if trimmed.starts_with("end entity")
            || trimmed.starts_with("end architecture")
            || trimmed.starts_with("end process")
        {
            closes += 1;
        }
        for tok in identifiers(&line) {
            if keywords.contains(tok.to_ascii_lowercase().as_str()) {
                continue;
            }
            if !declared.contains(tok) {
                return Err(LintError {
                    line: ln + 1,
                    message: format!("identifier `{tok}` used but never declared"),
                    kind: LintKind::Undeclared,
                });
            }
        }
    }
    if opens != closes {
        return Err(LintError {
            line: text.lines().count(),
            message: format!("unbalanced blocks: {opens} opened, {closes} closed"),
            kind: LintKind::Unbalanced,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_minimal_verilog_module() {
        let text = "module t (\n  a,\n  y\n);\n  input a;\n  output y;\n  wire y;\n  assign y = ~a;\nendmodule\n";
        check_verilog(text).unwrap();
    }

    #[test]
    fn rejects_undeclared_verilog_identifiers() {
        let text = "module t (\n  a\n);\n  input a;\n  assign y = ~a;\nendmodule\n";
        let err = check_verilog(text).unwrap_err();
        assert!(err.message.contains("`y`"), "{err}");
        assert_eq!(err.line, 5);
    }

    #[test]
    fn rejects_unbalanced_verilog_modules() {
        let text = "module t (\n  a\n);\n  input a;\n";
        let err = check_verilog(text).unwrap_err();
        assert!(err.message.contains("unbalanced module"));
    }

    #[test]
    fn verilog_literals_are_not_identifiers() {
        let text = "module t (\n  y\n);\n  output y;\n  wire y;\n  assign y = 1'b0;\nendmodule\n";
        check_verilog(text).unwrap();
    }

    #[test]
    fn instantiations_and_port_references_are_in_scope() {
        let text = "module tb;\n  reg a;\n  wire y;\n  inv_cell dut (\n    .in_pin(a),\n    .out_pin(y)\n  );\nendmodule\n";
        check_verilog(text).unwrap();
    }

    #[test]
    fn accepts_minimal_vhdl() {
        let text = "entity t is\n  port (\n    a : in std_logic;\n    y : out std_logic\n  );\nend entity t;\narchitecture structural of t is\n  signal y_s : std_logic;\nbegin\n  y_s <= not a;\n  y <= y_s;\nend architecture structural;\n";
        check_vhdl(text).unwrap();
    }

    #[test]
    fn rejects_undeclared_vhdl_identifiers() {
        let text = "entity t is\n  port (\n    a : in std_logic\n  );\nend entity t;\narchitecture structural of t is\nbegin\n  ghost <= not a;\nend architecture structural;\n";
        let err = check_vhdl(text).unwrap_err();
        assert!(err.message.contains("`ghost`"), "{err}");
    }
}
