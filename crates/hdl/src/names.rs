// determinism-vetted: collision set + dedup counter, both probed via
// contains()/entry() in node order and never iterated
#[allow(clippy::disallowed_types)]
use std::collections::{HashMap, HashSet};

use bist_netlist::{Circuit, NodeId};

/// Deterministic mapping from netlist node names to identifiers legal in
/// both Verilog-1995 and VHDL-87: `[a-zA-Z][a-zA-Z0-9_]*`, no trailing or
/// doubled underscores (VHDL forbids them), case-insensitively unique
/// (VHDL is case-insensitive), and clear of both languages' reserved
/// words.
#[derive(Debug, Clone)]
pub struct NameTable {
    by_node: Vec<String>,
}

/// Words reserved in either target language (lowercase).
const RESERVED: &[&str] = &[
    "abs",
    "access",
    "after",
    "alias",
    "all",
    "always",
    "and",
    "architecture",
    "array",
    "assert",
    "assign",
    "attribute",
    "begin",
    "begin_keywords",
    "block",
    "body",
    "buf",
    "buffer",
    "bus",
    "case",
    "component",
    "configuration",
    "constant",
    "deassign",
    "default",
    "defparam",
    "disable",
    "disconnect",
    "downto",
    "edge",
    "else",
    "elsif",
    "end",
    "endcase",
    "endfunction",
    "endmodule",
    "endprimitive",
    "endspecify",
    "endtable",
    "endtask",
    "entity",
    "event",
    "exit",
    "file",
    "for",
    "force",
    "forever",
    "fork",
    "function",
    "generate",
    "generic",
    "group",
    "guarded",
    "if",
    "impure",
    "in",
    "inertial",
    "initial",
    "inout",
    "input",
    "is",
    "join",
    "label",
    "library",
    "linkage",
    "literal",
    "loop",
    "map",
    "mod",
    "module",
    "nand",
    "negedge",
    "new",
    "next",
    "nmos",
    "nor",
    "not",
    "null",
    "of",
    "on",
    "open",
    "or",
    "others",
    "out",
    "output",
    "package",
    "parameter",
    "pmos",
    "port",
    "posedge",
    "postponed",
    "primitive",
    "procedure",
    "process",
    "pure",
    "range",
    "record",
    "reg",
    "register",
    "reject",
    "release",
    "rem",
    "repeat",
    "report",
    "return",
    "rol",
    "ror",
    "scalared",
    "select",
    "severity",
    "shared",
    "signal",
    "signed",
    "sla",
    "sll",
    "specify",
    "specparam",
    "sra",
    "srl",
    "subtype",
    "table",
    "task",
    "then",
    "time",
    "to",
    "transport",
    "tri",
    "type",
    "unaffected",
    "units",
    "unsigned",
    "until",
    "use",
    "variable",
    "vectored",
    "wait",
    "wand",
    "when",
    "while",
    "wire",
    "with",
    "wor",
    "xnor",
    "xor",
];

fn sanitize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    let out = out.trim_matches('_').to_owned();
    let mut out = if out.is_empty() { "n".to_owned() } else { out };
    if out.chars().next().expect("non-empty").is_ascii_digit() {
        out.insert(0, 'n');
    }
    if RESERVED.contains(&out.to_ascii_lowercase().as_str()) {
        out.push_str("_w");
    }
    out
}

impl NameTable {
    /// Builds the table for every node of `circuit`, reserving `extra`
    /// (clock/reset names etc.) so no node collides with them.
    #[allow(clippy::disallowed_types)] // membership/dedup only, see above
    pub fn new(circuit: &Circuit, extra: &[&str]) -> Self {
        let mut taken: HashSet<String> = extra.iter().map(|s| s.to_ascii_lowercase()).collect();
        let mut by_node = Vec::with_capacity(circuit.num_nodes());
        let mut dedup: HashMap<String, usize> = HashMap::new();
        for node in circuit.nodes() {
            let base = sanitize(node.name());
            let mut candidate = base.clone();
            loop {
                let key = candidate.to_ascii_lowercase();
                if !taken.contains(&key) {
                    taken.insert(key);
                    break;
                }
                let n = dedup.entry(base.clone()).or_insert(1);
                *n += 1;
                candidate = format!("{base}_{n}");
            }
            by_node.push(candidate);
        }
        NameTable { by_node }
    }

    /// The identifier of `id`.
    pub fn get(&self, id: NodeId) -> &str {
        &self.by_node[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::{CircuitBuilder, GateKind};

    #[test]
    fn sanitizes_hostile_names() {
        assert_eq!(sanitize("G10"), "G10");
        assert_eq!(sanitize("10gat"), "n10gat");
        assert_eq!(sanitize("a->b (pin 3)"), "a_b_pin_3");
        assert_eq!(sanitize("___"), "n");
        assert_eq!(sanitize("output"), "output_w");
        assert_eq!(sanitize("PROCESS"), "PROCESS_w");
    }

    #[test]
    fn case_insensitive_uniqueness() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("sig").unwrap();
        b.add_input("SIG").unwrap();
        b.add_gate("y", GateKind::And, &["sig", "SIG"]).unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        let table = NameTable::new(&c, &["clk", "rst"]);
        let a = table.get(c.find("sig").unwrap());
        let z = table.get(c.find("SIG").unwrap());
        assert!(!a.eq_ignore_ascii_case(z), "{a} vs {z}");
    }

    #[test]
    fn extra_names_are_reserved() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("clk").unwrap();
        b.add_gate("y", GateKind::Not, &["clk"]).unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        let table = NameTable::new(&c, &["clk", "rst"]);
        assert_ne!(table.get(c.find("clk").unwrap()), "clk");
    }
}
