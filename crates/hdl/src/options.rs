use std::collections::BTreeMap;

use bist_netlist::{Circuit, NodeId};

/// Emission options shared by the Verilog and VHDL back-ends.
///
/// # Example
///
/// ```
/// use bist_hdl::HdlOptions;
///
/// let options = HdlOptions::default()
///     .with_module_name("bist_generator")
///     .with_clock("ck")
///     .with_reset("rstn");
/// assert_eq!(options.clock, "ck");
/// ```
#[derive(Debug, Clone)]
pub struct HdlOptions {
    /// Module/entity name; defaults to the netlist's own (sanitized) name.
    pub module: Option<String>,
    /// Clock port name (only emitted when the netlist has flip-flops).
    pub clock: String,
    /// Synchronous active-high reset port name.
    pub reset: String,
    /// Per-flip-flop reset value — the generator seed. Unlisted flip-flops
    /// reset to 0.
    pub reset_values: BTreeMap<NodeId, bool>,
}

impl Default for HdlOptions {
    fn default() -> Self {
        HdlOptions {
            module: None,
            clock: "clk".to_owned(),
            reset: "rst".to_owned(),
            reset_values: BTreeMap::new(),
        }
    }
}

impl HdlOptions {
    /// Sets the module/entity name.
    pub fn with_module_name(mut self, name: impl Into<String>) -> Self {
        self.module = Some(name.into());
        self
    }

    /// Sets the clock port name.
    pub fn with_clock(mut self, name: impl Into<String>) -> Self {
        self.clock = name.into();
        self
    }

    /// Sets the reset port name.
    pub fn with_reset(mut self, name: impl Into<String>) -> Self {
        self.reset = name.into();
        self
    }

    /// Sets the reset (seed) value of one flip-flop.
    pub fn with_reset_value(mut self, dff: NodeId, value: bool) -> Self {
        self.reset_values.insert(dff, value);
        self
    }

    /// The reset value of `dff` (0 unless configured).
    pub fn reset_value(&self, dff: NodeId) -> bool {
        self.reset_values.get(&dff).copied().unwrap_or(false)
    }

    /// The module name to emit for `circuit`.
    pub fn module_name(&self, circuit: &Circuit) -> String {
        match &self.module {
            Some(m) => m.clone(),
            None => {
                let mut s: String = circuit
                    .name()
                    .chars()
                    .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                    .collect();
                if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    s.insert(0, 'm');
                }
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_names() {
        let o = HdlOptions::default();
        assert_eq!(o.clock, "clk");
        assert_eq!(o.reset, "rst");
        let c17 = bist_netlist::iscas85::c17();
        assert_eq!(o.module_name(&c17), "c17");
    }

    #[test]
    fn hostile_circuit_names_are_sanitized() {
        let o = HdlOptions::default();
        let mut b = bist_netlist::CircuitBuilder::new("3540-profile v2");
        b.add_input("a").unwrap();
        b.add_gate("y", bist_netlist::GateKind::Not, &["a"])
            .unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        assert_eq!(o.module_name(&c), "m3540_profile_v2");
    }

    #[test]
    fn reset_values_default_to_zero() {
        let c17 = bist_netlist::iscas85::c17();
        let g10 = c17.find("G10").unwrap();
        let o = HdlOptions::default().with_reset_value(g10, true);
        assert!(o.reset_value(g10));
        assert!(!o.reset_value(c17.find("G11").unwrap()));
    }
}
