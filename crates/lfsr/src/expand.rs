use bist_logicsim::Pattern;

use crate::poly::Polynomial;
use crate::stepper::Lfsr;

/// Expansion of an LFSR's bit stream into test patterns of arbitrary
/// width, modelling the *shared-register* BIST arrangement of the paper's
/// mixed generator (its Figure 3, citing \[Hel92\] for wide circuits).
///
/// The hardware picture: one register of `max(width, k)` D flip-flops.
/// Cells `q0..q{k-1}` run the LFSR recurrence (the feedback bit enters
/// `q0`), and any cells beyond `q{k-1}` extend the register as a delay
/// line. One *pattern* is the register window `q0..q{width-1}` sampled
/// every `width` clocks, with pattern bit `i` = cell `q{width-1-i}` (the
/// oldest bit of the window first). This software model is **bit-exact**
/// against the synthesized mixed-generator netlist — that equivalence is
/// what lets the mode decoder recognize the hand-over state.
///
/// # Example
///
/// ```
/// use bist_lfsr::{paper_poly, Lfsr, ScanExpander};
///
/// let lfsr = Lfsr::fibonacci(paper_poly(), 1);
/// let mut expander = ScanExpander::new(lfsr, 50); // e.g. C3540 has 50 inputs
/// let patterns = expander.patterns(200);
/// assert_eq!(patterns.len(), 200);
/// assert_eq!(patterns[0].len(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct ScanExpander {
    poly: Polynomial,
    taps: Vec<u32>,
    /// Register cells, `reg[i]` = hardware flip-flop `q{i}`.
    reg: Vec<bool>,
    width: usize,
    k: usize,
    clocks: u64,
}

impl ScanExpander {
    /// Creates an expander emitting `width`-bit patterns, taking the
    /// polynomial and current state from `lfsr`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    pub fn new(lfsr: Lfsr, width: usize) -> Self {
        assert!(width > 0, "pattern width must be positive");
        let poly = lfsr.poly();
        let k = poly.degree() as usize;
        let mut reg = vec![false; width.max(k)];
        for (i, cell) in reg.iter_mut().enumerate().take(k) {
            *cell = (lfsr.state() >> i) & 1 == 1;
        }
        ScanExpander {
            poly,
            taps: poly.taps(),
            reg,
            width,
            k,
            clocks: 0,
        }
    }

    /// The pattern width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The feedback polynomial.
    pub fn poly(&self) -> Polynomial {
        self.poly
    }

    /// Total register length, `max(width, k)`.
    pub fn register_len(&self) -> usize {
        self.reg.len()
    }

    /// Clocks consumed so far (`width` per emitted pattern).
    pub fn clocks(&self) -> u64 {
        self.clocks
    }

    fn clock(&mut self) {
        let fb = self
            .taps
            .iter()
            .fold(false, |acc, &t| acc ^ self.reg[(t - 1) as usize]);
        self.reg.rotate_right(1);
        self.reg[0] = fb;
        self.clocks += 1;
    }

    /// Advances `width` clocks and returns the resulting pattern.
    pub fn next_pattern(&mut self) -> Pattern {
        for _ in 0..self.width {
            self.clock();
        }
        self.chain()
    }

    /// Emits the next `count` patterns.
    pub fn patterns(&mut self, count: usize) -> Vec<Pattern> {
        (0..count).map(|_| self.next_pattern()).collect()
    }

    /// The LFSR-part state (cells `q0..q{k-1}` as a bit mask) — the value
    /// the mixed generator's mode decoder recognizes at hand-over.
    pub fn lfsr_state(&self) -> u64 {
        (0..self.k).fold(0u64, |acc, i| acc | (u64::from(self.reg[i]) << i))
    }

    /// The current pattern window (pattern bit `i` = cell
    /// `q{width-1-i}`).
    pub fn chain(&self) -> Pattern {
        Pattern::from_fn(self.width, |i| self.reg[self.width - 1 - i])
    }
}

/// Convenience: the first `count` pseudo-random `width`-bit patterns from a
/// Fibonacci LFSR with polynomial `poly` and seed 1 — the configuration
/// every experiment in the paper uses.
pub fn pseudo_random_patterns(poly: crate::Polynomial, width: usize, count: usize) -> Vec<Pattern> {
    let lfsr = Lfsr::fibonacci(poly, 1);
    ScanExpander::new(lfsr, width).patterns(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{paper_poly, primitive_poly};

    #[test]
    fn patterns_are_deterministic() {
        let a = ScanExpander::new(Lfsr::fibonacci(paper_poly(), 1), 36).patterns(50);
        let b = ScanExpander::new(Lfsr::fibonacci(paper_poly(), 1), 36).patterns(50);
        assert_eq!(a, b);
    }

    #[test]
    fn patterns_look_random() {
        // ones density near 50 % over a long stretch
        let ps = ScanExpander::new(Lfsr::fibonacci(paper_poly(), 1), 64).patterns(500);
        let ones: usize = ps.iter().map(Pattern::count_ones).sum();
        let total = 500 * 64;
        let density = ones as f64 / total as f64;
        assert!((0.45..0.55).contains(&density), "density {density}");
    }

    #[test]
    fn consecutive_patterns_differ() {
        let ps = ScanExpander::new(Lfsr::fibonacci(paper_poly(), 1), 50).patterns(100);
        for w in ps.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn chain_matches_last_pattern() {
        let mut e = ScanExpander::new(Lfsr::fibonacci(primitive_poly(8), 1), 20);
        let p = e.next_pattern();
        assert_eq!(e.chain(), p);
    }

    #[test]
    fn lfsr_part_tracks_the_software_stepper() {
        // the register's first k cells must follow the plain LFSR stepped
        // the same number of clocks
        let poly = primitive_poly(8);
        let mut e = ScanExpander::new(Lfsr::fibonacci(poly, 1), 20);
        let mut sw = Lfsr::fibonacci(poly, 1);
        for _ in 0..7 {
            e.next_pattern();
            for _ in 0..20 {
                sw.step();
            }
            assert_eq!(e.lfsr_state(), sw.state());
        }
    }

    #[test]
    fn narrow_patterns_are_state_windows() {
        // width <= k: pattern bit i = state bit (width-1-i)
        let poly = primitive_poly(8);
        let mut e = ScanExpander::new(Lfsr::fibonacci(poly, 1), 5);
        let mut sw = Lfsr::fibonacci(poly, 1);
        for _ in 0..10 {
            let p = e.next_pattern();
            for _ in 0..5 {
                sw.step();
            }
            for i in 0..5 {
                assert_eq!(p.get(i), (sw.state() >> (4 - i)) & 1 == 1);
            }
        }
    }

    #[test]
    fn convenience_helper_matches_expander() {
        let a = pseudo_random_patterns(paper_poly(), 41, 30);
        let b = ScanExpander::new(Lfsr::fibonacci(paper_poly(), 1), 41).patterns(30);
        assert_eq!(a, b);
    }

    #[test]
    fn clock_accounting() {
        let mut e = ScanExpander::new(Lfsr::fibonacci(paper_poly(), 1), 33);
        e.patterns(4);
        assert_eq!(e.clocks(), 4 * 33);
        assert_eq!(e.register_len(), 33);
    }
}
