//! LFSR machinery for the pseudo-random half of the mixed test scheme.
//!
//! * [`Polynomial`] — GF(2) feedback polynomials with a full primitivity
//!   prover (irreducibility via Rabin's test, order via the factorization
//!   of `2^n − 1`), plus a verified table of primitive polynomials for
//!   every degree 2..=32.
//! * [`Lfsr`] — Fibonacci and Galois stepping, serial output streams,
//!   period measurement.
//! * [`ScanExpander`] — scan-chain expansion of the serial stream into
//!   test patterns of arbitrary width, the technique the paper cites
//!   (\[Hel92\]) for circuits whose input count exceeds the LFSR length.
//! * [`lfsr_netlist`] — emits the LFSR as a structural netlist (D
//!   flip-flops + XOR feedback) so the area model can cost it and
//!   [`SeqSim`](bist_logicsim::SeqSim) can replay it.
//!
//! # A reproduction note on the paper's polynomial
//!
//! The paper claims the primitive polynomial `x^16+x^4+x^3+x^2+1` for its
//! reference LFSR. That polynomial is **not primitive**: its LFSR period is
//! 19 685, not `2^16 − 1 = 65 535` (this crate's prover, or brute-force
//! stepping, both show it). We take this as a typo for
//! `x^16+x^5+x^3+x^2+1`, which *is* primitive and is exposed as
//! [`paper_poly`]. The printed version is kept as [`paper_poly_printed`]
//! for documentation. None of the paper's conclusions depend on the
//! distinction — a maximal period merely guarantees no short cycling
//! within the first 1000 patterns.
//!
//! # Example
//!
//! ```
//! use bist_lfsr::{paper_poly, Lfsr};
//!
//! let poly = paper_poly();
//! assert!(poly.is_primitive());
//! let mut lfsr = Lfsr::fibonacci(poly, 1);
//! let first: Vec<bool> = (0..8).map(|_| lfsr.step()).collect();
//! assert_eq!(first.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expand;
mod misr;
mod netlist;
mod poly;
mod stepper;

pub use expand::{pseudo_random_patterns, ScanExpander};
pub use misr::Misr;
pub use netlist::lfsr_netlist;
pub use poly::{paper_poly, paper_poly_printed, primitive_poly, Polynomial};
pub use stepper::Lfsr;
