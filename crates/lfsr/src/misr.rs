//! Multiple-input signature register (MISR) — the output response
//! analyzer of the paper's Figure 1 BIST scheme.
//!
//! The mixed generator stimulates the CUT; its output responses must be
//! compacted on-chip into a short signature compared against a golden
//! value ("PASS/FAIL"). The classic compactor is a MISR: an LFSR whose
//! cells additionally XOR in one response bit each per clock. A faulty
//! response leaves a different signature unless aliasing occurs
//! (probability ≈ `2^-k` for a `k`-bit MISR).

use bist_logicsim::Pattern;

use crate::poly::Polynomial;

/// A multiple-input signature register over the feedback polynomial
/// `poly`, compacting response vectors of up to `poly.degree()` bits per
/// clock.
///
/// # Example
///
/// ```
/// use bist_lfsr::{paper_poly, Misr};
/// use bist_logicsim::Pattern;
///
/// let mut misr = Misr::new(paper_poly());
/// let response: Pattern = "0110".parse()?;
/// misr.absorb(&response);
/// let signature = misr.signature();
/// assert_ne!(signature, 0); // the response left a trace
/// # Ok::<(), bist_logicsim::ParsePatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    poly: Polynomial,
    taps: Vec<u32>,
    state: u64,
}

impl Misr {
    /// Creates a zero-initialized MISR.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial degree is 0 or above 63.
    pub fn new(poly: Polynomial) -> Self {
        let n = poly.degree();
        assert!((1..=63).contains(&n), "unsupported MISR degree {n}");
        Misr {
            poly,
            taps: poly.taps(),
            state: 0,
        }
    }

    /// The register length.
    pub fn len(&self) -> u32 {
        self.poly.degree()
    }

    /// Always false: a MISR has at least one cell.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Clears the register back to zero.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Clocks the register once, XOR-ing in one response vector. Response
    /// bit `i` enters cell `i`; responses wider than the register fold
    /// around (bit `i` enters cell `i mod k`), responses narrower leave
    /// the upper cells to the plain LFSR recurrence.
    ///
    /// # Panics
    ///
    /// Never panics; any response width is accepted (folding is part of
    /// the compaction semantics).
    pub fn absorb(&mut self, response: &Pattern) {
        let n = self.poly.degree();
        let mut fb = 0u64;
        for &t in &self.taps {
            fb ^= (self.state >> (t - 1)) & 1;
        }
        let mut inject = 0u64;
        for (i, bit) in response.iter().enumerate() {
            if bit {
                inject ^= 1 << (i as u32 % n);
            }
        }
        self.state = (((self.state << 1) | fb) ^ inject) & ((1u64 << n) - 1);
    }

    /// Compacts a whole response sequence and returns the final signature.
    pub fn absorb_all<'a>(&mut self, responses: impl IntoIterator<Item = &'a Pattern>) -> u64 {
        for r in responses {
            self.absorb(r);
        }
        self.signature()
    }

    /// The aliasing probability estimate for this register length
    /// (`2^-k`), the classic steady-state approximation.
    pub fn aliasing_probability(&self) -> f64 {
        2f64.powi(-(self.poly.degree() as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{paper_poly, primitive_poly};

    fn responses(seed: u64, width: usize, count: usize) -> Vec<Pattern> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| Pattern::random(&mut rng, width))
            .collect()
    }

    #[test]
    fn identical_streams_give_identical_signatures() {
        let rs = responses(1, 10, 50);
        let mut a = Misr::new(paper_poly());
        let mut b = Misr::new(paper_poly());
        assert_eq!(a.absorb_all(&rs), b.absorb_all(&rs));
    }

    #[test]
    fn single_bit_flip_changes_the_signature() {
        let rs = responses(2, 12, 40);
        let mut golden = Misr::new(paper_poly());
        let golden_sig = golden.absorb_all(&rs);
        for t in [0usize, 17, 39] {
            let mut corrupted = rs.clone();
            let flip = corrupted[t].get(5);
            corrupted[t].set(5, !flip);
            let mut m = Misr::new(paper_poly());
            assert_ne!(
                m.absorb_all(&corrupted),
                golden_sig,
                "flip at time {t} aliased"
            );
        }
    }

    #[test]
    fn wide_responses_fold() {
        let rs = responses(3, 40, 20); // wider than the 16-bit register
        let mut m = Misr::new(paper_poly());
        let sig = m.absorb_all(&rs);
        assert!(sig < (1 << 16));
    }

    #[test]
    fn reset_restores_zero() {
        let rs = responses(4, 8, 10);
        let mut m = Misr::new(primitive_poly(8));
        m.absorb_all(&rs);
        m.reset();
        assert_eq!(m.signature(), 0);
    }

    #[test]
    fn empty_stream_keeps_zero_signature() {
        let mut m = Misr::new(primitive_poly(8));
        assert_eq!(m.absorb_all(std::iter::empty()), 0);
    }

    #[test]
    fn aliasing_probability_is_two_to_minus_k() {
        let m = Misr::new(paper_poly());
        assert!((m.aliasing_probability() - 2f64.powi(-16)).abs() < 1e-12);
    }
}
