use bist_netlist::{Circuit, CircuitBuilder, GateKind};

use crate::poly::Polynomial;

/// Emits a Fibonacci LFSR as a structural netlist: `n` D flip-flops
/// (`lfsr_q0` … `lfsr_q{n-1}`) and an XOR feedback network.
///
/// * `lfsr_q0.D` = XOR of the tap cells (one parity gate; the technology
///   mapper decomposes it into XOR2 cells when costing area),
/// * `lfsr_q{i}.D = lfsr_q{i-1}`,
/// * the serial output `lfsr_q{n-1}` is the primary output.
///
/// The single primary input `scan_enable` is a placeholder pin (netlists
/// require at least one input); it does not influence the register.
///
/// The emitted hardware replays bit-exactly against the software
/// [`Lfsr`](crate::Lfsr) model — proven by this crate's tests using
/// [`SeqSim`](bist_logicsim::SeqSim).
///
/// # Panics
///
/// Panics if the polynomial degree is 0 or above 63.
///
/// # Example
///
/// ```
/// use bist_lfsr::{lfsr_netlist, paper_poly};
///
/// let hw = lfsr_netlist(paper_poly());
/// assert_eq!(hw.num_dffs(), 16);
/// ```
pub fn lfsr_netlist(poly: Polynomial) -> Circuit {
    let n = poly.degree();
    assert!((1..=63).contains(&n), "unsupported LFSR degree {n}");
    let mut b = CircuitBuilder::new(format!("lfsr{n}"));
    b.add_input("scan_enable").expect("fresh name");
    for i in 0..n {
        let d = if i == 0 {
            "lfsr_fb".to_owned()
        } else {
            format!("lfsr_q{}", i - 1)
        };
        b.add_gate(&format!("lfsr_q{i}"), GateKind::Dff, &[&d])
            .expect("fresh name");
    }
    let taps: Vec<String> = poly
        .taps()
        .iter()
        .map(|&t| format!("lfsr_q{}", t - 1))
        .collect();
    let tap_refs: Vec<&str> = taps.iter().map(String::as_str).collect();
    if tap_refs.len() == 1 {
        b.add_gate("lfsr_fb", GateKind::Buf, &tap_refs)
            .expect("fresh name");
    } else {
        b.add_gate("lfsr_fb", GateKind::Xor, &tap_refs)
            .expect("fresh name");
    }
    b.mark_output(&format!("lfsr_q{}", n - 1)).expect("exists");
    b.build().expect("LFSR netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::primitive_poly;
    use crate::stepper::Lfsr;
    use bist_logicsim::SeqSim;

    #[test]
    fn hardware_replays_software_model() {
        for degree in [4u32, 8, 16] {
            let poly = primitive_poly(degree);
            let hw = lfsr_netlist(poly);
            let mut sim = SeqSim::new(&hw);
            // seed state 1: q0 = 1
            sim.set_state(hw.find("lfsr_q0").unwrap(), true);
            let mut sw = Lfsr::fibonacci(poly, 1);
            for cycle in 0..200 {
                let out = sim.step(&[false])[0];
                let expect = sw.step();
                assert_eq!(out, expect, "degree {degree} cycle {cycle}");
            }
        }
    }

    #[test]
    fn state_trajectory_matches() {
        let poly = primitive_poly(8);
        let hw = lfsr_netlist(poly);
        let mut sim = SeqSim::new(&hw);
        sim.set_state(hw.find("lfsr_q0").unwrap(), true);
        let mut sw = Lfsr::fibonacci(poly, 1);
        for _ in 0..50 {
            sim.step(&[false]);
            sw.step();
            let hw_state: u64 = (0..8)
                .map(|i| {
                    let q = hw.find(&format!("lfsr_q{i}")).unwrap();
                    (sim.state(q) as u64) << i
                })
                .sum();
            assert_eq!(hw_state, sw.state());
        }
    }

    #[test]
    fn structure_counts() {
        let hw = lfsr_netlist(primitive_poly(16));
        assert_eq!(hw.num_dffs(), 16);
        // one parity feedback gate + placeholder input
        assert_eq!(hw.num_gates(), 1);
    }
}
