use std::fmt;

/// A polynomial over GF(2) of degree at most 63, stored as a bit mask
/// (bit `i` = coefficient of `x^i`).
///
/// Used as LFSR feedback polynomials; the interesting predicate is
/// [`Polynomial::is_primitive`], which decides whether the corresponding
/// LFSR is maximal-length.
///
/// # Example
///
/// ```
/// use bist_lfsr::Polynomial;
///
/// // x^4 + x + 1, a primitive polynomial of degree 4
/// let p = Polynomial::from_exponents(&[4, 1, 0]);
/// assert_eq!(p.degree(), 4);
/// assert!(p.is_primitive());
/// assert_eq!(p.to_string(), "x^4+x^1+1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Polynomial(u64);

impl Polynomial {
    /// Builds a polynomial from its coefficient bit mask.
    pub fn from_mask(mask: u64) -> Self {
        Polynomial(mask)
    }

    /// Builds a polynomial from the exponents of its non-zero terms.
    ///
    /// # Panics
    ///
    /// Panics if any exponent exceeds 63.
    pub fn from_exponents(exponents: &[u32]) -> Self {
        let mut mask = 0u64;
        for &e in exponents {
            assert!(e < 64, "exponent {e} out of range");
            mask |= 1 << e;
        }
        Polynomial(mask)
    }

    /// The coefficient bit mask.
    pub fn mask(self) -> u64 {
        self.0
    }

    /// The polynomial degree (0 for the zero polynomial).
    pub fn degree(self) -> u32 {
        63u32.saturating_sub(self.0.leading_zeros())
    }

    /// The exponents of the non-zero terms, highest first.
    pub fn exponents(self) -> Vec<u32> {
        (0..64).rev().filter(|&i| (self.0 >> i) & 1 == 1).collect()
    }

    /// The feedback tap exponents for an LFSR: all non-zero terms except
    /// the constant 1.
    pub fn taps(self) -> Vec<u32> {
        self.exponents().into_iter().filter(|&e| e != 0).collect()
    }

    /// Polynomial multiplication modulo `modulus` over GF(2).
    fn mul_mod(a: u64, b: u64, modulus: u64) -> u64 {
        let deg = 63 - modulus.leading_zeros();
        let mut result = 0u64;
        let mut a = a;
        let mut b = b;
        while b != 0 {
            if b & 1 == 1 {
                result ^= a;
            }
            b >>= 1;
            a <<= 1;
            if (a >> deg) & 1 == 1 {
                a ^= modulus;
            }
        }
        result
    }

    /// Computes `x^e mod self` over GF(2).
    fn x_pow_mod(self, mut e: u64) -> u64 {
        let modulus = self.0;
        let mut base = 0b10u64; // x
        let mut result = 1u64;
        // reduce base if degree <= 1
        if self.degree() <= 1 {
            base %= 2; // degenerate
        }
        while e != 0 {
            if e & 1 == 1 {
                result = Self::mul_mod(result, base, modulus);
            }
            base = Self::mul_mod(base, base, modulus);
            e >>= 1;
        }
        result
    }

    fn gcd(mut a: u64, mut b: u64) -> u64 {
        // polynomial gcd over GF(2)
        while b != 0 {
            if a == 0 {
                return b;
            }
            let da = 63 - a.leading_zeros();
            let db = 63 - b.leading_zeros();
            if da < db {
                std::mem::swap(&mut a, &mut b);
                continue;
            }
            a ^= b << (da - db);
        }
        a
    }

    /// True if the polynomial is irreducible over GF(2) (Rabin's test).
    pub fn is_irreducible(self) -> bool {
        let n = self.degree();
        if n == 0 {
            return false;
        }
        if self.0 & 1 == 0 {
            // divisible by x
            return n == 1 && self.0 == 0b10;
        }
        if n == 1 {
            return true;
        }
        // x^(2^n) == x (mod self)
        let xq = self.x_pow_mod(1u64 << n);
        if xq != 0b10 {
            return false;
        }
        // for each prime divisor q of n: gcd(x^(2^(n/q)) - x, self) == 1
        for q in prime_divisors(n) {
            let e = 1u64 << (n / q);
            let t = self.x_pow_mod(e) ^ 0b10;
            if Self::gcd(self.0, t) != 1 {
                return false;
            }
        }
        true
    }

    /// True if the polynomial is primitive over GF(2): irreducible, and the
    /// multiplicative order of `x` in `GF(2)[x]/(p)` equals `2^n − 1`.
    /// Primitive feedback polynomials give maximal-length
    /// (`2^n − 1`-state) LFSRs.
    ///
    /// # Panics
    ///
    /// Panics if the degree exceeds 32 (the factor table of `2^n − 1` ends
    /// there).
    pub fn is_primitive(self) -> bool {
        let n = self.degree();
        if n == 0 || n > 32 {
            assert!(n <= 32, "primitivity test supports degrees up to 32");
            return false;
        }
        if !self.is_irreducible() {
            return false;
        }
        let order = (1u64 << n) - 1;
        if self.x_pow_mod(order) != 1 {
            return false;
        }
        for &q in factors_of_2n_minus_1(n) {
            if self.x_pow_mod(order / q) == 1 {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let exps = self.exponents();
        if exps.is_empty() {
            return f.write_str("0");
        }
        let terms: Vec<String> = exps
            .iter()
            .map(|&e| match e {
                0 => "1".to_owned(),
                e => format!("x^{e}"),
            })
            .collect();
        f.write_str(&terms.join("+"))
    }
}

fn prime_divisors(mut n: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Prime factors of `2^n − 1` for `n` in 2..=32 (precomputed; all are the
/// well-known Mersenne factorizations).
fn factors_of_2n_minus_1(n: u32) -> &'static [u64] {
    const TABLE: [(u32, &[u64]); 31] = [
        (2, &[3]),
        (3, &[7]),
        (4, &[3, 5]),
        (5, &[31]),
        (6, &[3, 7]),
        (7, &[127]),
        (8, &[3, 5, 17]),
        (9, &[7, 73]),
        (10, &[3, 11, 31]),
        (11, &[23, 89]),
        (12, &[3, 5, 7, 13]),
        (13, &[8191]),
        (14, &[3, 43, 127]),
        (15, &[7, 31, 151]),
        (16, &[3, 5, 17, 257]),
        (17, &[131071]),
        (18, &[3, 7, 19, 73]),
        (19, &[524287]),
        (20, &[3, 5, 11, 31, 41]),
        (21, &[7, 127, 337]),
        (22, &[3, 23, 89, 683]),
        (23, &[47, 178481]),
        (24, &[3, 5, 7, 13, 17, 241]),
        (25, &[31, 601, 1801]),
        (26, &[3, 2731, 8191]),
        (27, &[7, 73, 262657]),
        (28, &[3, 5, 29, 43, 113, 127]),
        (29, &[233, 1103, 2089]),
        (30, &[3, 7, 11, 31, 151, 331]),
        (31, &[2147483647]),
        (32, &[3, 5, 17, 257, 65537]),
    ];
    TABLE
        .iter()
        .find(|(deg, _)| *deg == n)
        .map(|(_, f)| *f)
        .expect("degree in 2..=32")
}

/// A primitive polynomial of the requested degree (2..=32), from a
/// standard table — every entry is re-proven primitive by this crate's
/// test suite.
///
/// # Panics
///
/// Panics if `degree` is outside 2..=32.
pub fn primitive_poly(degree: u32) -> Polynomial {
    let exps: &[u32] = match degree {
        2 => &[2, 1, 0],
        3 => &[3, 1, 0],
        4 => &[4, 1, 0],
        5 => &[5, 2, 0],
        6 => &[6, 1, 0],
        7 => &[7, 1, 0],
        8 => &[8, 4, 3, 2, 0],
        9 => &[9, 4, 0],
        10 => &[10, 3, 0],
        11 => &[11, 2, 0],
        12 => &[12, 6, 4, 1, 0],
        13 => &[13, 4, 3, 1, 0],
        14 => &[14, 10, 6, 1, 0],
        15 => &[15, 1, 0],
        16 => &[16, 5, 3, 2, 0],
        17 => &[17, 3, 0],
        18 => &[18, 7, 0],
        19 => &[19, 5, 2, 1, 0],
        20 => &[20, 3, 0],
        21 => &[21, 2, 0],
        22 => &[22, 1, 0],
        23 => &[23, 5, 0],
        24 => &[24, 7, 2, 1, 0],
        25 => &[25, 3, 0],
        26 => &[26, 6, 2, 1, 0],
        27 => &[27, 5, 2, 1, 0],
        28 => &[28, 3, 0],
        29 => &[29, 2, 0],
        30 => &[30, 23, 2, 1, 0],
        31 => &[31, 3, 0],
        32 => &[32, 22, 2, 1, 0],
        d => panic!("no primitive polynomial tabulated for degree {d}"),
    };
    Polynomial::from_exponents(exps)
}

/// The degree-16 polynomial this reproduction uses for the paper's
/// reference LFSR: `x^16+x^5+x^3+x^2+1` (primitive — see the
/// [crate docs](crate) for why this replaces the printed polynomial).
pub fn paper_poly() -> Polynomial {
    Polynomial::from_exponents(&[16, 5, 3, 2, 0])
}

/// The polynomial *as printed in the paper*, `x^16+x^4+x^3+x^2+1` — kept
/// for documentation; it is not primitive (LFSR period 19 685).
pub fn paper_poly_printed() -> Polynomial {
    Polynomial::from_exponents(&[16, 4, 3, 2, 0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_and_exponents() {
        let p = Polynomial::from_exponents(&[16, 5, 3, 2, 0]);
        assert_eq!(p.degree(), 16);
        assert_eq!(p.exponents(), vec![16, 5, 3, 2, 0]);
        assert_eq!(p.taps(), vec![16, 5, 3, 2]);
    }

    #[test]
    fn small_primitive_and_non_primitive() {
        // x^4+x+1 is primitive
        assert!(Polynomial::from_exponents(&[4, 1, 0]).is_primitive());
        // x^4+x^3+x^2+x+1 is irreducible but has order 5, not 15
        let p = Polynomial::from_exponents(&[4, 3, 2, 1, 0]);
        assert!(p.is_irreducible());
        assert!(!p.is_primitive());
        // x^4+x^2+1 = (x^2+x+1)^2 is reducible
        assert!(!Polynomial::from_exponents(&[4, 2, 0]).is_irreducible());
    }

    #[test]
    fn whole_table_is_primitive() {
        for degree in 2..=32 {
            let p = primitive_poly(degree);
            assert_eq!(p.degree(), degree);
            assert!(p.is_primitive(), "table entry for degree {degree}: {p}");
        }
    }

    #[test]
    fn paper_polynomial_finding() {
        assert!(paper_poly().is_primitive());
        // the reproduction finding: the printed polynomial is NOT primitive
        assert!(!paper_poly_printed().is_primitive());
        // (it is not even irreducible: 19685 = period observed by stepping)
        assert!(!paper_poly_printed().is_irreducible());
    }

    #[test]
    fn display_formats() {
        assert_eq!(paper_poly().to_string(), "x^16+x^5+x^3+x^2+1");
        assert_eq!(Polynomial::from_mask(0).to_string(), "0");
    }

    #[test]
    fn primitivity_agrees_with_brute_force_period() {
        // brute-force the LFSR period for all degree-8 candidates
        for mask in 0..=255u64 {
            let p = Polynomial::from_mask(0x100 | (mask << 1) | 1); // force x^8 and 1 terms
            let n = 8;
            let full = (1u64 << n) - 1;
            // Fibonacci stepping
            let taps = p.taps();
            let mut state = 1u64;
            let mut period = 0u64;
            for i in 1..=full {
                let mut fb = 0u64;
                for &t in &taps {
                    fb ^= (state >> (t - 1)) & 1;
                }
                state = ((state << 1) | fb) & full;
                if state == 1 {
                    period = i;
                    break;
                }
            }
            let maximal = period == full;
            assert_eq!(
                p.is_primitive(),
                maximal,
                "degree-8 poly {p}: period {period}"
            );
        }
    }
}
