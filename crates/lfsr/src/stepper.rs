use crate::poly::Polynomial;

/// A linear feedback shift register in Fibonacci (external-XOR) or Galois
/// (internal-XOR) form.
///
/// State is a `u64` bit mask of the `n = poly.degree()` flip-flops, bit 0
/// being the register's first cell. One [`Lfsr::step`] emits one serial
/// output bit (the bit shifted out of the last cell) and advances the
/// state. With a primitive feedback polynomial and a non-zero seed, the
/// state walks all `2^n − 1` non-zero values.
///
/// # Example
///
/// ```
/// use bist_lfsr::{primitive_poly, Lfsr};
///
/// let mut lfsr = Lfsr::fibonacci(primitive_poly(4), 0b0001);
/// assert_eq!(lfsr.period(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    poly: Polynomial,
    taps: Vec<u32>,
    state: u64,
    seed: u64,
    galois: bool,
}

impl Lfsr {
    /// Fibonacci (external-XOR) LFSR with the given feedback polynomial
    /// and seed.
    ///
    /// # Panics
    ///
    /// Panics if the degree is 0 or above 63, or if `seed` is zero (the
    /// LFSR would lock up) or has bits beyond the degree.
    pub fn fibonacci(poly: Polynomial, seed: u64) -> Self {
        Self::new(poly, seed, false)
    }

    /// Galois (internal-XOR) LFSR with the given feedback polynomial and
    /// seed.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Lfsr::fibonacci`].
    pub fn galois(poly: Polynomial, seed: u64) -> Self {
        Self::new(poly, seed, true)
    }

    fn new(poly: Polynomial, seed: u64, galois: bool) -> Self {
        let n = poly.degree();
        assert!((1..=63).contains(&n), "unsupported LFSR degree {n}");
        assert_ne!(seed, 0, "all-zero seed locks an LFSR up");
        assert!(seed < (1u64 << n), "seed 0x{seed:x} wider than degree {n}");
        Lfsr {
            poly,
            taps: poly.taps(),
            state: seed,
            seed,
            galois,
        }
    }

    /// The feedback polynomial.
    pub fn poly(&self) -> Polynomial {
        self.poly
    }

    /// The register length (polynomial degree).
    pub fn len(&self) -> u32 {
        self.poly.degree()
    }

    /// Always false: an LFSR has at least one cell.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current register state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Returns to the seed state.
    pub fn reset(&mut self) {
        self.state = self.seed;
    }

    /// Advances one clock; returns the serial output bit (the bit shifted
    /// out of the last cell).
    pub fn step(&mut self) -> bool {
        let n = self.poly.degree();
        let out = (self.state >> (n - 1)) & 1 == 1;
        if self.galois {
            // shift left; if the bit shifted out is 1, XOR the tap mask in
            let mask = (1u64 << n) - 1;
            self.state = (self.state << 1) & mask;
            if out {
                self.state ^= self.poly.mask() & mask;
            }
        } else {
            let mut fb = 0u64;
            for &t in &self.taps {
                fb ^= (self.state >> (t - 1)) & 1;
            }
            self.state = ((self.state << 1) | fb) & ((1u64 << n) - 1);
        }
        out
    }

    /// Emits the next `count` serial output bits.
    pub fn bits(&mut self, count: usize) -> Vec<bool> {
        (0..count).map(|_| self.step()).collect()
    }

    /// Visits the next `count` register states (after each clock).
    pub fn states(&mut self, count: usize) -> Vec<u64> {
        (0..count)
            .map(|_| {
                self.step();
                self.state
            })
            .collect()
    }

    /// Measures the state period by stepping until the seed state recurs.
    /// Intended for tests and small degrees — this is `O(period)`.
    pub fn period(&self) -> u64 {
        let mut probe = self.clone();
        probe.state = probe.seed;
        let mut count = 0u64;
        loop {
            probe.step();
            count += 1;
            if probe.state == probe.seed {
                return count;
            }
            if count > (1u64 << 40) {
                unreachable!("period beyond supported range");
            }
        }
    }
}

impl Iterator for Lfsr {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{paper_poly, paper_poly_printed, primitive_poly};

    #[test]
    fn fibonacci_period_is_maximal_for_primitive_polys() {
        for degree in [2u32, 3, 4, 5, 8, 10, 12, 16] {
            let lfsr = Lfsr::fibonacci(primitive_poly(degree), 1);
            assert_eq!(lfsr.period(), (1 << degree) - 1, "degree {degree}");
        }
    }

    #[test]
    fn galois_period_matches_fibonacci() {
        for degree in [4u32, 8, 12, 16] {
            let f = Lfsr::fibonacci(primitive_poly(degree), 1);
            let g = Lfsr::galois(primitive_poly(degree), 1);
            assert_eq!(f.period(), g.period(), "degree {degree}");
        }
    }

    #[test]
    fn printed_paper_poly_has_short_period() {
        let lfsr = Lfsr::fibonacci(paper_poly_printed(), 1);
        assert_eq!(lfsr.period(), 19_685); // the reproduction finding
        let fixed = Lfsr::fibonacci(paper_poly(), 1);
        assert_eq!(fixed.period(), 65_535);
    }

    #[test]
    fn states_visit_distinct_values() {
        let mut lfsr = Lfsr::fibonacci(primitive_poly(8), 1);
        let states = lfsr.states(255);
        // determinism-vetted: only the cardinality is observed
        #[allow(clippy::disallowed_types)]
        let unique: std::collections::HashSet<_> = states.iter().collect();
        assert_eq!(unique.len(), 255);
        assert!(states.iter().all(|&s| s != 0));
    }

    #[test]
    fn reset_restores_seed() {
        let mut lfsr = Lfsr::fibonacci(primitive_poly(8), 0x5a);
        lfsr.bits(100);
        lfsr.reset();
        assert_eq!(lfsr.state(), 0x5a);
    }

    #[test]
    fn iterator_yields_bits() {
        let lfsr = Lfsr::fibonacci(primitive_poly(5), 1);
        let bits: Vec<bool> = lfsr.take(10).collect();
        assert_eq!(bits.len(), 10);
    }

    #[test]
    #[should_panic(expected = "all-zero seed")]
    fn zero_seed_rejected() {
        Lfsr::fibonacci(primitive_poly(8), 0);
    }

    #[test]
    fn serial_stream_is_balanced() {
        // An m-sequence of period 2^n - 1 has 2^(n-1) ones.
        let mut lfsr = Lfsr::fibonacci(primitive_poly(10), 1);
        let ones = lfsr.bits(1023).iter().filter(|&&b| b).count();
        assert_eq!(ones, 512);
    }
}
