// determinism-vetted: the only hash map here counts per-pattern
// occurrences via entry() in sequence order and is never iterated
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::fmt;

use bist_logicsim::{Pattern, SeqSim};
use bist_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};
use bist_synth::{
    count_cells, synthesize_pla_with, AreaModel, CellCount, OutputSpec, SynthesisOptions,
    TwoLevelNetwork,
};

/// Options for LFSROM synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LfsromOptions {
    /// Options handed to the two-level minimizer (term sharing etc.).
    pub synthesis: SynthesisOptions,
}

/// Error returned by [`LfsromGenerator::synthesize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesizeLfsromError {
    /// The target sequence holds no patterns.
    EmptySequence,
    /// Pattern `index` has a different width than pattern 0.
    WidthMismatch {
        /// Offending pattern position.
        index: usize,
        /// Width of pattern 0.
        expected: usize,
        /// Width found.
        got: usize,
    },
    /// The sequence has zero-width patterns.
    ZeroWidth,
}

impl fmt::Display for SynthesizeLfsromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesizeLfsromError::EmptySequence => write!(f, "empty test sequence"),
            SynthesizeLfsromError::WidthMismatch {
                index,
                expected,
                got,
            } => write!(f, "pattern {index} is {got} bits wide, expected {expected}"),
            SynthesizeLfsromError::ZeroWidth => write!(f, "patterns have zero width"),
        }
    }
}

impl std::error::Error for SynthesizeLfsromError {}

/// A synthesized LFSROM: pattern register + two-level next-pattern network,
/// with its structural netlist and cost accounting.
///
/// See the [crate docs](crate) for the architecture; construct with
/// [`LfsromGenerator::synthesize`].
#[derive(Debug, Clone)]
pub struct LfsromGenerator {
    width: usize,
    sequence: Vec<Pattern>,
    codes: Vec<u64>,
    code_bits: usize,
    network: TwoLevelNetwork,
    netlist: Circuit,
}

impl LfsromGenerator {
    /// Synthesizes a generator replaying `sequence` with default options.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesizeLfsromError`] for empty sequences or
    /// inconsistent pattern widths.
    pub fn synthesize(sequence: &[Pattern]) -> Result<Self, SynthesizeLfsromError> {
        Self::synthesize_with(sequence, LfsromOptions::default())
    }

    /// Synthesizes a generator replaying `sequence`.
    ///
    /// The generator is periodic: after the last pattern it wraps to the
    /// first (BIST controllers stop it after `sequence.len()` cycles).
    ///
    /// # Errors
    ///
    /// Returns [`SynthesizeLfsromError`] for empty sequences or
    /// inconsistent pattern widths.
    pub fn synthesize_with(
        sequence: &[Pattern],
        options: LfsromOptions,
    ) -> Result<Self, SynthesizeLfsromError> {
        if sequence.is_empty() {
            return Err(SynthesizeLfsromError::EmptySequence);
        }
        let width = sequence[0].len();
        if width == 0 {
            return Err(SynthesizeLfsromError::ZeroWidth);
        }
        for (index, p) in sequence.iter().enumerate() {
            if p.len() != width {
                return Err(SynthesizeLfsromError::WidthMismatch {
                    index,
                    expected: width,
                    got: p.len(),
                });
            }
        }

        let codes = disambiguation_codes(sequence);
        let max_code = codes.iter().copied().max().unwrap_or(0);
        let code_bits = if max_code == 0 {
            0
        } else {
            (64 - max_code.leading_zeros()) as usize
        };
        let total = width + code_bits;

        // full states: pattern bits then code bits
        let states: Vec<Pattern> = sequence
            .iter()
            .zip(&codes)
            .map(|(p, &c)| {
                Pattern::from_fn(total, |b| {
                    if b < width {
                        p.get(b)
                    } else {
                        (c >> (b - width)) & 1 == 1
                    }
                })
            })
            .collect();

        // next-state specifications (wrap after the last pattern)
        let mut specs = vec![OutputSpec::default(); total];
        let n = states.len();
        for i in 0..n {
            let next = &states[(i + 1) % n];
            for (b, spec) in specs.iter_mut().enumerate() {
                if next.get(b) {
                    spec.on.push(states[i].clone());
                } else {
                    spec.off.push(states[i].clone());
                }
            }
        }
        let network = synthesize_pla_with(total, &specs, options.synthesis);

        // functional self-check: the synthesized network must walk the
        // sequence
        for i in 0..n {
            debug_assert_eq!(
                network.eval(&states[i]),
                states[(i + 1) % n],
                "next-state network broken at step {i}"
            );
        }

        let netlist = build_netlist(total, width, &network);
        Ok(LfsromGenerator {
            width,
            sequence: sequence.to_vec(),
            codes,
            code_bits,
            network,
            netlist,
        })
    }

    /// The test pattern width (number of CUT primary inputs).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The target sequence the generator encodes.
    pub fn sequence(&self) -> &[Pattern] {
        &self.sequence
    }

    /// Number of disambiguation flip-flops added for duplicate patterns
    /// (0 when the sequence is duplicate-free).
    pub fn extra_flip_flops(&self) -> usize {
        self.code_bits
    }

    /// The disambiguation code assigned to each sequence position (all
    /// zero when the sequence is duplicate-free). The full generator state
    /// at step `i` is `(sequence[i], codes[i])`.
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// Total flip-flop count (pattern register + disambiguation bits).
    pub fn num_flip_flops(&self) -> usize {
        self.width + self.code_bits
    }

    /// The synthesized next-state network.
    pub fn network(&self) -> &TwoLevelNetwork {
        &self.network
    }

    /// The structural hardware netlist (D flip-flops + gates). Pattern bit
    /// `b` is the flip-flop named `q{b}`; the primary outputs are the
    /// pattern bits.
    pub fn netlist(&self) -> &Circuit {
        &self.netlist
    }

    /// The generator's standard-cell inventory.
    pub fn cells(&self) -> CellCount {
        count_cells(&self.netlist)
    }

    /// Silicon area in mm² under `model`.
    pub fn area_mm2(&self, model: &AreaModel) -> f64 {
        model.area_mm2(&self.cells())
    }

    /// Clocks the hardware netlist for `cycles` cycles (seeding the
    /// register with the first state) and returns the emitted patterns.
    ///
    /// `replay(sequence.len()) == sequence` is the synthesis contract,
    /// enforced by the test suite and cheap to re-check in release code.
    pub fn replay(&self, cycles: usize) -> Vec<Pattern> {
        let mut sim = SeqSim::new(&self.netlist);
        // seed with state 0
        for b in 0..self.width {
            sim.set_state(self.ff(b), self.sequence[0].get(b));
        }
        for cb in 0..self.code_bits {
            sim.set_state(self.ff(self.width + cb), (self.codes[0] >> cb) & 1 == 1);
        }
        let watch: Vec<NodeId> = (0..self.width).map(|b| self.ff(b)).collect();
        sim.trace(&[false], &watch, cycles)
    }

    fn ff(&self, b: usize) -> NodeId {
        self.netlist
            .find(&format!("q{b}"))
            .expect("flip-flop exists by construction")
    }
}

/// Assigns each sequence position a disambiguation code: positions holding
/// the same pattern get distinct codes (0, 1, 2, …), so (pattern, code)
/// states are unique and the next-state function is well-defined.
#[allow(clippy::disallowed_types)] // per-key counter, never iterated
fn disambiguation_codes(sequence: &[Pattern]) -> Vec<u64> {
    let mut seen: HashMap<&Pattern, u64> = HashMap::new();
    sequence
        .iter()
        .map(|p| {
            let c = seen.entry(p).or_insert(0);
            let code = *c;
            *c += 1;
            code
        })
        .collect()
}

fn build_netlist(total: usize, width: usize, network: &TwoLevelNetwork) -> Circuit {
    let mut b = CircuitBuilder::new("lfsrom");
    b.add_input("bist_en").expect("fresh name");
    let ff_names: Vec<String> = (0..total).map(|i| format!("q{i}")).collect();
    let ff_refs: Vec<&str> = ff_names.iter().map(String::as_str).collect();
    let next_names = {
        // flip-flops must exist before the network references them; declare
        // them with placeholder fan-in resolved after emission
        // (CircuitBuilder supports forward references, so emit the network
        // first, then the flip-flops pointing at its outputs)
        let mut names = Vec::new();
        names.extend(
            network
                .emit(&mut b, &ff_refs, "ns")
                .expect("fresh namespace"),
        );
        names
    };
    for (i, ff) in ff_names.iter().enumerate() {
        b.add_gate(ff, GateKind::Dff, &[&next_names[i]])
            .expect("fresh name");
    }
    for ff in ff_names.iter().take(width) {
        b.mark_output(ff).expect("flip-flop exists");
    }
    b.build().expect("LFSROM netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn replays_the_c17_paper_style_sequence() {
        // a 5-pattern, 5-bit deterministic set as in the paper's Figure 2
        let seq = vec![p("00101"), p("11010"), p("00011"), p("11100"), p("01110")];
        let generator = LfsromGenerator::synthesize(&seq).unwrap();
        assert_eq!(generator.replay(5), seq);
        assert_eq!(generator.extra_flip_flops(), 0);
        assert_eq!(generator.num_flip_flops(), 5);
    }

    #[test]
    fn wraps_around_periodically() {
        let seq = vec![p("001"), p("110"), p("100")];
        let generator = LfsromGenerator::synthesize(&seq).unwrap();
        let twice = generator.replay(6);
        assert_eq!(&twice[..3], &seq[..]);
        assert_eq!(&twice[3..], &seq[..]);
    }

    #[test]
    fn duplicate_patterns_get_disambiguation_ffs() {
        let seq = vec![p("0101"), p("1100"), p("0101"), p("0011")];
        let generator = LfsromGenerator::synthesize(&seq).unwrap();
        assert_eq!(generator.extra_flip_flops(), 1);
        assert_eq!(generator.replay(4), seq);
    }

    #[test]
    fn heavily_repeated_patterns_need_more_code_bits() {
        let seq = vec![p("01"); 5]; // the same pattern five times
        let generator = LfsromGenerator::synthesize(&seq).unwrap();
        assert_eq!(generator.extra_flip_flops(), 3); // codes 0..=4
        assert_eq!(generator.replay(5), seq);
    }

    #[test]
    fn single_pattern_sequence() {
        let seq = vec![p("1010")];
        let generator = LfsromGenerator::synthesize(&seq).unwrap();
        assert_eq!(generator.replay(3), vec![seq[0].clone(); 3]);
    }

    #[test]
    fn random_sequences_always_replay() {
        let mut rng = StdRng::seed_from_u64(123);
        for trial in 0..10 {
            let width = 4 + trial;
            let len = 3 + trial * 2;
            let seq: Vec<Pattern> = (0..len).map(|_| Pattern::random(&mut rng, width)).collect();
            let generator = LfsromGenerator::synthesize(&seq).unwrap();
            assert_eq!(generator.replay(len), seq, "trial {trial}");
        }
    }

    #[test]
    fn longer_sequences_cost_more() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = AreaModel::es2_1um();
        let short: Vec<Pattern> = (0..8).map(|_| Pattern::random(&mut rng, 20)).collect();
        let long: Vec<Pattern> = (0..80).map(|_| Pattern::random(&mut rng, 20)).collect();
        let a_short = LfsromGenerator::synthesize(&short)
            .unwrap()
            .area_mm2(&model);
        let a_long = LfsromGenerator::synthesize(&long).unwrap().area_mm2(&model);
        assert!(
            a_long > a_short,
            "area must grow with sequence length: {a_short:.3} vs {a_long:.3}"
        );
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            LfsromGenerator::synthesize(&[]),
            Err(SynthesizeLfsromError::EmptySequence)
        ));
        let err = LfsromGenerator::synthesize(&[p("01"), p("011")]).unwrap_err();
        assert!(matches!(
            err,
            SynthesizeLfsromError::WidthMismatch { index: 1, .. }
        ));
    }

    #[test]
    fn cells_include_register_and_network() {
        let seq = vec![p("00101"), p("11010"), p("00011")];
        let generator = LfsromGenerator::synthesize(&seq).unwrap();
        let cells = generator.cells();
        assert_eq!(cells.get(bist_synth::CellKind::Dff), 5);
        assert!(cells.total() > 5, "next-state logic contributes cells");
    }
}
