//! LFSROM synthesis — the paper's core contribution, part one.
//!
//! An **LFSROM** is a hardware generator that replays an ordered
//! deterministic test sequence *in situ*: a register of D flip-flops whose
//! content at cycle `t` *is* test pattern `t`, fed by a synthesized
//! two-level next-pattern network (the "OR2 network" of the paper's
//! Figures 2/3). Because only the `d` sequence states are ever visited out
//! of `2^w`, the next-state logic minimizes against an enormous don't-care
//! set — the smaller the deterministic sequence, the cheaper the network,
//! which is the lever the whole mixed-scheme trade-off turns on.
//!
//! [`LfsromGenerator::synthesize`] handles the corner the paper's \[Duf93\]
//! algorithm must also handle: a sequence that visits the same pattern
//! twice has no next-state *function* over the pattern bits alone, so a
//! minimal set of disambiguation flip-flops is appended (their next-state
//! functions are synthesized in the same network).
//!
//! Every synthesized generator is **verified by replay**: the emitted
//! structural netlist is clocked cycle-by-cycle with
//! [`SeqSim`](bist_logicsim::SeqSim) and must reproduce the target
//! sequence bit-exactly.
//!
//! # Example
//!
//! ```
//! use bist_lfsrom::LfsromGenerator;
//! use bist_logicsim::Pattern;
//!
//! let sequence: Vec<Pattern> = ["00110", "01001", "10111", "00101", "11010"]
//!     .iter()
//!     .map(|s| s.parse().unwrap())
//!     .collect();
//! let generator = LfsromGenerator::synthesize(&sequence)?;
//! assert_eq!(generator.replay(sequence.len()), sequence);
//! assert_eq!(generator.extra_flip_flops(), 0); // patterns were distinct
//! # Ok::<(), bist_lfsrom::SynthesizeLfsromError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;

pub use generator::{LfsromGenerator, LfsromOptions, SynthesizeLfsromError};
