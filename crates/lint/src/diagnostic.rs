//! The reusable diagnostics vocabulary: rule codes, severities, spans,
//! and the report that collects them.

use std::fmt;

/// How serious a finding is.
///
/// Ordered `Info < Warn < Error` so `report.worst()` and threshold
/// comparisons (`--deny warnings`) read naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Purely informational (testability summaries, sequential loops).
    Info,
    /// Suspicious but not structurally fatal.
    Warn,
    /// The netlist (or HDL) is defective.
    Error,
}

impl Severity {
    /// Lowercase label used in reports (`"error"`, `"warning"`,
    /// `"info"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Source location of a finding.
///
/// Lines are 1-based lines of the `.bench` (or HDL) source the circuit
/// was parsed from; line `0` means the finding concerns the whole
/// netlist (or the source text is unavailable, e.g. a synthetically
/// generated circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based source line, or `0` for the whole netlist.
    pub line: usize,
}

impl Span {
    /// A span pointing at one source line.
    pub fn line(line: usize) -> Self {
        Span { line }
    }

    /// The whole-netlist span (no single line owns the finding).
    pub fn whole() -> Self {
        Span { line: 0 }
    }

    /// True if the span names a concrete source line.
    pub fn is_located(self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str("netlist")
        } else {
            write!(f, "line {}", self.line)
        }
    }
}

macro_rules! rule_registry {
    ($(#[doc = $enum_doc:literal])* $vis:vis enum $name:ident {
        $($(#[doc = $doc:literal])* $variant:ident = ($code:literal, $sev:ident, $summary:literal)),* $(,)?
    }) => {
        $(#[doc = $enum_doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis enum $name {
            $($(#[doc = $doc])* $variant,)*
        }

        impl $name {
            /// Every rule, in code order.
            pub const ALL: &'static [$name] = &[$($name::$variant),*];

            /// The stable code string (`"BL001"`, …).
            pub fn code(self) -> &'static str {
                match self { $($name::$variant => $code),* }
            }

            /// The severity this rule reports at.
            pub fn default_severity(self) -> Severity {
                match self { $($name::$variant => Severity::$sev),* }
            }

            /// One-line description of what the rule checks.
            pub fn summary(self) -> &'static str {
                match self { $($name::$variant => $summary),* }
            }

            /// Resolves a code string back to its rule.
            pub fn from_code(code: &str) -> Option<$name> {
                match code { $($code => Some($name::$variant),)* _ => None }
            }
        }
    };
}

rule_registry! {
    /// The diagnostic code registry.
    ///
    /// `BL0xx` codes concern `.bench` netlists (structural defects at
    /// error level, style/testability findings at warn/info level);
    /// `BL1xx` codes are the unified HDL lints. Codes are stable across
    /// releases — CI keys on them.
    pub enum RuleCode {
        /// The combinational part of the netlist is cyclic.
        CombinationalCycle = ("BL001", Error, "combinational cycle"),
        /// A fan-in or output references a name that is never driven.
        UndrivenNet = ("BL002", Error, "undriven net"),
        /// The same name is declared (or marked as output) twice.
        DuplicateDefinition = ("BL003", Error, "duplicate definition"),
        /// A gate has an illegal fan-in count for its kind.
        BadFanin = ("BL004", Error, "illegal fan-in arity"),
        /// The circuit has no primary inputs or no primary outputs.
        EmptyInterface = ("BL005", Error, "empty circuit interface"),
        /// A line of the source could not be parsed at all.
        SyntaxError = ("BL006", Error, "syntax error"),
        /// A gate drives nothing that reaches a primary output.
        DanglingGate = ("BL007", Warn, "dangling gate"),
        /// A primary input drives nothing at all.
        FloatingInput = ("BL008", Warn, "floating input"),
        /// A constant node drives live logic.
        ConstantDrive = ("BL009", Warn, "constant-driven logic"),
        /// A node's fan-out exceeds the configured limit.
        HighFanout = ("BL010", Warn, "excessive fan-out"),
        /// SCOAP controllability exceeds the configured limit somewhere.
        HardToControl = ("BL011", Warn, "hard-to-control logic"),
        /// SCOAP observability exceeds the configured limit somewhere.
        HardToObserve = ("BL012", Warn, "hard-to-observe logic"),
        /// Per-circuit SCOAP testability summary.
        TestabilitySummary = ("BL013", Info, "testability summary"),
        /// A feedback loop through flip-flops (normal in sequential designs).
        SequentialLoop = ("BL014", Info, "sequential feedback loop"),
        /// HDL: an identifier is used but never declared.
        HdlUndeclared = ("BL101", Error, "HDL undeclared identifier"),
        /// HDL: the same name is declared twice in one scope.
        HdlDuplicate = ("BL102", Error, "HDL duplicate declaration"),
        /// HDL: block open/close constructs do not balance.
        HdlUnbalanced = ("BL103", Error, "HDL unbalanced blocks"),
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One lint finding: a rule code, its severity, a human message and the
/// source span it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: RuleCode,
    /// Severity (normally the rule's default).
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Where in the source the finding points.
    pub span: Span,
}

impl Diagnostic {
    /// A diagnostic at the rule's default severity.
    pub fn new(code: RuleCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

/// Everything one lint run found, sorted deterministically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// All findings, sorted by (line, code, message).
    pub diagnostics: Vec<Diagnostic>,
    /// The SCOAP testability summary, when the analysis ran (absent
    /// when the netlist failed to parse).
    pub scoap: Option<crate::scoap::ScoapSummary>,
}

impl LintReport {
    /// Sorts findings into the canonical deterministic order: by span
    /// (whole-netlist first), then rule code, then message.
    pub fn normalize(mut self) -> Self {
        self.diagnostics
            .sort_by(|a, b| (a.span, a.code, &a.message).cmp(&(b.span, b.code, &b.message)));
        self
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True if any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// True if any finding is a warning.
    pub fn has_warnings(&self) -> bool {
        self.count(Severity::Warn) > 0
    }

    /// The most severe finding present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// True if the run produced no errors and no warnings (info-level
    /// findings do not count against cleanliness).
    pub fn is_clean(&self) -> bool {
        !self.has_errors() && !self.has_warnings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_order_naturally() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Warn.label(), "warning");
    }

    #[test]
    fn codes_round_trip() {
        for &rule in RuleCode::ALL {
            assert_eq!(RuleCode::from_code(rule.code()), Some(rule));
            assert!(rule.code().starts_with("BL"));
            assert!(!rule.summary().is_empty());
        }
        assert_eq!(RuleCode::from_code("BL999"), None);
    }

    #[test]
    fn codes_are_unique() {
        for (i, a) in RuleCode::ALL.iter().enumerate() {
            for b in &RuleCode::ALL[i + 1..] {
                assert_ne!(a.code(), b.code());
            }
        }
    }

    #[test]
    fn report_counts_and_worst() {
        let mut report = LintReport::default();
        assert!(report.is_clean());
        assert_eq!(report.worst(), None);
        report.diagnostics.push(Diagnostic::new(
            RuleCode::TestabilitySummary,
            Span::whole(),
            "summary",
        ));
        assert!(report.is_clean());
        report.diagnostics.push(Diagnostic::new(
            RuleCode::DanglingGate,
            Span::line(3),
            "dangling",
        ));
        assert!(!report.is_clean());
        assert_eq!(report.worst(), Some(Severity::Warn));
        assert!(report.has_warnings());
        assert!(!report.has_errors());
    }

    #[test]
    fn normalize_sorts_by_line_then_code() {
        let report = LintReport {
            diagnostics: vec![
                Diagnostic::new(RuleCode::HighFanout, Span::line(9), "b"),
                Diagnostic::new(RuleCode::DanglingGate, Span::line(9), "a"),
                Diagnostic::new(RuleCode::FloatingInput, Span::line(2), "c"),
            ],
            scoap: None,
        }
        .normalize();
        let lines: Vec<usize> = report.diagnostics.iter().map(|d| d.span.line).collect();
        assert_eq!(lines, [2, 9, 9]);
        assert_eq!(report.diagnostics[1].code, RuleCode::DanglingGate);
    }

    #[test]
    fn diagnostic_display_is_compact() {
        let d = Diagnostic::new(RuleCode::UndrivenNet, Span::line(4), "net `x` undriven");
        assert_eq!(d.to_string(), "error[BL002] line 4: net `x` undriven");
        let d = Diagnostic::new(RuleCode::EmptyInterface, Span::whole(), "no inputs");
        assert_eq!(d.to_string(), "error[BL005] netlist: no inputs");
    }
}
