//! The unified HDL lint: `crates/hdl`'s tokenizer-level Verilog/VHDL
//! audits folded into the shared [`Diagnostic`] vocabulary, so `.bench`
//! netlists and emitted HDL produce one report format.

use bist_hdl::lint::{check_verilog, check_vhdl, LintError, LintKind};

use crate::diagnostic::{Diagnostic, LintReport, RuleCode, Span};

fn diagnostic_of(error: LintError) -> Diagnostic {
    let code = match error.kind {
        LintKind::Undeclared => RuleCode::HdlUndeclared,
        LintKind::Duplicate => RuleCode::HdlDuplicate,
        LintKind::Unbalanced => RuleCode::HdlUnbalanced,
    };
    Diagnostic::new(code, Span::line(error.line), error.message)
}

fn report(result: Result<(), LintError>) -> LintReport {
    LintReport {
        diagnostics: result.err().map(diagnostic_of).into_iter().collect(),
        scoap: None,
    }
}

/// Lints Verilog text; findings carry `BL1xx` codes.
///
/// # Example
///
/// ```
/// let report = bist_lint::lint_verilog("module t (\n  a\n);\n  input a;\n  assign y = a;\nendmodule\n");
/// assert!(report.has_errors());
/// assert_eq!(report.diagnostics[0].code.code(), "BL101");
/// ```
pub fn lint_verilog(text: &str) -> LintReport {
    report(check_verilog(text))
}

/// Lints VHDL text; findings carry `BL1xx` codes.
pub fn lint_vhdl(text: &str) -> LintReport {
    report(check_vhdl(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_verilog_is_clean() {
        let text = "module t (\n  a,\n  y\n);\n  input a;\n  output y;\n  wire y;\n  assign y = ~a;\nendmodule\n";
        assert!(lint_verilog(text).is_clean());
    }

    #[test]
    fn undeclared_maps_to_bl101() {
        let report = lint_verilog("module t (\n  a\n);\n  input a;\n  assign y = ~a;\nendmodule\n");
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, RuleCode::HdlUndeclared);
        assert_eq!(report.diagnostics[0].span.line, 5);
    }

    #[test]
    fn duplicate_maps_to_bl102() {
        let report = lint_verilog("module t (\n  a\n);\n  input a;\n  input a;\nendmodule\n");
        assert_eq!(report.diagnostics[0].code, RuleCode::HdlDuplicate);
    }

    #[test]
    fn unbalanced_maps_to_bl103() {
        let report = lint_verilog("module t (\n  a\n);\n  input a;\n");
        assert_eq!(report.diagnostics[0].code, RuleCode::HdlUnbalanced);
    }

    #[test]
    fn vhdl_findings_share_the_codes() {
        let report = lint_vhdl(
            "entity t is\n  port (\n    a : in std_logic\n  );\nend entity t;\narchitecture s of t is\nbegin\n  ghost <= not a;\nend architecture s;\n",
        );
        assert_eq!(report.diagnostics[0].code, RuleCode::HdlUndeclared);
    }
}
