//! Static analysis for gate-level netlists and emitted HDL.
//!
//! `bist-lint` answers testability questions *without simulation*: a
//! multi-pass analyzer over [`Circuit`] producing a unified
//! [`LintReport`] of [`Diagnostic`]s with stable `BLxxx` codes and
//! `.bench` source spans, plus full SCOAP controllability/observability
//! tables ([`ScoapAnalysis`]) condensed into a per-circuit testability
//! summary.
//!
//! Three passes:
//!
//! 1. **parse** ([`parse_pass`]) — `.bench` text to [`Circuit`] +
//!    [`SourceMap`]; hard structural defects (syntax, cycles, undriven
//!    nets, duplicates…) become `BL001`–`BL006` error diagnostics,
//! 2. **structural** ([`structural_pass`]) — dead logic, floating
//!    inputs, constant drivers, fan-out excess, sequential feedback
//!    loops (`BL007`–`BL010`, `BL014`),
//! 3. **scoap** ([`scoap_pass`]) — SCOAP CC0/CC1/CO over the levelized
//!    order; hard-to-control/observe findings, a random-resistance
//!    ranking and the always-present testability summary (`BL011`–
//!    `BL013`).
//!
//! Emitted Verilog/VHDL shares the vocabulary through [`lint_verilog`] /
//! [`lint_vhdl`] (`BL101`–`BL103`).
//!
//! # Example
//!
//! ```
//! use bist_lint::{lint_bench, LintOptions, RuleCode};
//!
//! let report = lint_bench(
//!     "demo",
//!     "INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NOT(a)",
//!     &LintOptions::default(),
//! );
//! assert!(report.has_warnings());
//! // findings sort by line; the whole-netlist testability summary is line 0
//! let floating = &report.diagnostics[1];
//! assert_eq!(floating.code, RuleCode::FloatingInput);
//! assert_eq!(floating.span.line, 2);
//! assert!(report.scoap.is_some(), "valid netlists get a SCOAP summary");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diagnostic;
mod hdl;
mod scoap;
mod structural;

use bist_netlist::{bench, BuildCircuitError, Circuit, ParseBenchError, SourceMap};

pub use diagnostic::{Diagnostic, LintReport, RuleCode, Severity, Span};
pub use hdl::{lint_verilog, lint_vhdl};
pub use scoap::{fmt_scoap, RankedNode, ScoapAnalysis, ScoapSummary, SCOAP_INF};
pub use structural::structural_pass;

use crate::scoap::fmt_scoap as fmt;
use crate::structural::{reachable_from_outputs, span_of};

/// Tunable thresholds of the warn-level rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintOptions {
    /// Fan-out count above which `BL010` fires.
    pub max_fanout: usize,
    /// SCOAP controllability above which a node counts as hard to
    /// control (`BL011`).
    pub cc_limit: u32,
    /// SCOAP observability above which a node counts as hard to observe
    /// (`BL012`).
    pub co_limit: u32,
    /// How many nodes the random-resistance ranking keeps.
    pub top_ranked: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            max_fanout: 16,
            cc_limit: 100,
            co_limit: 100,
            top_ranked: 5,
        }
    }
}

/// The parse pass: `.bench` text to a circuit plus its source map, or
/// the single error diagnostic the defect maps to (parsing stops at the
/// first defect, so one is all there can be).
///
/// # Errors
///
/// The defect as a located `BL001`–`BL006` [`Diagnostic`].
pub fn parse_pass(name: &str, source: &str) -> Result<(Circuit, SourceMap), Diagnostic> {
    bench::parse_with_source_map(name, source).map_err(|e| parse_diagnostic(&e))
}

fn parse_diagnostic(error: &ParseBenchError) -> Diagnostic {
    let span = Span::line(error.line());
    match error {
        ParseBenchError::Syntax { message, .. } => {
            Diagnostic::new(RuleCode::SyntaxError, span, message.clone())
        }
        ParseBenchError::Build { error, .. } => {
            let code = match error {
                BuildCircuitError::CombinationalCycle(_) => RuleCode::CombinationalCycle,
                BuildCircuitError::UnknownName(_) => RuleCode::UndrivenNet,
                BuildCircuitError::DuplicateName(_) | BuildCircuitError::DuplicateOutput(_) => {
                    RuleCode::DuplicateDefinition
                }
                BuildCircuitError::BadFanin { .. } => RuleCode::BadFanin,
                BuildCircuitError::NoInputs | BuildCircuitError::NoOutputs => {
                    RuleCode::EmptyInterface
                }
            };
            Diagnostic::new(code, span, error.to_string())
        }
    }
}

/// The SCOAP pass: computes the full tables, derives the testability
/// findings (`BL011`, `BL012`), and always emits the `BL013` summary.
pub fn scoap_pass(
    circuit: &Circuit,
    map: Option<&SourceMap>,
    options: &LintOptions,
) -> (Vec<Diagnostic>, ScoapSummary) {
    let analysis = ScoapAnalysis::analyze(circuit);
    let summary = analysis.summary(circuit, options.top_ranked);
    let reachable = reachable_from_outputs(circuit);
    let mut diagnostics = Vec::new();

    // hard to control: sources are trivially controllable, so only look
    // at real logic; INF counts as over any limit (constant-tied nets)
    let mut control_count = 0usize;
    let mut worst_control: Option<(usize, u32)> = None;
    // hard to observe: dangling nodes are BL007's finding, not BL012's
    let mut observe_count = 0usize;
    let mut worst_observe: Option<(usize, u32)> = None;
    for (i, node) in circuit.nodes().iter().enumerate() {
        let id = bist_netlist::NodeId::from_index(i);
        if !node.kind().is_source() {
            let cc = analysis.cc0(id).max(analysis.cc1(id));
            if cc > options.cc_limit {
                control_count += 1;
                if worst_control.is_none_or(|(_, best)| cc > best) {
                    worst_control = Some((i, cc));
                }
            }
        }
        if reachable[i] {
            let co = analysis.co(id);
            if co > options.co_limit {
                observe_count += 1;
                if worst_observe.is_none_or(|(_, best)| co > best) {
                    worst_observe = Some((i, co));
                }
            }
        }
    }
    if let Some((i, _)) = worst_control {
        let id = bist_netlist::NodeId::from_index(i);
        let node = circuit.node(id);
        diagnostics.push(Diagnostic::new(
            RuleCode::HardToControl,
            span_of(map, node.name()),
            format!(
                "{control_count} hard-to-control node(s) (CC > {}); worst `{}` \
                 (CC0={}, CC1={})",
                options.cc_limit,
                node.name(),
                fmt(analysis.cc0(id)),
                fmt(analysis.cc1(id)),
            ),
        ));
    }
    if let Some((i, co)) = worst_observe {
        let node = circuit.node(bist_netlist::NodeId::from_index(i));
        diagnostics.push(Diagnostic::new(
            RuleCode::HardToObserve,
            span_of(map, node.name()),
            format!(
                "{observe_count} hard-to-observe node(s) (CO > {}); worst `{}` (CO={})",
                options.co_limit,
                node.name(),
                fmt(co),
            ),
        ));
    }

    let part = |slot: &Option<(String, u32)>, label: &str| match slot {
        Some((name, value)) => format!("max {label} {} (`{name}`)", fmt(*value)),
        None => format!("max {label} inf"),
    };
    diagnostics.push(Diagnostic::new(
        RuleCode::TestabilitySummary,
        Span::whole(),
        format!(
            "testability: {} nodes; {}; {}; {}",
            summary.nodes,
            part(&summary.max_cc0, "CC0"),
            part(&summary.max_cc1, "CC1"),
            part(&summary.max_co, "CO"),
        ),
    ));

    (diagnostics, summary)
}

/// Lints an already-built circuit: structural + SCOAP passes. Pass the
/// [`SourceMap`] from [`parse_pass`] when the circuit came from `.bench`
/// text so findings carry line spans; without one, spans are
/// whole-netlist.
pub fn lint_circuit(
    circuit: &Circuit,
    map: Option<&SourceMap>,
    options: &LintOptions,
) -> LintReport {
    let mut diagnostics = structural_pass(circuit, map, options);
    let (scoap_diags, summary) = scoap_pass(circuit, map, options);
    diagnostics.extend(scoap_diags);
    LintReport {
        diagnostics,
        scoap: Some(summary),
    }
    .normalize()
}

/// Lints `.bench` source end to end: parse, structural, SCOAP. A parse
/// failure yields a report with the single error diagnostic and no SCOAP
/// summary.
pub fn lint_bench(name: &str, source: &str, options: &LintOptions) -> LintReport {
    match parse_pass(name, source) {
        Ok((circuit, map)) => lint_circuit(&circuit, Some(&map), options),
        Err(diagnostic) => LintReport {
            diagnostics: vec![diagnostic],
            scoap: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defects_map_to_error_codes() {
        let cases: &[(&str, RuleCode, usize)] = &[
            ("INPUT(a)\nOUTPUT(y)\nwat", RuleCode::SyntaxError, 3),
            (
                "INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)",
                RuleCode::UndrivenNet,
                3,
            ),
            (
                "INPUT(a)\nINPUT(a)\nOUTPUT(a)",
                RuleCode::DuplicateDefinition,
                2,
            ),
            (
                "INPUT(a)\nOUTPUT(a)\nOUTPUT(a)",
                RuleCode::DuplicateDefinition,
                3,
            ),
            ("INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)", RuleCode::BadFanin, 3),
            (
                "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)",
                RuleCode::CombinationalCycle,
                3,
            ),
            ("OUTPUT(y)\ny = CONST0()", RuleCode::EmptyInterface, 0),
            ("INPUT(a)\na2 = NOT(a)", RuleCode::EmptyInterface, 0),
        ];
        for (source, code, line) in cases {
            let report = lint_bench("t", source, &LintOptions::default());
            assert_eq!(report.diagnostics.len(), 1, "source: {source}");
            let d = &report.diagnostics[0];
            assert_eq!(d.code, *code, "source: {source}");
            assert_eq!(d.span.line, *line, "source: {source}");
            assert_eq!(d.severity, Severity::Error);
            assert!(report.scoap.is_none());
        }
    }

    #[test]
    fn scoap_pass_always_summarizes() {
        let (circuit, map) =
            parse_pass("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)").expect("valid netlist");
        let (diags, summary) = scoap_pass(&circuit, Some(&map), &LintOptions::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, RuleCode::TestabilitySummary);
        assert_eq!(summary.nodes, 2);
    }

    #[test]
    fn tight_limits_trigger_testability_warnings() {
        let options = LintOptions {
            cc_limit: 2,
            co_limit: 1,
            ..LintOptions::default()
        };
        let report = lint_bench(
            "t",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt1 = AND(a, b)\ny = AND(t1, c)",
            &options,
        );
        let codes: Vec<RuleCode> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&RuleCode::HardToControl), "{codes:?}");
        assert!(codes.contains(&RuleCode::HardToObserve), "{codes:?}");
        // aggregate rules fire once each, pointing at the worst offender
        assert_eq!(
            codes
                .iter()
                .filter(|c| **c == RuleCode::HardToControl)
                .count(),
            1
        );
    }

    #[test]
    fn clean_circuit_reports_only_the_summary() {
        let report = lint_bench(
            "t",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)",
            &LintOptions::default(),
        );
        assert!(report.is_clean());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, RuleCode::TestabilitySummary);
        let scoap = report.scoap.expect("summary present");
        assert_eq!(scoap.nodes, 3);
        assert_eq!(scoap.max_cc1, Some(("y".to_owned(), 2)));
    }

    #[test]
    fn reports_are_deterministic() {
        let source = "INPUT(a)\nINPUT(u1)\nINPUT(u2)\nOUTPUT(y)\ny = NOT(a)\ndead = BUF(a)";
        let a = lint_bench("t", source, &LintOptions::default());
        let b = lint_bench("t", source, &LintOptions::default());
        assert_eq!(a, b);
        let lines: Vec<usize> = a.diagnostics.iter().map(|d| d.span.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "diagnostics come out line-ordered");
    }
}
