//! SCOAP testability analysis (Goldstein 1979), computed levelized over
//! the circuit's topological order — no simulation.
//!
//! Three costs per node, all "number of circuit lines that must be set,
//! plus one per level of logic":
//!
//! * **CC0** — combinational 0-controllability: effort to drive the node
//!   to logic 0 from the primary inputs,
//! * **CC1** — 1-controllability, dually,
//! * **CO** — combinational observability: effort to propagate the
//!   node's value to a primary output.
//!
//! Primary inputs cost `CC0 = CC1 = 1`; primary outputs cost `CO = 0`.
//! Flip-flops use the **full-scan approximation** (consistent with the
//! workspace's test-per-scan assumption): a DFF output is a pseudo
//! primary input (`CC0 = CC1 = 1`) and its D pin is a pseudo primary
//! output observed at scan-capture cost `CO = 1`. Unsatisfiable costs
//! (the 1-side of a constant 0, the observability of a dangling gate)
//! saturate at [`SCOAP_INF`].

use bist_netlist::{Circuit, GateKind, NodeId};

/// The saturation value for unsatisfiable SCOAP costs.
pub const SCOAP_INF: u32 = u32::MAX;

/// Formats a SCOAP cost, rendering [`SCOAP_INF`] as `"inf"`.
pub fn fmt_scoap(value: u32) -> String {
    if value == SCOAP_INF {
        "inf".to_owned()
    } else {
        value.to_string()
    }
}

fn sat(a: u32, b: u32) -> u32 {
    a.saturating_add(b)
}

/// Full per-node SCOAP tables for one circuit.
///
/// # Example
///
/// ```
/// let c17 = bist_netlist::iscas85::c17();
/// let scoap = bist_lint::ScoapAnalysis::analyze(&c17);
/// let pi = c17.inputs()[0];
/// assert_eq!(scoap.cc0(pi), 1);
/// assert_eq!(scoap.cc1(pi), 1);
/// let po = c17.outputs()[0];
/// assert_eq!(scoap.co(po), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoapAnalysis {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl ScoapAnalysis {
    /// Computes the three tables: one forward pass over the topological
    /// order for controllability, one backward pass for observability.
    pub fn analyze(circuit: &Circuit) -> Self {
        let n = circuit.num_nodes();
        let mut cc0 = vec![SCOAP_INF; n];
        let mut cc1 = vec![SCOAP_INF; n];

        for &id in circuit.topo_order() {
            let node = circuit.node(id);
            let i = id.index();
            let fanin = node.fanin();
            let (c0, c1) = match node.kind() {
                // flip-flop outputs are pseudo primary inputs under the
                // full-scan approximation
                GateKind::Input | GateKind::Dff => (1, 1),
                GateKind::Const0 => (1, SCOAP_INF),
                GateKind::Const1 => (SCOAP_INF, 1),
                GateKind::Buf => {
                    let f = fanin[0].index();
                    (sat(cc0[f], 1), sat(cc1[f], 1))
                }
                GateKind::Not => {
                    let f = fanin[0].index();
                    (sat(cc1[f], 1), sat(cc0[f], 1))
                }
                GateKind::And | GateKind::Nand => {
                    // all-ones to make 1, cheapest single zero to make 0
                    let all1 = fanin.iter().fold(0, |acc, f| sat(acc, cc1[f.index()]));
                    let any0 = fanin
                        .iter()
                        .map(|f| cc0[f.index()])
                        .min()
                        .unwrap_or(SCOAP_INF);
                    if node.kind() == GateKind::And {
                        (sat(any0, 1), sat(all1, 1))
                    } else {
                        (sat(all1, 1), sat(any0, 1))
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let all0 = fanin.iter().fold(0, |acc, f| sat(acc, cc0[f.index()]));
                    let any1 = fanin
                        .iter()
                        .map(|f| cc1[f.index()])
                        .min()
                        .unwrap_or(SCOAP_INF);
                    if node.kind() == GateKind::Or {
                        (sat(all0, 1), sat(any1, 1))
                    } else {
                        (sat(any1, 1), sat(all0, 1))
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // cheapest way to an even / odd number of ones,
                    // a parity dynamic program over the pins
                    let (mut even, mut odd) = (0u32, SCOAP_INF);
                    for f in fanin {
                        let (f0, f1) = (cc0[f.index()], cc1[f.index()]);
                        let new_even = sat(even, f0).min(sat(odd, f1));
                        let new_odd = sat(even, f1).min(sat(odd, f0));
                        even = new_even;
                        odd = new_odd;
                    }
                    if node.kind() == GateKind::Xor {
                        (sat(even, 1), sat(odd, 1))
                    } else {
                        (sat(odd, 1), sat(even, 1))
                    }
                }
            };
            cc0[i] = c0;
            cc1[i] = c1;
        }

        let mut co = vec![SCOAP_INF; n];
        for &id in circuit.outputs() {
            co[id.index()] = 0;
        }
        // scan observation points: a DFF D pin is captured at cost 1.
        // Seeded before the backward pass because the D pin's driver sits
        // combinationally *after* the flip-flop in topological order.
        for node in circuit.nodes() {
            if node.kind() == GateKind::Dff {
                let d = node.fanin()[0].index();
                co[d] = co[d].min(1);
            }
        }
        for &id in circuit.topo_order().iter().rev() {
            let node = circuit.node(id);
            let kind = node.kind();
            if kind == GateKind::Dff {
                continue; // D-pin observation already seeded above
            }
            let here = co[id.index()];
            let fanin = node.fanin();
            for (pin, f) in fanin.iter().enumerate() {
                let side_cost = match kind {
                    GateKind::Buf | GateKind::Not => 0,
                    GateKind::And | GateKind::Nand => fanin
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != pin)
                        .fold(0, |acc, (_, g)| sat(acc, cc1[g.index()])),
                    GateKind::Or | GateKind::Nor => fanin
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != pin)
                        .fold(0, |acc, (_, g)| sat(acc, cc0[g.index()])),
                    GateKind::Xor | GateKind::Xnor => fanin
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != pin)
                        .fold(0, |acc, (_, g)| {
                            sat(acc, cc0[g.index()].min(cc1[g.index()]))
                        }),
                    GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => 0,
                };
                let cand = sat(sat(here, side_cost), 1);
                let fi = f.index();
                co[fi] = co[fi].min(cand);
            }
        }

        ScoapAnalysis { cc0, cc1, co }
    }

    /// 0-controllability of `id`.
    pub fn cc0(&self, id: NodeId) -> u32 {
        self.cc0[id.index()]
    }

    /// 1-controllability of `id`.
    pub fn cc1(&self, id: NodeId) -> u32 {
        self.cc1[id.index()]
    }

    /// Observability of `id` ([`SCOAP_INF`] if the node reaches no
    /// primary output or scan capture point).
    pub fn co(&self, id: NodeId) -> u32 {
        self.co[id.index()]
    }

    /// The combined random-resistance score of `id`:
    /// `max(CC0, CC1) + CO`, saturating — a cheap stand-in for detection
    /// probability that ranks random-pattern-resistant sites.
    pub fn resistance(&self, id: NodeId) -> u64 {
        let i = id.index();
        u64::from(self.cc0[i].max(self.cc1[i])) + u64::from(self.co[i])
    }

    /// Condenses the tables into the per-circuit summary carried by lint
    /// reports: worst finite costs and the `top` most random-resistant
    /// observable nodes.
    pub fn summary(&self, circuit: &Circuit, top: usize) -> ScoapSummary {
        let mut max_cc0: Option<(String, u32)> = None;
        let mut max_cc1: Option<(String, u32)> = None;
        let mut max_co: Option<(String, u32)> = None;
        let mut ranked: Vec<RankedNode> = Vec::new();
        for (i, node) in circuit.nodes().iter().enumerate() {
            let id = NodeId::from_index(i);
            let update = |slot: &mut Option<(String, u32)>, value: u32| {
                if value != SCOAP_INF && slot.as_ref().is_none_or(|(_, best)| value > *best) {
                    *slot = Some((node.name().to_owned(), value));
                }
            };
            update(&mut max_cc0, self.cc0[i]);
            update(&mut max_cc1, self.cc1[i]);
            update(&mut max_co, self.co[i]);
            let cc = self.cc0[i].max(self.cc1[i]);
            if cc != SCOAP_INF && self.co[i] != SCOAP_INF {
                ranked.push(RankedNode {
                    name: node.name().to_owned(),
                    cc0: self.cc0[i],
                    cc1: self.cc1[i],
                    co: self.co[i],
                    score: self.resistance(id),
                });
            }
        }
        // hardest first; name breaks ties so the ranking is total
        ranked.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.name.cmp(&b.name)));
        ranked.truncate(top);
        ScoapSummary {
            nodes: circuit.num_nodes(),
            max_cc0,
            max_cc1,
            max_co,
            resistance: ranked,
        }
    }
}

/// One entry of the random-resistance ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedNode {
    /// Node name.
    pub name: String,
    /// 0-controllability.
    pub cc0: u32,
    /// 1-controllability.
    pub cc1: u32,
    /// Observability.
    pub co: u32,
    /// `max(CC0, CC1) + CO` — higher is more random-resistant.
    pub score: u64,
}

/// Per-circuit SCOAP digest: worst finite costs (by node) and the most
/// random-resistant observable nodes, hardest first.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoapSummary {
    /// Number of nodes analyzed.
    pub nodes: usize,
    /// Largest finite CC0 and the node carrying it.
    pub max_cc0: Option<(String, u32)>,
    /// Largest finite CC1 and the node carrying it.
    pub max_cc1: Option<(String, u32)>,
    /// Largest finite CO and the node carrying it.
    pub max_co: Option<(String, u32)>,
    /// The estimated random-resistance ranking, hardest first.
    pub resistance: Vec<RankedNode>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::bench;

    fn circuit(src: &str) -> Circuit {
        bench::parse("t", src).expect("test netlist parses")
    }

    #[test]
    fn and_gate_costs() {
        let c = circuit("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)");
        let s = ScoapAnalysis::analyze(&c);
        let y = c.find("y").expect("y exists");
        let a = c.find("a").expect("a exists");
        assert_eq!(s.cc1(y), 3); // 1 + 1 + 1
        assert_eq!(s.cc0(y), 2); // min(1,1) + 1
        assert_eq!(s.co(y), 0);
        assert_eq!(s.co(a), 2); // CO(y) + CC1(b) + 1
    }

    #[test]
    fn inverting_gates_swap_sides() {
        let c = circuit("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)");
        let s = ScoapAnalysis::analyze(&c);
        let y = c.find("y").expect("y exists");
        assert_eq!(s.cc1(y), 3); // all-zeros + 1
        assert_eq!(s.cc0(y), 2); // any-one + 1
    }

    #[test]
    fn xor_parity_dp() {
        let c = circuit("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XOR(a, b, c)");
        let s = ScoapAnalysis::analyze(&c);
        let y = c.find("y").expect("y exists");
        // three unit-cost pins: even parity (0 or 2 ones) costs 3, odd too
        assert_eq!(s.cc0(y), 4);
        assert_eq!(s.cc1(y), 4);
        let a = c.find("a").expect("a exists");
        // CO(a) = CO(y) + min-side(b) + min-side(c) + 1
        assert_eq!(s.co(a), 3);
    }

    #[test]
    fn constants_saturate() {
        let c = circuit("INPUT(a)\nOUTPUT(y)\nk = CONST0()\ny = AND(a, k)");
        let s = ScoapAnalysis::analyze(&c);
        let k = c.find("k").expect("k exists");
        let y = c.find("y").expect("y exists");
        assert_eq!(s.cc0(k), 1);
        assert_eq!(s.cc1(k), SCOAP_INF);
        assert_eq!(s.cc1(y), SCOAP_INF); // needs the constant at 1
        assert_eq!(s.cc0(y), 2);
        // observing `a` requires the constant at 1: impossible
        let a = c.find("a").expect("a exists");
        assert_eq!(s.co(a), SCOAP_INF);
    }

    #[test]
    fn dff_is_pseudo_pi_and_pseudo_po() {
        let c = circuit("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(a, q)");
        let s = ScoapAnalysis::analyze(&c);
        let q = c.find("q").expect("q exists");
        let d = c.find("d").expect("d exists");
        assert_eq!(s.cc0(q), 1);
        assert_eq!(s.cc1(q), 1);
        assert_eq!(s.co(q), 0); // primary output
        assert_eq!(s.co(d), 1); // scan capture
    }

    #[test]
    fn dangling_nodes_are_unobservable() {
        let c = circuit("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = NOT(a)");
        let s = ScoapAnalysis::analyze(&c);
        let dead = c.find("dead").expect("dead exists");
        assert_eq!(s.co(dead), SCOAP_INF);
        // and they are excluded from the resistance ranking
        let summary = s.summary(&c, 10);
        assert!(summary.resistance.iter().all(|r| r.name != "dead"));
    }

    #[test]
    fn summary_ranks_hardest_first() {
        let c = circuit("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = AND(t, c)");
        let s = ScoapAnalysis::analyze(&c);
        let summary = s.summary(&c, 3);
        assert_eq!(summary.nodes, 5);
        assert_eq!(summary.resistance.len(), 3);
        for pair in summary.resistance.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        let (name, value) = summary.max_cc1.expect("finite CC1 exists");
        assert_eq!((name.as_str(), value), ("y", 5)); // 3 (t) + 1 (c) + 1
    }

    #[test]
    fn fmt_scoap_renders_inf() {
        assert_eq!(fmt_scoap(7), "7");
        assert_eq!(fmt_scoap(SCOAP_INF), "inf");
    }
}
