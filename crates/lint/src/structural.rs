//! Structural rules over a validated [`Circuit`]: dead logic, floating
//! inputs, constant drivers, fan-out excess, sequential feedback loops.
//!
//! Hard structural defects (cycles, duplicates, undriven nets) can never
//! reach this pass — [`CircuitBuilder`](bist_netlist::CircuitBuilder)
//! rejects them — so they are reported by the parse pass
//! ([`crate::parse_pass`]) instead.

use bist_netlist::{Circuit, GateKind, NodeId, SourceMap};

use crate::diagnostic::{Diagnostic, RuleCode, Span};
use crate::LintOptions;

pub(crate) fn span_of(map: Option<&SourceMap>, name: &str) -> Span {
    map.and_then(|m| m.line_for(name))
        .map(Span::line)
        .unwrap_or_default()
}

/// Which nodes can influence some primary output — walked backward over
/// fan-in edges, *through* flip-flops (a gate feeding only a D pin whose
/// state eventually reaches an output is live logic).
pub(crate) fn reachable_from_outputs(circuit: &Circuit) -> Vec<bool> {
    let mut reachable = vec![false; circuit.num_nodes()];
    let mut worklist: Vec<NodeId> = circuit
        .outputs()
        .iter()
        .copied()
        .inspect(|id| reachable[id.index()] = true)
        .collect();
    while let Some(id) = worklist.pop() {
        for &f in circuit.node(id).fanin() {
            if !reachable[f.index()] {
                reachable[f.index()] = true;
                worklist.push(f);
            }
        }
    }
    reachable
}

/// Strongly connected components of the full node graph (combinational
/// *and* sequential edges), iterative Tarjan. Components of size ≥ 2 or
/// with a self-loop are feedback loops; in a validated circuit every one
/// passes through at least one flip-flop.
fn feedback_components(circuit: &Circuit) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let n = circuit.num_nodes();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(frame) = frames.last_mut() {
            let (v, child) = (frame.0, frame.1);
            if child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let fanout = circuit.fanout(NodeId::from_index(v));
            if child < fanout.len() {
                frame.1 += 1;
                let w = fanout[child].index();
                if index[w] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    low[parent.0] = low[parent.0].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let is_loop = component.len() > 1
                        || circuit
                            .fanout(NodeId::from_index(v))
                            .iter()
                            .any(|w| w.index() == v);
                    if is_loop {
                        component.sort_unstable();
                        components.push(component);
                    }
                }
            }
        }
    }
    components
}

/// Runs every structural rule, returning its findings (unsorted; the
/// report normalizes).
pub fn structural_pass(
    circuit: &Circuit,
    map: Option<&SourceMap>,
    options: &LintOptions,
) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let reachable = reachable_from_outputs(circuit);

    for (i, node) in circuit.nodes().iter().enumerate() {
        let id = NodeId::from_index(i);
        let span = || span_of(map, node.name());
        match node.kind() {
            GateKind::Input => {
                if circuit.fanout(id).is_empty() && !circuit.is_output(id) {
                    diagnostics.push(Diagnostic::new(
                        RuleCode::FloatingInput,
                        span(),
                        format!("input `{}` drives nothing", node.name()),
                    ));
                }
            }
            GateKind::Const0 | GateKind::Const1 => {
                if !circuit.fanout(id).is_empty() {
                    let value = if node.kind() == GateKind::Const0 {
                        0
                    } else {
                        1
                    };
                    diagnostics.push(Diagnostic::new(
                        RuleCode::ConstantDrive,
                        span(),
                        format!(
                            "constant {value} `{}` drives {} gate(s) — tied logic is \
                             untestable on one side",
                            node.name(),
                            circuit.fanout(id).len()
                        ),
                    ));
                }
            }
            _ => {
                if !reachable[i] {
                    diagnostics.push(Diagnostic::new(
                        RuleCode::DanglingGate,
                        span(),
                        format!("gate `{}` cannot reach any primary output", node.name()),
                    ));
                }
            }
        }
        let fanout = circuit.fanout(id).len();
        if fanout > options.max_fanout {
            diagnostics.push(Diagnostic::new(
                RuleCode::HighFanout,
                span(),
                format!(
                    "`{}` fans out to {fanout} pins (limit {})",
                    node.name(),
                    options.max_fanout
                ),
            ));
        }
    }

    for component in feedback_components(circuit) {
        let representative = circuit.node(NodeId::from_index(component[0])).name();
        let dffs = component
            .iter()
            .filter(|&&i| circuit.node(NodeId::from_index(i)).kind() == GateKind::Dff)
            .count();
        diagnostics.push(Diagnostic::new(
            RuleCode::SequentialLoop,
            span_of(map, representative),
            format!(
                "feedback loop of {} node(s) through {dffs} flip-flop(s) (e.g. `{representative}`)",
                component.len()
            ),
        ));
    }

    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::bench;

    fn run(src: &str) -> Vec<Diagnostic> {
        let (circuit, map) = bench::parse_with_source_map("t", src).expect("test netlist parses");
        structural_pass(&circuit, Some(&map), &LintOptions::default())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<RuleCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_circuit_is_quiet() {
        let diags = run("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)");
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn flags_floating_input_with_its_line() {
        let diags = run("INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NOT(a)");
        assert_eq!(codes(&diags), [RuleCode::FloatingInput]);
        assert_eq!(diags[0].span.line, 2);
    }

    #[test]
    fn flags_dangling_gates() {
        let diags = run("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = BUF(a)");
        assert_eq!(codes(&diags), [RuleCode::DanglingGate]);
        assert_eq!(diags[0].span.line, 4);
    }

    #[test]
    fn gates_feeding_scan_state_are_live() {
        // d only feeds the flip-flop; the flip-flop reaches the output
        let diags = run("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(a, q)");
        assert_eq!(codes(&diags), [RuleCode::SequentialLoop]);
    }

    #[test]
    fn flags_constant_drivers() {
        let diags = run("INPUT(a)\nOUTPUT(y)\nk = CONST1()\ny = AND(a, k)");
        assert_eq!(codes(&diags), [RuleCode::ConstantDrive]);
        assert_eq!(diags[0].span.line, 3);
    }

    #[test]
    fn flags_excess_fanout() {
        let mut src = String::from("INPUT(a)\nOUTPUT(y)\n");
        for i in 0..3 {
            src.push_str(&format!("b{i} = NOT(a)\n"));
        }
        src.push_str("y = AND(b0, b1, b2)\n");
        let (circuit, map) = bench::parse_with_source_map("t", &src).expect("parses");
        let options = LintOptions {
            max_fanout: 2,
            ..LintOptions::default()
        };
        let diags = structural_pass(&circuit, Some(&map), &options);
        assert_eq!(codes(&diags), [RuleCode::HighFanout]);
        assert_eq!(diags[0].span.line, 1); // `a` fans out 3 times
    }

    #[test]
    fn reports_one_loop_per_component() {
        // two independent feedback registers
        let diags = run("INPUT(a)\nOUTPUT(q1)\nOUTPUT(q2)\n\
             q1 = DFF(d1)\nd1 = NOT(q1)\n\
             q2 = DFF(d2)\nd2 = NOR(q2, a)");
        assert_eq!(
            codes(&diags),
            [RuleCode::SequentialLoop, RuleCode::SequentialLoop]
        );
    }

    #[test]
    fn self_loop_dff_is_a_loop() {
        let diags = run("INPUT(a)\nOUTPUT(y)\nq = DFF(q)\ny = AND(a, q)");
        assert_eq!(codes(&diags), [RuleCode::SequentialLoop]);
    }
}
