use std::fmt;

use bist_netlist::{Circuit, GateKind, LevelQueue, NodeId, SimGraph};

/// Five-valued composite logic value used by the ATPG: the pair
/// (good-machine value, faulty-machine value) with unknowns.
///
/// * `Zero`/`One` — both machines agree,
/// * `D` — good 1, faulty 0 (the classic Roth notation),
/// * `Dbar` — good 0, faulty 1,
/// * `X` — at least one machine unknown.
///
/// # Example
///
/// ```
/// use bist_logicsim::V5;
///
/// assert_eq!(V5::from_pair(Some(true), Some(false)), V5::D);
/// assert_eq!(V5::D.good(), Some(true));
/// assert_eq!(V5::D.faulty(), Some(false));
/// assert!(V5::X.is_unknown());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum V5 {
    /// Both machines 0.
    Zero,
    /// Both machines 1.
    One,
    /// Unknown in at least one machine.
    X,
    /// Good 1, faulty 0.
    D,
    /// Good 0, faulty 1.
    Dbar,
}

impl V5 {
    /// Builds the composite value from (good, faulty) three-valued parts.
    /// Any unknown part collapses to `X`.
    pub fn from_pair(good: Option<bool>, faulty: Option<bool>) -> V5 {
        match (good, faulty) {
            (Some(false), Some(false)) => V5::Zero,
            (Some(true), Some(true)) => V5::One,
            (Some(true), Some(false)) => V5::D,
            (Some(false), Some(true)) => V5::Dbar,
            _ => V5::X,
        }
    }

    /// The good-machine component (`None` when unknown).
    pub fn good(self) -> Option<bool> {
        match self {
            V5::Zero | V5::Dbar => Some(false),
            V5::One | V5::D => Some(true),
            V5::X => None,
        }
    }

    /// The faulty-machine component (`None` when unknown).
    pub fn faulty(self) -> Option<bool> {
        match self {
            V5::Zero | V5::D => Some(false),
            V5::One | V5::Dbar => Some(true),
            V5::X => None,
        }
    }

    /// True for `D` or `D̄` — a fault effect visible at this node.
    pub fn is_fault_effect(self) -> bool {
        matches!(self, V5::D | V5::Dbar)
    }

    /// True for `X`.
    pub fn is_unknown(self) -> bool {
        self == V5::X
    }
}

impl fmt::Display for V5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            V5::Zero => "0",
            V5::One => "1",
            V5::X => "X",
            V5::D => "D",
            V5::Dbar => "D'",
        };
        f.write_str(s)
    }
}

fn eval3(kind: GateKind, inputs: impl Iterator<Item = Option<bool>> + Clone) -> Option<bool> {
    match kind {
        GateKind::Const0 => Some(false),
        GateKind::Const1 => Some(true),
        GateKind::Buf => inputs.clone().next().flatten(),
        GateKind::Not => inputs.clone().next().flatten().map(|v| !v),
        GateKind::And | GateKind::Nand => {
            let mut any_unknown = false;
            let mut out = true;
            for v in inputs {
                match v {
                    Some(false) => {
                        out = false;
                        any_unknown = false;
                        break;
                    }
                    Some(true) => {}
                    None => any_unknown = true,
                }
            }
            let core = if any_unknown { None } else { Some(out) };
            if kind == GateKind::Nand {
                core.map(|v| !v)
            } else {
                core
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut any_unknown = false;
            let mut out = false;
            for v in inputs {
                match v {
                    Some(true) => {
                        out = true;
                        any_unknown = false;
                        break;
                    }
                    Some(false) => {}
                    None => any_unknown = true,
                }
            }
            let core = if any_unknown { None } else { Some(out) };
            if kind == GateKind::Nor {
                core.map(|v| !v)
            } else {
                core
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut parity = false;
            for v in inputs {
                match v {
                    Some(b) => parity ^= b,
                    None => return None,
                }
            }
            Some(if kind == GateKind::Xnor {
                !parity
            } else {
                parity
            })
        }
        GateKind::Input | GateKind::Dff => unreachable!("sources are not evaluated"),
    }
}

/// Description of a single stuck-at fault for injection into
/// [`FiveValueSim`]. `pin: None` is a fault on the node's output stem;
/// `pin: Some(k)` is a fault as seen on fan-in pin `k` of the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InjectedFault {
    /// The faulted node (for pin faults: the gate whose pin is faulted).
    pub site: NodeId,
    /// Fan-in pin index, or `None` for the output stem.
    pub pin: Option<u8>,
    /// The stuck value.
    pub stuck: bool,
}

/// Single-pattern five-valued simulator with stuck-at fault injection — the
/// implication engine underneath the PODEM ATPG.
///
/// Assign primary inputs (possibly `X`) with [`FiveValueSim::set_input`],
/// call [`FiveValueSim::imply`], then inspect node values, the D-frontier
/// and output detection.
///
/// # Example
///
/// ```
/// use bist_logicsim::{FiveValueSim, InjectedFault, V5};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let g10 = c17.find("G10").unwrap();
/// let mut sim = FiveValueSim::new(&c17, Some(InjectedFault {
///     site: g10,
///     pin: None,
///     stuck: true,
/// }));
/// // G1=1, G3=1 drive G10 to 0 in the good machine; the fault makes it D̄.
/// sim.set_input(0, Some(true));
/// sim.set_input(2, Some(true));
/// sim.imply();
/// assert_eq!(sim.value(g10), V5::Dbar);
/// ```
#[derive(Debug)]
pub struct FiveValueSim<'c> {
    circuit: &'c Circuit,
    graph: &'c SimGraph,
    fault: Option<InjectedFault>,
    pi_values: Vec<Option<bool>>,
    values: Vec<V5>,
    /// Reusable levelized implication queue (see `imply_from_input`) —
    /// no allocations once its buckets are warm.
    queue: LevelQueue,
    /// Optional propagation scope (see [`FiveValueSim::restrict_scope`]):
    /// implication maintains values only for marked nodes.
    scope: Option<Vec<bool>>,
}

impl<'c> FiveValueSim<'c> {
    /// Creates a simulator over `circuit`, optionally injecting `fault`.
    /// All primary inputs start at `X`.
    pub fn new(circuit: &'c Circuit, fault: Option<InjectedFault>) -> Self {
        let graph = circuit.sim_graph();
        FiveValueSim {
            circuit,
            graph,
            fault,
            pi_values: vec![None; circuit.inputs().len()],
            values: vec![V5::X; circuit.num_nodes()],
            queue: LevelQueue::new(graph),
            scope: None,
        }
    }

    /// Restricts implication to the nodes marked in `in_scope`: [`imply`]
    /// and [`imply_from_input`] skip everything else, which keeps stale
    /// values (`X` unless previously written) outside the scope.
    ///
    /// The mask must be *fan-in closed* — every fan-in of an in-scope node
    /// is in scope — so the kept region is self-contained: each in-scope
    /// node sees exactly the fan-in values a full implication would, and
    /// its value is therefore bit-identical to the unscoped simulator's. A
    /// caller that reads only in-scope nodes (plus [`FiveValueSim::input`],
    /// which bypasses node values) cannot observe the difference; the
    /// whole-circuit inspectors ([`FiveValueSim::d_frontier`],
    /// [`FiveValueSim::fault_at_output`],
    /// [`FiveValueSim::x_path_to_output_exists`]) read out-of-scope nodes
    /// and are *not* meaningful on a scoped simulator.
    ///
    /// This is the workhorse behind justification-goal PODEM searches: a
    /// goal over a handful of nodes only ever reads their fan-in cone, and
    /// skipping the rest of each input's fan-out cone makes every decision
    /// step proportionally cheaper without perturbing the search.
    ///
    /// [`imply`]: FiveValueSim::imply
    /// [`imply_from_input`]: FiveValueSim::imply_from_input
    pub fn restrict_scope(&mut self, in_scope: Vec<bool>) {
        debug_assert_eq!(in_scope.len(), self.circuit.num_nodes());
        debug_assert!(
            self.circuit.topo_order().iter().all(|&id| {
                !in_scope[id.index()]
                    || self
                        .circuit
                        .node(id)
                        .fanin()
                        .iter()
                        .all(|f| in_scope[f.index()])
            }),
            "propagation scope must be fan-in closed"
        );
        self.scope = Some(in_scope);
    }

    /// The circuit this simulator is bound to.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The injected fault, if any.
    pub fn fault(&self) -> Option<InjectedFault> {
        self.fault
    }

    /// Assigns primary input `index` (positional, per `circuit.inputs()`).
    /// `None` means `X`.
    pub fn set_input(&mut self, index: usize, value: Option<bool>) {
        self.pi_values[index] = value;
    }

    /// Current assignment of primary input `index`.
    pub fn input(&self, index: usize) -> Option<bool> {
        self.pi_values[index]
    }

    /// Clears all primary input assignments back to `X`.
    pub fn reset_inputs(&mut self) {
        self.pi_values.fill(None);
    }

    /// Evaluates one node under the current values and injected fault.
    fn eval_node(&self, id: NodeId) -> V5 {
        let g = self.graph;
        let idx = id.index();
        let fanin = g.fanin(idx);
        let v = match g.kind(idx) {
            GateKind::Input => {
                let pos = g.input_pos(idx).expect("input node is registered");
                let v = self.pi_values[pos];
                V5::from_pair(v, v)
            }
            GateKind::Dff => V5::X,
            kind => {
                let good = eval3(kind, fanin.iter().map(|&f| self.values[f as usize].good()));
                // Fast path: away from the fault site with no fault effect
                // on any fan-in, the faulty machine sees exactly the good
                // inputs — the good fold already yields both components.
                // This is the overwhelming majority of nodes in a PODEM
                // walk (fault effects live in one narrow cone).
                let at_site = matches!(self.fault, Some(f) if f.site == id);
                if !at_site
                    && !fanin
                        .iter()
                        .any(|&f| self.values[f as usize].is_fault_effect())
                {
                    return V5::from_pair(good, good);
                }
                let faulty = match self.fault {
                    Some(InjectedFault {
                        site,
                        pin: Some(p),
                        stuck,
                    }) if site == id => {
                        let p = p as usize;
                        eval3(
                            kind,
                            fanin.iter().enumerate().map(|(k, &f)| {
                                if k == p {
                                    Some(stuck)
                                } else {
                                    self.values[f as usize].faulty()
                                }
                            }),
                        )
                    }
                    _ => eval3(
                        kind,
                        fanin.iter().map(|&f| self.values[f as usize].faulty()),
                    ),
                };
                V5::from_pair(good, faulty)
            }
        };
        // Output-stem fault overrides the faulty component.
        match self.fault {
            Some(InjectedFault {
                site,
                pin: None,
                stuck,
            }) if site == id => V5::from_pair(v.good(), Some(stuck)),
            _ => v,
        }
    }

    /// Performs full forward implication: re-evaluates every node in
    /// topological order under the current input assignment and injected
    /// fault.
    pub fn imply(&mut self) {
        let g = self.graph;
        match self.scope.take() {
            None => {
                for &id in g.topo() {
                    let id = id as usize;
                    self.values[id] = self.eval_node(NodeId::from_index(id));
                }
            }
            Some(mask) => {
                for &id in g.topo() {
                    let id = id as usize;
                    if mask[id] {
                        self.values[id] = self.eval_node(NodeId::from_index(id));
                    }
                }
                self.scope = Some(mask);
            }
        }
    }

    /// Incremental implication: re-evaluates only the fan-out cone of the
    /// primary input at position `index`, assuming every other node is
    /// already consistent. Equivalent to (and property-tested against) a
    /// full [`FiveValueSim::imply`] after a single input change — but
    /// orders of magnitude cheaper on large circuits, which is what makes
    /// PODEM fast.
    ///
    /// The walk drains a reusable [`LevelQueue`] (the same structure the
    /// PPSFP cone propagation uses): pending nodes bucketed by logic
    /// level, deduplicated by epoch stamp and drained in ascending level
    /// order, so every touched node is re-evaluated exactly once, after
    /// all of its fan-ins settled. No allocations once the buckets are
    /// warm.
    pub fn imply_from_input(&mut self, index: usize) {
        let scope = self.scope.take();
        self.imply_from_input_masked(index, scope.as_deref());
        self.scope = scope;
    }

    fn imply_from_input_masked(&mut self, index: usize, mask: Option<&[bool]>) {
        let g = self.graph;
        let source = g.inputs()[index] as usize;
        if mask.is_some_and(|m| !m[source]) {
            return;
        }
        let new_v = self.eval_node(NodeId::from_index(source));
        if new_v == self.values[source] {
            return;
        }
        self.values[source] = new_v;

        self.queue.begin(g.level(source));
        for &s in g.fanout(source) {
            let si = s as usize;
            if g.kind(si).is_combinational() && mask.is_none_or(|m| m[si]) {
                self.queue.push(s, g.level(si));
            }
        }
        self.drain_queue(mask);
    }

    /// Drains the pending levelized wave: re-evaluates each queued node
    /// after its fan-ins settled, queueing fan-outs of nodes whose value
    /// changed.
    fn drain_queue(&mut self, mask: Option<&[bool]>) {
        let g = self.graph;
        while let Some(bucket) = self.queue.take_bucket() {
            for &id in &bucket {
                let id = id as usize;
                let v = self.eval_node(NodeId::from_index(id));
                if v == self.values[id] {
                    continue;
                }
                self.values[id] = v;
                for &s in g.fanout(id) {
                    let si = s as usize;
                    if g.kind(si).is_combinational() && mask.is_none_or(|m| m[si]) {
                        self.queue.push(s, g.level(si));
                    }
                }
            }
            self.queue.restore(bucket);
        }
    }

    /// The composite value of `id` after the last [`FiveValueSim::imply`].
    pub fn value(&self, id: NodeId) -> V5 {
        self.values[id.index()]
    }

    /// Gates with a fault effect (`D`/`D̄`) on some fan-in and an unknown
    /// output — the frontier PODEM pushes towards the outputs.
    pub fn d_frontier(&self) -> Vec<NodeId> {
        let mut frontier = Vec::new();
        for &id in self.circuit.topo_order() {
            let node = self.circuit.node(id);
            if !node.kind().is_combinational() {
                continue;
            }
            if !self.values[id.index()].is_unknown() {
                continue;
            }
            if node
                .fanin()
                .iter()
                .any(|f| self.values[f.index()].is_fault_effect())
            {
                frontier.push(id);
            }
        }
        frontier
    }

    /// True if a fault effect has reached any primary output.
    pub fn fault_at_output(&self) -> bool {
        self.circuit
            .outputs()
            .iter()
            .any(|o| self.values[o.index()].is_fault_effect())
    }

    /// True if some node of the D-frontier still has an X-path to a primary
    /// output (a path of unknown-valued nodes). Without one, the search is
    /// hopeless and PODEM backtracks.
    pub fn x_path_to_output_exists(&self) -> bool {
        let mut reach = vec![false; self.circuit.num_nodes()];
        // seed with unknown outputs
        for &o in self.circuit.outputs() {
            if self.values[o.index()].is_unknown() {
                reach[o.index()] = true;
            }
        }
        // propagate reachability backwards through unknown nodes
        for &id in self.circuit.topo_order().iter().rev() {
            if !reach[id.index()] {
                continue;
            }
            for &f in self.circuit.node(id).fanin() {
                if self.values[f.index()].is_unknown() {
                    reach[f.index()] = true;
                }
            }
        }
        self.d_frontier()
            .iter()
            .any(|g| reach[g.index()] || self.circuit.fanout(*g).iter().any(|s| reach[s.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v5_pair_round_trip() {
        for v in [V5::Zero, V5::One, V5::D, V5::Dbar] {
            assert_eq!(V5::from_pair(v.good(), v.faulty()), v);
        }
        assert_eq!(V5::from_pair(None, Some(true)), V5::X);
    }

    #[test]
    fn fault_free_matches_naive() {
        let c17 = bist_netlist::iscas85::c17();
        let mut sim = FiveValueSim::new(&c17, None);
        for v in 0u32..32 {
            for i in 0..5 {
                sim.set_input(i, Some((v >> i) & 1 == 1));
            }
            sim.imply();
            let bits: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            let naive = crate::packed::naive_eval(&c17, &bits);
            for (idx, &expect) in naive.iter().enumerate().take(c17.num_nodes()) {
                let id = NodeId::from_index(idx);
                assert_eq!(sim.value(id).good(), Some(expect), "node {id} v={v}");
                assert_eq!(sim.value(id).faulty(), Some(expect));
            }
        }
    }

    #[test]
    fn partial_assignment_yields_x() {
        let c17 = bist_netlist::iscas85::c17();
        let mut sim = FiveValueSim::new(&c17, None);
        // Only G1 assigned: G10 = NAND(G1, G3) stays X when G1=1...
        sim.set_input(0, Some(true));
        sim.imply();
        let g10 = c17.find("G10").unwrap();
        assert_eq!(sim.value(g10), V5::X);
        // ...but G1=0 forces G10=1 (controlling value).
        sim.set_input(0, Some(false));
        sim.imply();
        assert_eq!(sim.value(g10), V5::One);
    }

    #[test]
    fn output_stem_fault_creates_d() {
        let c17 = bist_netlist::iscas85::c17();
        let g10 = c17.find("G10").unwrap();
        let mut sim = FiveValueSim::new(
            &c17,
            Some(InjectedFault {
                site: g10,
                pin: None,
                stuck: false,
            }),
        );
        // G1=0 forces G10=1 good; fault holds it 0 => D.
        sim.set_input(0, Some(false));
        sim.imply();
        assert_eq!(sim.value(g10), V5::D);
        assert!(!sim.d_frontier().is_empty());
    }

    #[test]
    fn pin_fault_only_affects_that_gate() {
        let c17 = bist_netlist::iscas85::c17();
        // G11 = NAND(G3, G6); fault G3-pin of G11 stuck-at-0 forces G11
        // faulty=1. Set G3=1, G6=1: good G11=0, faulty G11=1 => Dbar.
        let g11 = c17.find("G11").unwrap();
        let mut sim = FiveValueSim::new(
            &c17,
            Some(InjectedFault {
                site: g11,
                pin: Some(0),
                stuck: false,
            }),
        );
        sim.set_input(2, Some(true)); // G3
        sim.set_input(3, Some(true)); // G6
        sim.imply();
        assert_eq!(sim.value(g11), V5::Dbar);
        // The stem G3 itself is unaffected (branch fault).
        let g3 = c17.find("G3").unwrap();
        assert_eq!(sim.value(g3), V5::One);
        // G10 = NAND(G1, G3) sees the healthy G3.
        sim.set_input(0, Some(false));
        sim.imply();
        let g10 = c17.find("G10").unwrap();
        assert_eq!(sim.value(g10), V5::One);
    }

    #[test]
    fn detection_at_output() {
        let c17 = bist_netlist::iscas85::c17();
        let g22 = c17.find("G22").unwrap();
        let mut sim = FiveValueSim::new(
            &c17,
            Some(InjectedFault {
                site: g22,
                pin: None,
                stuck: false,
            }),
        );
        // drive G22 good to 1: G10=0 requires G1=G3=1.
        sim.set_input(0, Some(true));
        sim.set_input(2, Some(true));
        sim.imply();
        assert!(sim.fault_at_output());
    }

    #[test]
    fn x_path_check_sees_blockage() {
        let c17 = bist_netlist::iscas85::c17();
        let g10 = c17.find("G10").unwrap();
        let mut sim = FiveValueSim::new(
            &c17,
            Some(InjectedFault {
                site: g10,
                pin: None,
                stuck: false,
            }),
        );
        sim.set_input(0, Some(false)); // activates fault: G10 = D
        sim.imply();
        assert!(sim.x_path_to_output_exists());
    }
}
