//! Gate-level logic simulation engines for the LFSROM mixed-BIST
//! reproduction.
//!
//! Three engines, each matched to a consumer:
//!
//! * [`PackedSim`] — two-valued, 64-pattern bit-parallel simulation over a
//!   [`Circuit`](bist_netlist::Circuit). This is the workhorse under the
//!   PPSFP fault simulator (`bist-faultsim`).
//! * [`FiveValueSim`] — single-pattern five-valued (0, 1, X, D, D̄)
//!   simulation with fault injection, the engine under the PODEM ATPG
//!   (`bist-atpg`).
//! * [`SeqSim`] — cycle-accurate sequential simulation of netlists
//!   containing D flip-flops, used to *replay* synthesized LFSROM/mixed
//!   generators and prove they emit the target test sequence bit-exactly.
//!
//! Plus the [`Pattern`] / [`PatternBlock`] data types shared by every crate
//! that produces or consumes test stimuli.
//!
//! # Example
//!
//! ```
//! use bist_logicsim::{PackedSim, Pattern, PatternBlock};
//!
//! let c17 = bist_netlist::iscas85::c17();
//! let all_ones = Pattern::from_fn(5, |_| true);
//! let block = PatternBlock::pack(&c17, std::slice::from_ref(&all_ones));
//! let mut sim = PackedSim::new(&c17);
//! let outputs = sim.run(&block);
//! // c17 with all inputs high drives G22 high and G23 low.
//! assert_eq!(outputs[0] & 1, 1);
//! assert_eq!(outputs[1] & 1, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fivevalue;
mod packed;
mod pattern;
mod seq;

pub use fivevalue::{FiveValueSim, InjectedFault, V5};
pub use packed::{eval_pattern, naive_eval, PackedSim};
pub use pattern::{ParsePatternError, Pattern, PatternBlock};
pub use seq::SeqSim;
