use bist_netlist::{Circuit, GateKind, NodeId, SimGraph};

use crate::pattern::{Pattern, PatternBlock};

/// Two-valued, 64-pattern bit-parallel simulator.
///
/// Evaluates the whole circuit in topological order; node values are `u64`
/// words whose bit `j` is the node's value under pattern `j` of the current
/// [`PatternBlock`]. D flip-flop outputs are treated as externally supplied
/// state (default all-zero) — combinational test circuits have none, and
/// sequential generator replay uses [`SeqSim`](crate::SeqSim) instead.
///
/// # Example
///
/// ```
/// use bist_logicsim::{PackedSim, Pattern, PatternBlock};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let patterns: Vec<Pattern> = ["00000", "11111", "10101"]
///     .iter()
///     .map(|s| s.parse().unwrap())
///     .collect();
/// let block = PatternBlock::pack(&c17, &patterns);
/// let mut sim = PackedSim::new(&c17);
/// sim.run(&block);
/// let g22 = c17.find("G22").unwrap();
/// // bit j of the word = value of G22 under pattern j
/// let word = sim.value(g22);
/// assert_eq!(word & 0b001, 0); // all-zero inputs drive G22 low
/// assert_eq!(word & 0b010, 0b010); // all-one inputs drive G22 high
/// ```
#[derive(Debug)]
pub struct PackedSim<'c> {
    circuit: &'c Circuit,
    graph: &'c SimGraph,
    values: Vec<u64>,
    dff_state: Vec<u64>,
}

impl<'c> PackedSim<'c> {
    /// Creates a simulator bound to `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        PackedSim {
            circuit,
            graph: circuit.sim_graph(),
            values: vec![0; circuit.num_nodes()],
            dff_state: vec![0; circuit.num_nodes()],
        }
    }

    /// The circuit this simulator is bound to.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Simulates one packed block and returns the primary output words (in
    /// `circuit.outputs()` order).
    ///
    /// # Panics
    ///
    /// Panics if the block was packed for a circuit with a different input
    /// count.
    pub fn run(&mut self, block: &PatternBlock) -> Vec<u64> {
        assert_eq!(
            block.input_words().len(),
            self.circuit.inputs().len(),
            "pattern block width mismatch"
        );
        for (i, &pi) in self.circuit.inputs().iter().enumerate() {
            self.values[pi.index()] = block.input_word(i);
        }
        self.propagate();
        self.circuit
            .outputs()
            .iter()
            .map(|o| self.values[o.index()])
            .collect()
    }

    /// Re-evaluates all combinational nodes from the current input and DFF
    /// state words, straight off the CSR view — no per-gate buffers.
    fn propagate(&mut self) {
        let g = self.graph;
        for &id in g.topo() {
            let id = id as usize;
            match g.kind(id) {
                GateKind::Input => {}
                GateKind::Dff => self.values[id] = self.dff_state[id],
                _ => {
                    let v = g.eval_word(id, |f| self.values[f]);
                    self.values[id] = v;
                }
            }
        }
    }

    /// The value word of `id` after the last [`PackedSim::run`].
    pub fn value(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }

    /// All value words, indexed by [`NodeId::index`].
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Overrides the registered value word of a D flip-flop (used by
    /// sequential engines layered on top).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a DFF.
    pub fn set_dff_state(&mut self, id: NodeId, word: u64) {
        assert_eq!(
            self.circuit.node(id).kind(),
            GateKind::Dff,
            "set_dff_state on non-DFF node"
        );
        self.dff_state[id.index()] = word;
    }
}

/// Reference evaluator: simulates a single pattern with plain booleans.
///
/// Deliberately naive — used as the oracle in property tests of the packed
/// and five-valued engines. Returns the value of every node, indexed by
/// [`NodeId::index`]. DFF outputs evaluate to `false`.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the circuit's input count.
pub fn naive_eval(circuit: &Circuit, inputs: &[bool]) -> Vec<bool> {
    assert_eq!(inputs.len(), circuit.inputs().len(), "input width mismatch");
    let g = circuit.sim_graph();
    let mut values = vec![false; circuit.num_nodes()];
    for (i, &pi) in g.inputs().iter().enumerate() {
        values[pi as usize] = inputs[i];
    }
    for &id in g.topo() {
        let id = id as usize;
        match g.kind(id) {
            GateKind::Input | GateKind::Dff => {}
            _ => {
                let v = g.eval_bool(id, |f| values[f]);
                values[id] = v;
            }
        }
    }
    values
}

/// Convenience: simulates a single [`Pattern`] and returns the output bits.
pub fn eval_pattern(circuit: &Circuit, pattern: &Pattern) -> Vec<bool> {
    let values = naive_eval(circuit, &pattern.to_bits());
    circuit
        .outputs()
        .iter()
        .map(|o| values[o.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBlock;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_matches_naive_on_c17_exhaustively() {
        let c17 = bist_netlist::iscas85::c17();
        let patterns: Vec<Pattern> = (0u32..32)
            .map(|v| Pattern::from_fn(5, |i| (v >> i) & 1 == 1))
            .collect();
        let block = PatternBlock::pack(&c17, &patterns);
        let mut sim = PackedSim::new(&c17);
        sim.run(&block);
        for (j, p) in patterns.iter().enumerate() {
            let naive = naive_eval(&c17, &p.to_bits());
            for id in 0..c17.num_nodes() {
                let id = NodeId::from_index(id);
                let packed_bit = (sim.value(id) >> j) & 1 == 1;
                assert_eq!(packed_bit, naive[id.index()], "node {id} pattern {j}");
            }
        }
    }

    proptest! {
        #[test]
        fn packed_matches_naive_on_c432(seed in any::<u64>()) {
            let c = bist_netlist::iscas85::circuit("c432").unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let patterns: Vec<Pattern> =
                (0..16).map(|_| Pattern::random(&mut rng, 36)).collect();
            let block = PatternBlock::pack(&c, &patterns);
            let mut sim = PackedSim::new(&c);
            let outs = sim.run(&block);
            for (j, p) in patterns.iter().enumerate() {
                let expect = eval_pattern(&c, p);
                for (o, &word) in outs.iter().enumerate() {
                    prop_assert_eq!((word >> j) & 1 == 1, expect[o]);
                }
            }
        }
    }

    #[test]
    fn dff_state_is_respected() {
        use bist_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("reg");
        b.add_input("d").unwrap();
        b.add_gate("q", GateKind::Dff, &["d"]).unwrap();
        b.add_gate("y", GateKind::Not, &["q"]).unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        let mut sim = PackedSim::new(&c);
        let q = c.find("q").unwrap();
        sim.set_dff_state(q, 0b10);
        let block = PatternBlock::pack(&c, &[Pattern::zeros(1), Pattern::zeros(1)]);
        let outs = sim.run(&block);
        assert_eq!(outs[0] & 0b11, 0b01); // y = !q
    }

    #[test]
    #[should_panic(expected = "non-DFF")]
    fn dff_state_guard() {
        let c17 = bist_netlist::iscas85::c17();
        let mut sim = PackedSim::new(&c17);
        sim.set_dff_state(c17.inputs()[0], 0);
    }
}
