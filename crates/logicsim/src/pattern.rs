use std::fmt;
use std::str::FromStr;

use bist_netlist::Circuit;
use rand::Rng;

/// A single test pattern: an ordered vector of input bits.
///
/// Bit `i` drives primary input `circuit.inputs()[i]`. Patterns are the
/// currency of the whole workspace: the LFSR emits them, the fault
/// simulator grades them, the ATPG produces them and the LFSROM synthesizer
/// encodes them into hardware.
///
/// # Example
///
/// ```
/// use bist_logicsim::Pattern;
///
/// let p: Pattern = "10110".parse()?;
/// assert_eq!(p.len(), 5);
/// assert!(p.get(0));
/// assert!(!p.get(1));
/// assert_eq!(p.to_string(), "10110");
/// # Ok::<(), bist_logicsim::ParsePatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    words: Vec<u64>,
    len: usize,
}

impl Pattern {
    /// All-zero pattern of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Pattern {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a pattern by evaluating `f` at every bit position.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut p = Pattern::zeros(len);
        for i in 0..len {
            if f(i) {
                p.set(i, true);
            }
        }
        p
    }

    /// Builds a pattern from a bit slice (`bits[i]` becomes bit `i`).
    pub fn from_bits(bits: &[bool]) -> Self {
        Pattern::from_fn(bits.len(), |i| bits[i])
    }

    /// Uniformly random pattern of `len` bits.
    pub fn random(rng: &mut impl Rng, len: usize) -> Self {
        let mut p = Pattern::zeros(len);
        for w in &mut p.words {
            *w = rng.gen();
        }
        p.mask_tail();
        p
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the pattern has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of bits set to 1.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the bits, LSB (input 0) first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The bits as a `Vec<bool>`.
    pub fn to_bits(&self) -> Vec<bool> {
        self.iter().collect()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            f.write_str(if self.get(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`Pattern`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    offset: usize,
    found: char,
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid pattern character `{}` at offset {}",
            self.found, self.offset
        )
    }
}

impl std::error::Error for ParsePatternError {}

impl FromStr for Pattern {
    type Err = ParsePatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = Pattern::zeros(s.chars().count());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => {}
                '1' => p.set(i, true),
                found => return Err(ParsePatternError { offset: i, found }),
            }
        }
        Ok(p)
    }
}

/// Up to 64 patterns packed bit-parallel: one `u64` word per primary input,
/// bit `j` of each word belonging to pattern `j`.
///
/// This is the input format of [`PackedSim`](crate::PackedSim) and of the
/// PPSFP fault simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternBlock {
    words: Vec<u64>,
    count: usize,
}

impl PatternBlock {
    /// Packs up to 64 patterns for `circuit` (the pattern width must equal
    /// the circuit's input count).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 patterns are supplied, if `patterns` is
    /// empty, or if any pattern width mismatches the circuit.
    pub fn pack(circuit: &Circuit, patterns: &[Pattern]) -> Self {
        let mut block = PatternBlock {
            words: Vec::new(),
            count: 0,
        };
        block.pack_into(circuit, patterns);
        block
    }

    /// Re-packs `patterns` into this block, reusing its word buffer — the
    /// allocation-free form of [`PatternBlock::pack`] for engines that pack
    /// one block per 64-pattern chunk of a long sequence.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PatternBlock::pack`].
    pub fn pack_into(&mut self, circuit: &Circuit, patterns: &[Pattern]) {
        assert!(!patterns.is_empty(), "cannot pack zero patterns");
        assert!(patterns.len() <= 64, "a block holds at most 64 patterns");
        let width = circuit.inputs().len();
        self.words.clear();
        self.words.resize(width, 0);
        for (j, p) in patterns.iter().enumerate() {
            assert_eq!(
                p.len(),
                width,
                "pattern width {} does not match circuit inputs {}",
                p.len(),
                width
            );
            for (i, word) in self.words.iter_mut().enumerate() {
                if p.get(i) {
                    *word |= 1 << j;
                }
            }
        }
        self.count = patterns.len();
    }

    /// Number of patterns in the block (1..=64).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Bit-mask with one bit set per valid pattern slot.
    pub fn valid_mask(&self) -> u64 {
        if self.count == 64 {
            !0
        } else {
            (1u64 << self.count) - 1
        }
    }

    /// The packed word for primary input `i`.
    pub fn input_word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// All packed words, indexed by primary input position.
    pub fn input_words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn set_get_round_trip() {
        let mut p = Pattern::zeros(130);
        p.set(0, true);
        p.set(64, true);
        p.set(129, true);
        assert!(p.get(0) && p.get(64) && p.get(129));
        assert!(!p.get(1) && !p.get(63) && !p.get(128));
        assert_eq!(p.count_ones(), 3);
    }

    #[test]
    fn parse_display_round_trip() {
        let s = "0110010111";
        let p: Pattern = s.parse().unwrap();
        assert_eq!(p.to_string(), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        let e = "01x".parse::<Pattern>().unwrap_err();
        assert_eq!(e.to_string(), "invalid pattern character `x` at offset 2");
    }

    #[test]
    fn random_respects_width() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Pattern::random(&mut rng, 70);
        assert_eq!(p.len(), 70);
        // tail bits beyond len are zero: re-set them and compare
        let q = Pattern::from_fn(70, |i| p.get(i));
        assert_eq!(p, q);
    }

    #[test]
    fn pack_transposes_correctly() {
        let c17 = bist_netlist::iscas85::c17();
        let p0: Pattern = "10000".parse().unwrap();
        let p1: Pattern = "01000".parse().unwrap();
        let block = PatternBlock::pack(&c17, &[p0, p1]);
        assert_eq!(block.count(), 2);
        assert_eq!(block.input_word(0), 0b01); // input 0 high in pattern 0
        assert_eq!(block.input_word(1), 0b10); // input 1 high in pattern 1
        assert_eq!(block.input_word(2), 0);
        assert_eq!(block.valid_mask(), 0b11);
    }

    #[test]
    fn pack_into_reuses_buffer_and_matches_pack() {
        let c17 = bist_netlist::iscas85::c17();
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<Pattern> = (0..64).map(|_| Pattern::random(&mut rng, 5)).collect();
        let b: Vec<Pattern> = (0..17).map(|_| Pattern::random(&mut rng, 5)).collect();
        let mut reused = PatternBlock::pack(&c17, &a);
        reused.pack_into(&c17, &b);
        assert_eq!(reused, PatternBlock::pack(&c17, &b));
        assert_eq!(reused.count(), 17);
        assert_eq!(reused.valid_mask(), (1u64 << 17) - 1);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn pack_rejects_oversize_block() {
        let c17 = bist_netlist::iscas85::c17();
        let ps: Vec<Pattern> = (0..65).map(|_| Pattern::zeros(5)).collect();
        PatternBlock::pack(&c17, &ps);
    }

    #[test]
    fn from_bits_matches_iter() {
        let bits = vec![true, false, true, true];
        let p = Pattern::from_bits(&bits);
        assert_eq!(p.to_bits(), bits);
    }
}
