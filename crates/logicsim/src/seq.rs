use bist_netlist::{Circuit, GateKind, NodeId, SimGraph};

use crate::pattern::Pattern;

/// Cycle-accurate sequential simulator for netlists containing D
/// flip-flops.
///
/// Used to *replay* synthesized LFSROM / mixed BIST generators: the
/// generator hardware is emitted as a structural [`Circuit`] whose flip-flop
/// outputs are the pattern bits, and this engine proves — cycle by cycle —
/// that the hardware reproduces the intended test sequence.
///
/// Clocking model: [`SeqSim::step`] evaluates the combinational logic with
/// the current register state and inputs, samples the primary outputs, then
/// clocks every flip-flop (`state ← D`).
///
/// # Example
///
/// ```
/// use bist_netlist::{CircuitBuilder, GateKind};
/// use bist_logicsim::SeqSim;
///
/// # fn main() -> Result<(), bist_netlist::BuildCircuitError> {
/// // a 1-bit toggle: q <= NOT(q)
/// let mut b = CircuitBuilder::new("toggle");
/// b.add_input("en")?; // unused enable, circuits need >= 1 input
/// b.add_gate("q", GateKind::Dff, &["d"])?;
/// b.add_gate("d", GateKind::Not, &["q"])?;
/// b.mark_output("q")?;
/// let c = b.build()?;
///
/// let mut sim = SeqSim::new(&c);
/// assert_eq!(sim.step(&[false]), vec![false]);
/// assert_eq!(sim.step(&[false]), vec![true]);
/// assert_eq!(sim.step(&[false]), vec![false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SeqSim<'c> {
    circuit: &'c Circuit,
    graph: &'c SimGraph,
    /// Registered value per node (meaningful only at DFF indices).
    state: Vec<bool>,
    /// Combinational values from the latest evaluation.
    values: Vec<bool>,
    dffs: Vec<NodeId>,
}

impl<'c> SeqSim<'c> {
    /// Creates a simulator with all flip-flops reset to 0.
    pub fn new(circuit: &'c Circuit) -> Self {
        let dffs = circuit
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind() == GateKind::Dff)
            .map(|(i, _)| NodeId::from_index(i))
            .collect();
        SeqSim {
            circuit,
            graph: circuit.sim_graph(),
            state: vec![false; circuit.num_nodes()],
            values: vec![false; circuit.num_nodes()],
            dffs,
        }
    }

    /// The circuit this simulator is bound to.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// All flip-flop nodes, in declaration order.
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Resets every flip-flop to 0.
    pub fn reset(&mut self) {
        self.state.fill(false);
    }

    /// Sets the registered value of one flip-flop (e.g. an LFSR seed).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a DFF.
    pub fn set_state(&mut self, id: NodeId, value: bool) {
        assert_eq!(
            self.circuit.node(id).kind(),
            GateKind::Dff,
            "set_state on non-DFF node"
        );
        self.state[id.index()] = value;
    }

    /// Reads the registered value of one flip-flop.
    pub fn state(&self, id: NodeId) -> bool {
        self.state[id.index()]
    }

    /// Evaluates combinational logic for the current state and `inputs`,
    /// returns the primary output values, then clocks the flip-flops.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the circuit's input count.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        let outputs = self.evaluate(inputs);
        // clock: state <= D
        for q in &self.dffs {
            let d = self.graph.fanin(q.index())[0] as usize;
            self.state[q.index()] = self.values[d];
        }
        outputs
    }

    /// Evaluates combinational logic without clocking (a "peek" at the
    /// current cycle). Returns the primary output values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the circuit's input count.
    pub fn evaluate(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.circuit.inputs().len(),
            "input width mismatch"
        );
        let g = self.graph;
        for (i, &pi) in g.inputs().iter().enumerate() {
            self.values[pi as usize] = inputs[i];
        }
        for &id in g.topo() {
            let id = id as usize;
            match g.kind(id) {
                GateKind::Input => {}
                GateKind::Dff => self.values[id] = self.state[id],
                _ => {
                    let v = g.eval_bool(id, |f| self.values[f]);
                    self.values[id] = v;
                }
            }
        }
        self.circuit
            .outputs()
            .iter()
            .map(|o| self.values[o.index()])
            .collect()
    }

    /// The combinational value of any node after the latest
    /// [`SeqSim::step`] / [`SeqSim::evaluate`].
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }

    /// Runs `cycles` steps with constant `inputs`, collecting the values of
    /// `watch` nodes *before* each clock edge as one [`Pattern`] per cycle.
    ///
    /// This is how generator replay extracts the emitted test sequence: the
    /// watched nodes are the generator's pattern register bits.
    pub fn trace(&mut self, inputs: &[bool], watch: &[NodeId], cycles: usize) -> Vec<Pattern> {
        let mut out = Vec::with_capacity(cycles);
        for _ in 0..cycles {
            self.evaluate(inputs);
            out.push(Pattern::from_fn(watch.len(), |i| self.value(watch[i])));
            self.step(inputs);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::CircuitBuilder;

    /// 3-bit one-hot rotator: q0 -> q1 -> q2 -> q0.
    fn rotator() -> Circuit {
        let mut b = CircuitBuilder::new("rot");
        b.add_input("en").unwrap();
        b.add_gate("q0", GateKind::Dff, &["q2"]).unwrap();
        b.add_gate("q1", GateKind::Dff, &["q0"]).unwrap();
        b.add_gate("q2", GateKind::Dff, &["q1"]).unwrap();
        b.mark_output("q2").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rotation_cycles_state() {
        let c = rotator();
        let mut sim = SeqSim::new(&c);
        let q0 = c.find("q0").unwrap();
        sim.set_state(q0, true);
        let outs: Vec<bool> = (0..6).map(|_| sim.step(&[false])[0]).collect();
        // q2 sees the 1 after two clocks, then every three.
        assert_eq!(outs, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn trace_captures_pre_clock_values() {
        let c = rotator();
        let mut sim = SeqSim::new(&c);
        let q0 = c.find("q0").unwrap();
        let q1 = c.find("q1").unwrap();
        let q2 = c.find("q2").unwrap();
        sim.set_state(q0, true);
        let trace = sim.trace(&[false], &[q0, q1, q2], 3);
        assert_eq!(trace[0].to_string(), "100");
        assert_eq!(trace[1].to_string(), "010");
        assert_eq!(trace[2].to_string(), "001");
    }

    #[test]
    fn evaluate_does_not_clock() {
        let c = rotator();
        let mut sim = SeqSim::new(&c);
        let q0 = c.find("q0").unwrap();
        sim.set_state(q0, true);
        sim.evaluate(&[false]);
        sim.evaluate(&[false]);
        assert!(sim.state(q0)); // still set: no clock happened
    }

    #[test]
    fn reset_clears_state() {
        let c = rotator();
        let mut sim = SeqSim::new(&c);
        let q0 = c.find("q0").unwrap();
        sim.set_state(q0, true);
        sim.reset();
        assert!(!sim.state(q0));
    }
}
