//! Reader and writer for the ISCAS-85 `.bench` netlist format.
//!
//! The format (Brglez & Fujiwara, ISCAS 1985) is line-oriented:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G22)
//! G10 = NAND(G1, G3)
//! G22 = NOR(G10, G16)
//! ```
//!
//! Parsing a file that was produced by [`write()`] round-trips exactly, and
//! real ISCAS-85 files from the public distribution parse unchanged, so the
//! synthetic substrate in [`iscas85`](crate::iscas85) can be swapped for the
//! original netlists without touching downstream code.

use std::str::FromStr;

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::error::{BuildCircuitError, ParseBenchError};
use crate::gate::GateKind;

/// Where each name of a parsed `.bench` source first appears.
///
/// Built as a by-product of [`parse_with_source_map`]; the declaration
/// and reference lines let diagnostics — parse errors here, lint
/// findings downstream — point at a concrete source line even for
/// defects the builder can only detect at `build` time (forward
/// references are legal, so a name's declaration may come after its
/// first use).
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    // name lookup only — never iterated, so map order cannot leak into
    // any output
    #[allow(clippy::disallowed_types)]
    decl_lines: std::collections::HashMap<String, usize>,
    #[allow(clippy::disallowed_types)]
    ref_lines: std::collections::HashMap<String, usize>,
}

impl SourceMap {
    /// The 1-based line where `name` is first declared (`INPUT(name)` or
    /// `name = KIND(...)`).
    pub fn decl_line(&self, name: &str) -> Option<usize> {
        self.decl_lines.get(name).copied()
    }

    /// The 1-based line where `name` is first referenced (as a fan-in or
    /// in an `OUTPUT(name)` marking).
    pub fn ref_line(&self, name: &str) -> Option<usize> {
        self.ref_lines.get(name).copied()
    }

    /// The best source line for a diagnostic about `name`: its
    /// declaration if one exists, otherwise its first reference.
    pub fn line_for(&self, name: &str) -> Option<usize> {
        self.decl_line(name).or_else(|| self.ref_line(name))
    }

    /// The source line a builder-time defect should be attributed to:
    /// the declaring line for defects about a declared node, the first
    /// referencing line for defects about a missing one, `0` for
    /// whole-netlist defects (missing I/O) that no single line owns.
    pub fn attribute(&self, error: &BuildCircuitError) -> usize {
        match error {
            BuildCircuitError::UnknownName(n) => self.ref_line(n).unwrap_or_default(),
            BuildCircuitError::DuplicateName(n)
            | BuildCircuitError::CombinationalCycle(n)
            | BuildCircuitError::BadFanin { name: n, .. } => self.line_for(n).unwrap_or_default(),
            BuildCircuitError::DuplicateOutput(n) => self.ref_line(n).unwrap_or_default(),
            BuildCircuitError::NoInputs | BuildCircuitError::NoOutputs => 0,
        }
    }
}

/// Parses `.bench` source text into a [`Circuit`] named `name`.
///
/// # Errors
///
/// Returns [`ParseBenchError::Syntax`] for malformed lines and
/// [`ParseBenchError::Build`] when the declarations do not form a valid
/// netlist (unknown names, cycles, …).
///
/// # Example
///
/// ```
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = NAND(a, b)
/// ";
/// let c = bist_netlist::bench::parse("tiny", src)?;
/// assert_eq!(c.num_gates(), 1);
/// # Ok::<(), bist_netlist::ParseBenchError>(())
/// ```
pub fn parse(name: &str, source: &str) -> Result<Circuit, ParseBenchError> {
    parse_with_source_map(name, source).map(|(circuit, _)| circuit)
}

/// [`parse`], additionally returning the [`SourceMap`] of declaration
/// and reference lines — the span substrate the `bist-lint` analyzer
/// points its diagnostics with.
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_with_source_map(
    name: &str,
    source: &str,
) -> Result<(Circuit, SourceMap), ParseBenchError> {
    let mut builder = CircuitBuilder::new(name);
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut map = SourceMap::default();

    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let syntax = |message: String| ParseBenchError::Syntax {
            line: lineno + 1,
            message,
        };
        let build = |error| ParseBenchError::Build {
            line: lineno + 1,
            error,
        };

        if let Some(rest) = strip_call(line, "INPUT") {
            builder.add_input(rest.trim()).map_err(build)?;
            map.decl_lines
                .entry(rest.trim().to_owned())
                .or_insert(lineno + 1);
        } else if let Some(rest) = strip_call(line, "OUTPUT") {
            outputs.push((rest.trim().to_owned(), lineno + 1));
        } else if let Some(eq) = line.find('=') {
            let target = line[..eq].trim();
            if target.is_empty() {
                return Err(syntax("missing gate name before `=`".into()));
            }
            let rhs = line[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| syntax(format!("expected `KIND(...)` after `=`, got `{rhs}`")))?;
            if !rhs.ends_with(')') {
                return Err(syntax(format!("unterminated gate call `{rhs}`")));
            }
            let kind_str = rhs[..open].trim();
            let kind = GateKind::from_str(kind_str).map_err(|e| syntax(e.to_string()))?;
            if kind == GateKind::Input {
                return Err(syntax("INPUT cannot appear on the right of `=`".into()));
            }
            let args = &rhs[open + 1..rhs.len() - 1];
            let fanin: Vec<&str> = if args.trim().is_empty() {
                Vec::new()
            } else {
                args.split(',').map(str::trim).collect()
            };
            if fanin.iter().any(|f| f.is_empty()) {
                return Err(syntax(format!("empty fan-in name in `{rhs}`")));
            }
            builder.add_gate(target, kind, &fanin).map_err(build)?;
            map.decl_lines
                .entry(target.to_owned())
                .or_insert(lineno + 1);
            for f in &fanin {
                map.ref_lines.entry((*f).to_owned()).or_insert(lineno + 1);
            }
        } else {
            return Err(syntax(format!("unrecognized declaration `{line}`")));
        }
    }

    for (o, line) in &outputs {
        builder
            .mark_output(o)
            .map_err(|error| ParseBenchError::Build { line: *line, error })?;
        map.ref_lines.entry(o.clone()).or_insert(*line);
    }
    let circuit = builder.build().map_err(|error| ParseBenchError::Build {
        line: map.attribute(&error),
        error,
    })?;
    Ok((circuit, map))
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

/// Serializes a [`Circuit`] to `.bench` source text.
///
/// The output parses back (see [`parse`]) into a circuit with identical
/// structure, names, and I/O ordering.
///
/// # Example
///
/// ```
/// let c17 = bist_netlist::iscas85::c17();
/// let text = bist_netlist::bench::write(&c17);
/// let back = bist_netlist::bench::parse("c17", &text)?;
/// assert_eq!(back.num_gates(), c17.num_gates());
/// # Ok::<(), bist_netlist::ParseBenchError>(())
/// ```
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", circuit.name()));
    out.push_str(&format!(
        "# {} inputs, {} outputs, {} gates\n",
        circuit.inputs().len(),
        circuit.outputs().len(),
        circuit.num_gates()
    ));
    for &i in circuit.inputs() {
        out.push_str(&format!("INPUT({})\n", circuit.node(i).name()));
    }
    for &o in circuit.outputs() {
        out.push_str(&format!("OUTPUT({})\n", circuit.node(o).name()));
    }
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        if node.kind() == GateKind::Input {
            continue;
        }
        let fanin: Vec<&str> = node
            .fanin()
            .iter()
            .map(|f| circuit.node(*f).name())
            .collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            node.name(),
            node.kind().bench_keyword(),
            fanin.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
# a comment
INPUT(a)
INPUT(b)  # trailing comment
OUTPUT(y)
mid = NOR(a, b)
y = NOT(mid)
";

    #[test]
    fn parses_sample() {
        let c = parse("s", SAMPLE).expect("sample parses");
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.num_gates(), 2);
        let mid = c.find("mid").expect("mid declared");
        assert_eq!(c.node(mid).kind(), GateKind::Nor);
    }

    #[test]
    fn round_trips() {
        let c = parse("s", SAMPLE).expect("sample parses");
        let text = write(&c);
        let c2 = parse("s", &text).expect("serialized text parses");
        assert_eq!(c.num_nodes(), c2.num_nodes());
        assert_eq!(c.inputs().len(), c2.inputs().len());
        for (a, b) in c.inputs().iter().zip(c2.inputs()) {
            assert_eq!(c.node(*a).name(), c2.node(*b).name());
        }
        // same structure under name lookup
        for n in c.nodes() {
            let id2 = c2.find(n.name()).expect("name survives round trip");
            assert_eq!(c2.node(id2).kind(), n.kind());
        }
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse("s", "INPUT(a)\nOUTPUT(a)\nwhat is this").unwrap_err();
        assert!(
            matches!(err, ParseBenchError::Syntax { line: 3, .. }),
            "expected a line-3 syntax error, got {err}"
        );
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn unknown_gate_kind_is_syntax_error() {
        let err = parse("s", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 3, .. }));
    }

    #[test]
    fn build_errors_carry_the_offending_line() {
        let err = parse("s", "INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)").unwrap_err();
        assert!(
            matches!(err, ParseBenchError::Build { line: 3, .. }),
            "expected a line-3 build error, got {err}"
        );
        let err = parse("s", "INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)").unwrap_err();
        assert!(
            matches!(err, ParseBenchError::Build { line: 2, .. }),
            "expected a line-2 build error, got {err}"
        );
    }

    #[test]
    fn source_map_records_first_lines() {
        let (_, map) = parse_with_source_map("s", SAMPLE).expect("sample parses");
        assert_eq!(map.decl_line("mid"), Some(6));
        assert_eq!(map.ref_line("mid"), Some(7));
        assert_eq!(map.decl_line("a"), Some(3));
        assert_eq!(map.ref_line("a"), Some(6));
        // OUTPUT(y) references `y` before its declaration; line_for prefers
        // the declaration
        assert_eq!(map.ref_line("y"), Some(5));
        assert_eq!(map.line_for("y"), Some(7));
        assert_eq!(map.line_for("ghost"), None);
    }

    #[test]
    fn source_map_attributes_every_build_defect() {
        let (_, map) = parse_with_source_map("s", SAMPLE).expect("sample parses");
        use crate::BuildCircuitError as E;
        assert_eq!(map.attribute(&E::DuplicateName("mid".into())), 6);
        assert_eq!(map.attribute(&E::UnknownName("mid".into())), 7);
        assert_eq!(map.attribute(&E::UnknownName("ghost".into())), 0);
        assert_eq!(
            map.attribute(&E::BadFanin {
                name: "y".into(),
                kind: "NOT".into(),
                got: 2
            }),
            7
        );
        assert_eq!(map.attribute(&E::CombinationalCycle("mid".into())), 6);
        assert_eq!(map.attribute(&E::DuplicateOutput("y".into())), 5);
        assert_eq!(map.attribute(&E::NoInputs), 0);
        assert_eq!(map.attribute(&E::NoOutputs), 0);
    }

    #[test]
    fn whole_netlist_errors_use_line_zero() {
        // no primary inputs: not attributable to any one declaration
        let err = parse("s", "OUTPUT(y)\ny = AND(y2, y3)\ny2 = NOT(y)\ny3 = NOT(y2)").unwrap_err();
        assert!(
            matches!(err, ParseBenchError::Build { line: 0, .. }),
            "expected a whole-netlist error, got {err}"
        );
        assert_eq!(err.line(), 0);
    }

    #[test]
    fn accepts_buff_alias() {
        let c = parse("s", "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)").expect("BUFF is an alias");
        let y = c.find("y").expect("y declared");
        assert_eq!(c.node(y).kind(), GateKind::Buf);
    }
}
