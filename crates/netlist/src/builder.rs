// determinism-vetted: the builder's name index is lookup-only (nodes are
// stored and emitted in declaration order), never iterated
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

use crate::circuit::{Circuit, Node, NodeId};
use crate::error::BuildCircuitError;
use crate::gate::GateKind;

/// Incremental constructor for [`Circuit`].
///
/// Nodes may be declared in any order; fan-in references are resolved and
/// the whole structure validated (arities, acyclicity, output sanity) when
/// [`CircuitBuilder::build`] is called.
///
/// # Example
///
/// ```
/// use bist_netlist::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), bist_netlist::BuildCircuitError> {
/// let mut b = CircuitBuilder::new("mux");
/// b.add_input("s")?;
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("ns", GateKind::Not, &["s"])?;
/// b.add_gate("t0", GateKind::And, &["ns", "a"])?;
/// b.add_gate("t1", GateKind::And, &["s", "b"])?;
/// b.add_gate("y", GateKind::Or, &["t0", "t1"])?;
/// b.mark_output("y")?;
/// let mux = b.build()?;
/// assert_eq!(mux.depth(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    nodes: Vec<PendingNode>,
    #[allow(clippy::disallowed_types)]
    name_index: HashMap<String, usize>,
    outputs: Vec<String>,
}

#[derive(Debug, Clone)]
struct PendingNode {
    name: String,
    kind: GateKind,
    fanin_names: Vec<String>,
}

impl CircuitBuilder {
    /// Creates an empty builder for a circuit called `name`.
    #[allow(clippy::disallowed_types)]
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            nodes: Vec::new(),
            name_index: HashMap::new(),
            outputs: Vec::new(),
        }
    }

    fn declare(
        &mut self,
        name: &str,
        kind: GateKind,
        fanin: &[&str],
    ) -> Result<NodeId, BuildCircuitError> {
        if self.name_index.contains_key(name) {
            return Err(BuildCircuitError::DuplicateName(name.to_owned()));
        }
        let (lo, hi) = kind.fanin_range();
        if fanin.len() < lo || fanin.len() > hi {
            return Err(BuildCircuitError::BadFanin {
                name: name.to_owned(),
                kind: kind.to_string(),
                got: fanin.len(),
            });
        }
        let idx = self.nodes.len();
        self.name_index.insert(name.to_owned(), idx);
        self.nodes.push(PendingNode {
            name: name.to_owned(),
            kind,
            fanin_names: fanin.iter().map(|s| (*s).to_owned()).collect(),
        });
        Ok(NodeId(idx as u32))
    }

    /// Declares a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError::DuplicateName`] if the name is taken.
    pub fn add_input(&mut self, name: &str) -> Result<NodeId, BuildCircuitError> {
        self.declare(name, GateKind::Input, &[])
    }

    /// Declares a gate, constant or flip-flop with the given fan-in names.
    /// Fan-ins may be declared later; they are resolved at
    /// [`CircuitBuilder::build`] time.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError::DuplicateName`] or
    /// [`BuildCircuitError::BadFanin`].
    pub fn add_gate(
        &mut self,
        name: &str,
        kind: GateKind,
        fanin: &[&str],
    ) -> Result<NodeId, BuildCircuitError> {
        self.declare(name, kind, fanin)
    }

    /// Marks a declared (or to-be-declared) node as a primary output.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError::DuplicateOutput`] if already marked.
    pub fn mark_output(&mut self, name: &str) -> Result<(), BuildCircuitError> {
        if self.outputs.iter().any(|o| o == name) {
            return Err(BuildCircuitError::DuplicateOutput(name.to_owned()));
        }
        self.outputs.push(name.to_owned());
        Ok(())
    }

    /// Number of nodes declared so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no node has been declared yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if `name` has already been declared.
    pub fn contains(&self, name: &str) -> bool {
        self.name_index.contains_key(name)
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// * [`BuildCircuitError::UnknownName`] — a fan-in or output was never
    ///   declared,
    /// * [`BuildCircuitError::CombinationalCycle`] — the combinational part
    ///   is cyclic (cycles through flip-flops are fine),
    /// * [`BuildCircuitError::NoInputs`] / [`BuildCircuitError::NoOutputs`].
    pub fn build(self) -> Result<Circuit, BuildCircuitError> {
        let CircuitBuilder {
            name,
            nodes: pending,
            name_index,
            outputs,
        } = self;

        let mut nodes = Vec::with_capacity(pending.len());
        for p in &pending {
            let mut fanin = Vec::with_capacity(p.fanin_names.len());
            for f in &p.fanin_names {
                let idx = name_index
                    .get(f)
                    .ok_or_else(|| BuildCircuitError::UnknownName(f.clone()))?;
                fanin.push(NodeId(*idx as u32));
            }
            nodes.push(Node {
                name: p.name.clone(),
                kind: p.kind,
                fanin,
            });
        }

        let mut out_ids = Vec::with_capacity(outputs.len());
        let mut is_output = vec![false; nodes.len()];
        for o in &outputs {
            let idx = name_index
                .get(o)
                .ok_or_else(|| BuildCircuitError::UnknownName(o.clone()))?;
            out_ids.push(NodeId(*idx as u32));
            is_output[*idx] = true;
        }

        let inputs: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == GateKind::Input)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        if inputs.is_empty() {
            return Err(BuildCircuitError::NoInputs);
        }
        if out_ids.is_empty() {
            return Err(BuildCircuitError::NoOutputs);
        }

        // Fan-out lists. A consumer appears once per pin it connects.
        let mut fanout: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            for f in &n.fanin {
                fanout[f.index()].push(NodeId(i as u32));
            }
        }

        // Kahn topological sort of the combinational graph. Flip-flop
        // outputs are sources; their D pins do not create ordering edges.
        let mut indeg: Vec<usize> = nodes
            .iter()
            .map(|n| if n.kind.is_source() { 0 } else { n.fanin.len() })
            .collect();
        let mut queue: Vec<NodeId> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(nodes.len());
        let mut level = vec![0u32; nodes.len()];
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            topo.push(id);
            for &consumer in &fanout[id.index()] {
                if nodes[consumer.index()].kind.is_source() {
                    continue; // edge into a DFF D pin: sequential, not ordering
                }
                level[consumer.index()] = level[consumer.index()].max(level[id.index()] + 1);
                indeg[consumer.index()] -= 1;
                if indeg[consumer.index()] == 0 {
                    queue.push(consumer);
                }
            }
        }
        if topo.len() != nodes.len() {
            let mut seen = vec![false; nodes.len()];
            for id in &topo {
                seen[id.index()] = true;
            }
            let culprit = nodes
                .iter()
                .enumerate()
                .find(|(i, _)| !seen[*i])
                .map(|(_, n)| n.name.clone())
                .unwrap_or_default();
            return Err(BuildCircuitError::CombinationalCycle(culprit));
        }

        let name_index = name_index
            .into_iter()
            .map(|(k, v)| (k, NodeId(v as u32)))
            .collect();

        Ok(Circuit {
            name,
            nodes,
            inputs,
            outputs: out_ids,
            fanout,
            topo,
            level,
            name_index,
            is_output,
            sim: std::sync::OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_names() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").expect("fresh input name");
        assert_eq!(
            b.add_input("a"),
            Err(BuildCircuitError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn rejects_unknown_fanin() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").expect("fresh input name");
        b.add_gate("g", GateKind::And, &["a", "ghost"])
            .expect("valid gate");
        b.mark_output("g").expect("node exists");
        assert_eq!(
            b.build().unwrap_err(),
            BuildCircuitError::UnknownName("ghost".into())
        );
    }

    #[test]
    fn rejects_bad_arity() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").expect("fresh input name");
        let err = b.add_gate("g", GateKind::Not, &["a", "a"]).unwrap_err();
        assert!(matches!(err, BuildCircuitError::BadFanin { .. }));
    }

    #[test]
    fn rejects_combinational_cycle() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").expect("fresh input name");
        b.add_gate("g1", GateKind::And, &["a", "g2"])
            .expect("valid gate");
        b.add_gate("g2", GateKind::Not, &["g1"])
            .expect("valid gate");
        b.mark_output("g2").expect("node exists");
        assert!(matches!(
            b.build().unwrap_err(),
            BuildCircuitError::CombinationalCycle(_)
        ));
    }

    #[test]
    fn allows_cycles_through_dffs() {
        // Classic feedback register: q = DFF(d), d = NOT(q).
        let mut b = CircuitBuilder::new("toggle");
        b.add_input("unused").expect("fresh input name");
        b.add_gate("q", GateKind::Dff, &["d"]).expect("valid gate");
        b.add_gate("d", GateKind::Not, &["q"]).expect("valid gate");
        b.mark_output("q").expect("node exists");
        let c = b.build().expect("valid netlist");
        assert_eq!(c.num_dffs(), 1);
    }

    #[test]
    fn rejects_empty_io() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").expect("fresh input name");
        assert_eq!(b.build().unwrap_err(), BuildCircuitError::NoOutputs);

        let b = CircuitBuilder::new("t");
        assert_eq!(b.build().unwrap_err(), BuildCircuitError::NoInputs);
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = CircuitBuilder::new("t");
        b.add_gate("g", GateKind::Buf, &["a"]).expect("valid gate"); // `a` declared later
        b.add_input("a").expect("fresh input name");
        b.mark_output("g").expect("node exists");
        let c = b.build().expect("valid netlist");
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn duplicate_output_rejected() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").expect("fresh input name");
        b.mark_output("a").expect("node exists");
        assert_eq!(
            b.mark_output("a"),
            Err(BuildCircuitError::DuplicateOutput("a".into()))
        );
    }
}
