// determinism-vetted: the circuit's name index is lookup-only (node
// order lives in `nodes`/`topo`), never iterated
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use crate::gate::GateKind;
use crate::simgraph::SimGraph;
use crate::stats::CircuitStats;

/// Compact identifier of a node inside one [`Circuit`].
///
/// Node ids are dense (`0..circuit.num_nodes()`), so downstream crates index
/// per-node side tables with them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// Intended for side-table iteration in downstream crates; indices must
    /// come from the same circuit the id is used with.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of a [`Circuit`]: a primary input, gate, constant or flip-flop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: GateKind,
    pub(crate) fanin: Vec<NodeId>,
}

impl Node {
    /// The node's (unique) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's logic function.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The node's fan-in nodes, in pin order.
    pub fn fanin(&self) -> &[NodeId] {
        &self.fanin
    }
}

/// An immutable, validated, levelized gate-level netlist.
///
/// Construct via [`CircuitBuilder`](crate::CircuitBuilder),
/// [`bench::parse`](crate::bench::parse) or the
/// [`iscas85`](crate::iscas85) substrate. The structure is guaranteed to be
/// combinationally acyclic; fan-out lists, a topological order and logic
/// levels are precomputed.
///
/// # Example
///
/// ```
/// let c17 = bist_netlist::iscas85::c17();
/// assert_eq!(c17.inputs().len(), 5);
/// assert_eq!(c17.outputs().len(), 2);
/// assert_eq!(c17.num_gates(), 6); // six NAND gates
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) fanout: Vec<Vec<NodeId>>,
    /// Combinational evaluation order: sources first, then gates such that
    /// every gate appears after all of its fan-ins.
    pub(crate) topo: Vec<NodeId>,
    /// Logic level per node: sources are level 0, a gate is
    /// `1 + max(level of fanins)`.
    pub(crate) level: Vec<u32>,
    #[allow(clippy::disallowed_types)]
    pub(crate) name_index: HashMap<String, NodeId>,
    pub(crate) is_output: Vec<bool>,
    /// Lazily built flattened simulation view (see [`Circuit::sim_graph`]).
    /// Boxed so the cache adds one pointer to `Circuit`, not the whole
    /// array-of-vectors struct.
    pub(crate) sim: OnceLock<Box<SimGraph>>,
}

impl Circuit {
    /// The circuit's name (e.g. `"c17"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (inputs + constants + gates + flip-flops).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of combinational gates (excludes inputs, constants and
    /// flip-flops).
    pub fn num_gates(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_combinational())
            .count()
    }

    /// Number of D flip-flops.
    pub fn num_dffs(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == GateKind::Dff)
            .count()
    }

    /// Looks a node up by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Primary inputs in declaration order. Pattern bit `i` drives
    /// `inputs()[i]`.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// True if `id` is marked as a primary output.
    pub fn is_output(&self, id: NodeId) -> bool {
        self.is_output[id.index()]
    }

    /// Fan-out list of `id` (each consumer listed once per pin it uses).
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        &self.fanout[id.index()]
    }

    /// Combinational topological order: sources first, then every gate after
    /// its fan-ins. Flip-flop outputs count as sources; their D pins are
    /// sinks.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Logic level of `id` (0 for sources).
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// Largest logic level in the circuit (its combinational depth).
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }

    /// Resolves a node name to its id.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// The transitive fan-out cone of `seed` (inclusive), in topological
    /// order. This is the set of nodes whose value can change when `seed`
    /// changes — the region a fault simulator must re-evaluate.
    pub fn fanout_cone(&self, seed: NodeId) -> Vec<NodeId> {
        let mut in_cone = vec![false; self.nodes.len()];
        in_cone[seed.index()] = true;
        let mut cone = Vec::new();
        for &id in &self.topo {
            if in_cone[id.index()] {
                cone.push(id);
                for &f in &self.fanout[id.index()] {
                    in_cone[f.index()] = true;
                }
            }
        }
        cone
    }

    /// The transitive fan-in cone of `seed` (inclusive), in topological
    /// order.
    pub fn fanin_cone(&self, seed: NodeId) -> Vec<NodeId> {
        let mut in_cone = vec![false; self.nodes.len()];
        in_cone[seed.index()] = true;
        for &id in self.topo.iter().rev() {
            if in_cone[id.index()] {
                for &f in &self.nodes[id.index()].fanin {
                    in_cone[f.index()] = true;
                }
            }
        }
        self.topo
            .iter()
            .copied()
            .filter(|id| in_cone[id.index()])
            .collect()
    }

    /// The flattened struct-of-arrays simulation view of this circuit
    /// (CSR adjacency plus parallel kind/level/topo arrays), built on
    /// first use and cached — every simulation engine shares one layout.
    pub fn sim_graph(&self) -> &SimGraph {
        self.sim.get_or_init(|| Box::new(SimGraph::build(self)))
    }

    /// Summary statistics (gate mix, depth, fan-in/fan-out profile).
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::of(self)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, depth {}",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.num_gates(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, GateKind};

    fn tiny() -> crate::Circuit {
        let mut b = CircuitBuilder::new("tiny");
        b.add_input("a").expect("fresh input name");
        b.add_input("b").expect("fresh input name");
        b.add_gate("n1", GateKind::Nand, &["a", "b"])
            .expect("valid gate");
        b.add_gate("n2", GateKind::Not, &["n1"])
            .expect("valid gate");
        b.mark_output("n2").expect("node exists");
        b.build().expect("valid netlist")
    }

    #[test]
    fn topo_order_respects_fanin() {
        let c = tiny();
        // determinism-vetted: keyed position lookup only, never iterated
        #[allow(clippy::disallowed_types)]
        let pos: std::collections::HashMap<_, _> = c
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for node in c.topo_order() {
            for f in c.node(*node).fanin() {
                assert!(pos[f] < pos[node]);
            }
        }
    }

    #[test]
    fn levels_increase_along_paths() {
        let c = tiny();
        let n1 = c.find("n1").expect("node exists");
        let n2 = c.find("n2").expect("node exists");
        let a = c.find("a").expect("node exists");
        assert_eq!(c.level(a), 0);
        assert_eq!(c.level(n1), 1);
        assert_eq!(c.level(n2), 2);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn fanout_is_inverse_of_fanin() {
        let c = tiny();
        let a = c.find("a").expect("node exists");
        let n1 = c.find("n1").expect("node exists");
        assert_eq!(c.fanout(a), &[n1]);
    }

    #[test]
    fn cones() {
        let c = tiny();
        let a = c.find("a").expect("node exists");
        let n2 = c.find("n2").expect("node exists");
        let cone = c.fanout_cone(a);
        assert_eq!(cone.len(), 3); // a, n1, n2
        let fic = c.fanin_cone(n2);
        assert_eq!(fic.len(), 4); // a, b, n1, n2
    }

    #[test]
    fn display_mentions_shape() {
        let c = tiny();
        let s = c.to_string();
        assert!(s.contains("2 inputs"));
        assert!(s.contains("2 gates"));
    }
}
