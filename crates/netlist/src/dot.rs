//! Graphviz (`.dot`) export of netlists — handy for inspecting the small
//! synthesized generators (LFSROM next-state networks, mode decoders) and
//! for documentation figures.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Renders the circuit as a Graphviz digraph.
///
/// Primary inputs are drawn as plain boxes, flip-flops as double octagons,
/// gates as ellipses labelled `name\nKIND`, and primary outputs are
/// highlighted. Paste the result into `dot -Tsvg` to visualize.
///
/// # Example
///
/// ```
/// let c17 = bist_netlist::iscas85::c17();
/// let dot = bist_netlist::dot::to_dot(&c17);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("G22"));
/// ```
pub fn to_dot(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", circuit.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (idx, node) in circuit.nodes().iter().enumerate() {
        let id = crate::NodeId::from_index(idx);
        let (shape, label) = match node.kind() {
            GateKind::Input => ("box", node.name().to_owned()),
            GateKind::Dff => ("doubleoctagon", format!("{}\\nDFF", node.name())),
            kind => ("ellipse", format!("{}\\n{}", node.name(), kind)),
        };
        let color = if circuit.is_output(id) {
            " style=filled fillcolor=lightblue"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{idx} [shape={shape} label=\"{label}\"{color}];");
    }
    for (idx, node) in circuit.nodes().iter().enumerate() {
        for f in node.fanin() {
            let _ = writeln!(out, "  n{} -> n{idx};", f.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_dot_structure() {
        let c17 = crate::iscas85::c17();
        let dot = to_dot(&c17);
        assert!(dot.starts_with("digraph \"c17\""));
        // 11 nodes + 12 edges
        assert_eq!(dot.matches("shape=").count(), 11);
        assert_eq!(dot.matches(" -> ").count(), 12);
        // outputs highlighted
        assert_eq!(dot.matches("lightblue").count(), 2);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dffs_render_distinctly() {
        use crate::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("reg");
        b.add_input("d").expect("fresh input name");
        b.add_gate("q", GateKind::Dff, &["d"]).expect("valid gate");
        b.mark_output("q").expect("node exists");
        let dot = to_dot(&b.build().expect("valid netlist"));
        assert!(dot.contains("doubleoctagon"));
    }
}
