use std::fmt;

/// Error produced while assembling a circuit with
/// [`CircuitBuilder`](crate::CircuitBuilder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCircuitError {
    /// A node name was declared twice.
    DuplicateName(String),
    /// A fan-in or output referred to a name that was never declared.
    UnknownName(String),
    /// A gate was declared with an illegal number of fan-ins for its kind.
    BadFanin {
        /// Offending node name.
        name: String,
        /// Gate kind as declared.
        kind: String,
        /// Number of fan-ins supplied.
        got: usize,
    },
    /// The combinational part of the netlist contains a cycle through the
    /// named node.
    CombinationalCycle(String),
    /// The circuit has no primary inputs (and is therefore untestable).
    NoInputs,
    /// The circuit has no primary outputs (and is therefore unobservable).
    NoOutputs,
    /// The same node was marked as a primary output twice.
    DuplicateOutput(String),
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            BuildCircuitError::UnknownName(n) => write!(f, "reference to undeclared node `{n}`"),
            BuildCircuitError::BadFanin { name, kind, got } => {
                write!(
                    f,
                    "gate `{name}` of kind {kind} has illegal fan-in count {got}"
                )
            }
            BuildCircuitError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through node `{n}`")
            }
            BuildCircuitError::NoInputs => write!(f, "circuit has no primary inputs"),
            BuildCircuitError::NoOutputs => write!(f, "circuit has no primary outputs"),
            BuildCircuitError::DuplicateOutput(n) => {
                write!(f, "node `{n}` marked as primary output twice")
            }
        }
    }
}

impl std::error::Error for BuildCircuitError {}

/// Error produced while parsing a `.bench` file with
/// [`bench::parse`](crate::bench::parse).
///
/// Every variant is source-located: `line` is the 1-based line number of
/// the declaration the defect is attributed to (the referencing line for
/// a dangling name, the declaring line of a node on a combinational
/// cycle), or `0` when the defect is a property of the whole netlist —
/// a circuit with no inputs or no outputs — rather than of any single
/// line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line could not be understood as a declaration.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation of what went wrong.
        message: String,
    },
    /// The declarations parsed, but the resulting netlist is structurally
    /// invalid.
    Build {
        /// 1-based line number of the declaration that introduced the
        /// defect, or `0` for whole-netlist defects.
        line: usize,
        /// The structural error.
        error: BuildCircuitError,
    },
}

impl ParseBenchError {
    /// The 1-based source line the error is attributed to (`0` = the
    /// whole netlist).
    pub fn line(&self) -> usize {
        match self {
            ParseBenchError::Syntax { line, .. } | ParseBenchError::Build { line, .. } => *line,
        }
    }
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Syntax { line, message } => {
                write!(f, "bench syntax error at line {line}: {message}")
            }
            ParseBenchError::Build { line: 0, error } => {
                write!(f, "bench netlist invalid: {error}")
            }
            ParseBenchError::Build { line, error } => {
                write!(f, "bench netlist invalid at line {line}: {error}")
            }
        }
    }
}

impl std::error::Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseBenchError::Build { error, .. } => Some(error),
            ParseBenchError::Syntax { .. } => None,
        }
    }
}
