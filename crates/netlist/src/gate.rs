use std::fmt;
use std::str::FromStr;

/// The logic function computed by a netlist node.
///
/// `Input` nodes are primary inputs and have no fan-in. `Dff` nodes are
/// D flip-flops: their single fan-in is the D pin and their output is the
/// registered value, which a sequential simulator updates on each clock.
/// All other kinds are combinational gates; `Buf`/`Not` take exactly one
/// fan-in, the rest take two or more.
///
/// # Example
///
/// ```
/// use bist_netlist::GateKind;
///
/// assert!(GateKind::Nand.eval_bool(&[true, false]));
/// assert!(!GateKind::Nand.eval_bool(&[true, true]));
/// assert_eq!("NAND".parse::<GateKind>(), Ok(GateKind::Nand));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input (no fan-in).
    Input,
    /// Non-inverting buffer (one fan-in).
    Buf,
    /// Inverter (one fan-in).
    Not,
    /// Logical AND.
    And,
    /// Logical NAND.
    Nand,
    /// Logical OR.
    Or,
    /// Logical NOR.
    Nor,
    /// Logical exclusive-OR (parity).
    Xor,
    /// Logical exclusive-NOR (inverted parity).
    Xnor,
    /// Constant logic 0 (no fan-in).
    Const0,
    /// Constant logic 1 (no fan-in).
    Const1,
    /// D flip-flop (one fan-in: the D pin).
    Dff,
}

impl GateKind {
    /// All combinational multi-input kinds, useful for iteration in tests
    /// and generators.
    pub const MULTI_INPUT: [GateKind; 6] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Returns the legal fan-in range `(min, max)` for this kind.
    /// `max` is `usize::MAX` for unbounded multi-input gates.
    pub fn fanin_range(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Buf | GateKind::Not | GateKind::Dff => (1, 1),
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => (1, usize::MAX),
        }
    }

    /// True for nodes that source value from outside the combinational
    /// network: primary inputs, constants and flip-flop outputs.
    pub fn is_source(self) -> bool {
        matches!(
            self,
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff
        )
    }

    /// True for combinational gates (everything that is not a source).
    pub fn is_combinational(self) -> bool {
        !self.is_source()
    }

    /// True if the gate inverts its "natural" core function
    /// (NAND/NOR/XNOR/NOT).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// The controlling input value of the gate, if it has one.
    ///
    /// A value `c` is controlling when any input at `c` forces the output
    /// regardless of the other inputs (0 for AND/NAND, 1 for OR/NOR).
    /// XOR-family gates and single-input gates have none.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// The output value produced when a controlling input is present.
    pub fn controlled_output(self) -> Option<bool> {
        let c = self.controlling_value()?;
        Some(self.eval_bool(&[c, !c]))
    }

    /// Evaluates the gate over plain booleans.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is outside [`GateKind::fanin_range`], or if
    /// called on `Input`/`Dff` (sources have no combinational function).
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        let (lo, hi) = self.fanin_range();
        assert!(
            inputs.len() >= lo && inputs.len() <= hi,
            "gate {self} evaluated with {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Input | GateKind::Dff => panic!("source node {self} has no logic function"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&v| v),
            GateKind::Nand => !inputs.iter().all(|&v| v),
            GateKind::Or => inputs.iter().any(|&v| v),
            GateKind::Nor => !inputs.iter().any(|&v| v),
            GateKind::Xor => inputs.iter().fold(false, |a, &v| a ^ v),
            GateKind::Xnor => !inputs.iter().fold(false, |a, &v| a ^ v),
        }
    }

    /// Evaluates the gate bit-parallel over 64-pattern words.
    ///
    /// Bit `i` of the result is the gate output for pattern `i`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GateKind::eval_bool`].
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        let (lo, hi) = self.fanin_range();
        assert!(
            inputs.len() >= lo && inputs.len() <= hi,
            "gate {self} evaluated with {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Input | GateKind::Dff => panic!("source node {self} has no logic function"),
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(!0u64, |a, &v| a & v),
            GateKind::Nand => !inputs.iter().fold(!0u64, |a, &v| a & v),
            GateKind::Or => inputs.iter().fold(0u64, |a, &v| a | v),
            GateKind::Nor => !inputs.iter().fold(0u64, |a, &v| a | v),
            GateKind::Xor => inputs.iter().fold(0u64, |a, &v| a ^ v),
            GateKind::Xnor => !inputs.iter().fold(0u64, |a, &v| a ^ v),
        }
    }

    /// Evaluates a single-fan-in instance of the gate bit-parallel — the
    /// one-input fast path of the simulation hot loops. Multi-input kinds
    /// degenerate to their one-input forms (`AND(a) = a`, `NAND(a) = !a`,
    /// parity of one bit is the bit).
    ///
    /// # Panics
    ///
    /// Panics if the kind cannot have exactly one fan-in
    /// (sources and constants).
    #[inline]
    pub fn eval_word1(self, a: u64) -> u64 {
        match self {
            GateKind::Buf | GateKind::And | GateKind::Or | GateKind::Xor => a,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor => !a,
            GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1 => {
                panic!("gate {self} evaluated with 1 input")
            }
        }
    }

    /// Evaluates a two-fan-in instance of the gate bit-parallel — the
    /// two-input fast path of the simulation hot loops (the overwhelming
    /// majority of ISCAS gates are two-input).
    ///
    /// # Panics
    ///
    /// Panics if the kind cannot have two fan-ins.
    #[inline]
    pub fn eval_word2(self, a: u64, b: u64) -> u64 {
        match self {
            GateKind::And => a & b,
            GateKind::Nand => !(a & b),
            GateKind::Or => a | b,
            GateKind::Nor => !(a | b),
            GateKind::Xor => a ^ b,
            GateKind::Xnor => !(a ^ b),
            _ => panic!("gate {self} evaluated with 2 inputs"),
        }
    }

    /// Evaluates the gate bit-parallel over an iterator of fan-in words —
    /// the allocation-free generic path behind [`GateKind::eval_word`]
    /// (which requires a slice). Arity is *not* re-checked here; callers
    /// stream fan-ins straight out of a validated netlist.
    ///
    /// # Panics
    ///
    /// Panics on `Input`/`Dff` (sources have no logic function).
    #[inline]
    pub fn eval_word_iter(self, mut inputs: impl Iterator<Item = u64>) -> u64 {
        match self {
            GateKind::Input | GateKind::Dff => panic!("source node {self} has no logic function"),
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Buf => inputs.next().expect("BUF has one fan-in"),
            GateKind::Not => !inputs.next().expect("NOT has one fan-in"),
            GateKind::And => inputs.fold(!0u64, |a, v| a & v),
            GateKind::Nand => !inputs.fold(!0u64, |a, v| a & v),
            GateKind::Or => inputs.fold(0u64, |a, v| a | v),
            GateKind::Nor => !inputs.fold(0u64, |a, v| a | v),
            GateKind::Xor => inputs.fold(0u64, |a, v| a ^ v),
            GateKind::Xnor => !inputs.fold(0u64, |a, v| a ^ v),
        }
    }

    /// Evaluates the gate over an iterator of fan-in booleans — the
    /// allocation-free counterpart of [`GateKind::eval_bool`] used by the
    /// scalar simulation loops. Arity is *not* re-checked here.
    ///
    /// # Panics
    ///
    /// Panics on `Input`/`Dff` (sources have no logic function).
    #[inline]
    pub fn eval_bool_iter(self, mut inputs: impl Iterator<Item = bool>) -> bool {
        match self {
            GateKind::Input | GateKind::Dff => panic!("source node {self} has no logic function"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => inputs.next().expect("BUF has one fan-in"),
            GateKind::Not => !inputs.next().expect("NOT has one fan-in"),
            GateKind::And => inputs.all(|v| v),
            GateKind::Nand => !inputs.all(|v| v),
            GateKind::Or => inputs.any(|v| v),
            GateKind::Nor => !inputs.any(|v| v),
            GateKind::Xor => inputs.fold(false, |a, v| a ^ v),
            GateKind::Xnor => !inputs.fold(false, |a, v| a ^ v),
        }
    }

    /// The `.bench` keyword for this kind (upper case), e.g. `"NAND"`.
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Dff => "DFF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

/// Error returned when parsing a [`GateKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError {
    token: String,
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.token)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    /// Parses a `.bench` keyword, case-insensitively. `BUFF` is accepted as
    /// an alias for `BUF` (both spellings appear in circulating ISCAS
    /// files).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "INPUT" => Ok(GateKind::Input),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            "NOT" | "INV" => Ok(GateKind::Not),
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "CONST0" => Ok(GateKind::Const0),
            "CONST1" => Ok(GateKind::Const1),
            "DFF" => Ok(GateKind::Dff),
            _ => Err(ParseGateKindError {
                token: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_and_word_agree_on_two_inputs() {
        for kind in GateKind::MULTI_INPUT {
            for a in [false, true] {
                for b in [false, true] {
                    let expect = kind.eval_bool(&[a, b]);
                    let wa = if a { !0u64 } else { 0 };
                    let wb = if b { !0u64 } else { 0 };
                    let got = kind.eval_word(&[wa, wb]);
                    assert_eq!(got, if expect { !0 } else { 0 }, "{kind} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn bool_and_word_agree_on_single_input() {
        for kind in [GateKind::Buf, GateKind::Not] {
            for a in [false, true] {
                let expect = kind.eval_bool(&[a]);
                let wa = if a { !0u64 } else { 0 };
                assert_eq!(kind.eval_word(&[wa]), if expect { !0 } else { 0 });
            }
        }
    }

    #[test]
    fn word_eval_is_bitwise_independent() {
        // patterns: a = 0101..., b = 0011...
        let a = 0xAAAA_AAAA_AAAA_AAAAu64;
        let b = 0xCCCC_CCCC_CCCC_CCCCu64;
        assert_eq!(GateKind::And.eval_word(&[a, b]), a & b);
        assert_eq!(GateKind::Nor.eval_word(&[a, b]), !(a | b));
        assert_eq!(GateKind::Xor.eval_word(&[a, b]), a ^ b);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Not.controlling_value(), None);
    }

    #[test]
    fn controlled_outputs() {
        assert_eq!(GateKind::And.controlled_output(), Some(false));
        assert_eq!(GateKind::Nand.controlled_output(), Some(true));
        assert_eq!(GateKind::Or.controlled_output(), Some(true));
        assert_eq!(GateKind::Nor.controlled_output(), Some(false));
    }

    #[test]
    fn parse_round_trip() {
        for kind in [
            GateKind::Input,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Dff,
        ] {
            assert_eq!(kind.bench_keyword().parse::<GateKind>(), Ok(kind));
        }
        assert_eq!("buff".parse::<GateKind>(), Ok(GateKind::Buf));
        assert!("FROB".parse::<GateKind>().is_err());
    }

    #[test]
    fn fast_paths_agree_with_slice_eval() {
        let a = 0xAAAA_AAAA_AAAA_AAAAu64;
        let b = 0xCCCC_CCCC_CCCC_CCCCu64;
        let c = 0xF0F0_F0F0_F0F0_F0F0u64;
        for kind in GateKind::MULTI_INPUT {
            assert_eq!(kind.eval_word1(a), kind.eval_word(&[a]), "{kind}/1");
            assert_eq!(kind.eval_word2(a, b), kind.eval_word(&[a, b]), "{kind}/2");
            assert_eq!(
                kind.eval_word_iter([a, b, c].into_iter()),
                kind.eval_word(&[a, b, c]),
                "{kind}/3"
            );
        }
        for kind in [GateKind::Buf, GateKind::Not] {
            assert_eq!(kind.eval_word1(a), kind.eval_word(&[a]), "{kind}");
            assert_eq!(
                kind.eval_word_iter([a].into_iter()),
                kind.eval_word(&[a]),
                "{kind}/iter"
            );
        }
        assert_eq!(GateKind::Const0.eval_word_iter([].into_iter()), 0);
        assert_eq!(GateKind::Const1.eval_word_iter([].into_iter()), !0);
    }

    #[test]
    fn bool_iter_agrees_with_slice_eval() {
        for kind in GateKind::MULTI_INPUT {
            for bits in 0u8..8 {
                let v = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
                assert_eq!(
                    kind.eval_bool_iter(v.iter().copied()),
                    kind.eval_bool(&v),
                    "{kind} {v:?}"
                );
            }
        }
        assert!(!GateKind::Not.eval_bool_iter([true].into_iter()));
        assert!(GateKind::Buf.eval_bool_iter([true].into_iter()));
    }

    #[test]
    fn xor_is_parity_for_wide_gates() {
        assert!(GateKind::Xor.eval_bool(&[true, true, true]));
        assert!(!GateKind::Xor.eval_bool(&[true, true, true, true]));
        assert!(GateKind::Xnor.eval_bool(&[true, true, false, false]));
    }

    #[test]
    #[should_panic(expected = "evaluated with")]
    fn arity_is_checked() {
        GateKind::Not.eval_bool(&[true, false]);
    }
}
