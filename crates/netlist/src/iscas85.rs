//! ISCAS-85 benchmark substrate.
//!
//! The paper evaluates on the eleven ISCAS-85 circuits (Brglez & Fujiwara,
//! 1985). This module embeds the exact, tiny `c17` netlist — the circuit the
//! paper uses to illustrate the LFSROM — and provides a **deterministic
//! synthetic generator** for the ten larger circuits, reproducing each
//! circuit's published profile: primary input/output counts, gate count,
//! approximate depth and gate mix, plus planted *random-pattern-resistant
//! cones* (deep AND/OR trees with detection probability `2^-k`) and
//! *redundant substructures* (reconvergent fan-out of the form
//! `OR(a, AND(a, b))` whose internal stuck-at faults are untestable). These
//! are the two testability features the paper's experiments hinge on: the
//! coverage-versus-length curve of Figure 4 flattens because of the hard
//! cones, and the 96.7 % coverage ceiling of C3540 exists because of
//! redundant faults.
//!
//! The substitution is documented in `DESIGN.md`: original ISCAS-85 netlists
//! are not redistributable here, and every experiment depends only on these
//! gross testability statistics. Real `.bench` files drop in via
//! [`bench::parse`](crate::bench::parse()) unchanged.
//!
//! # Example
//!
//! ```
//! use bist_netlist::iscas85;
//!
//! let c432 = iscas85::circuit("c432").expect("known benchmark");
//! let profile = iscas85::profile("c432").expect("known benchmark");
//! assert_eq!(c432.inputs().len(), profile.inputs);
//! assert_eq!(c432.outputs().len(), profile.outputs);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bench;
use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::gate::GateKind;

/// The exact ISCAS-85 `c17` netlist in `.bench` form (public domain).
pub const C17_BENCH: &str = "\
# c17 (exact ISCAS-85 netlist)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

/// Names of the eleven ISCAS-85 benchmark circuits, smallest first.
pub const NAMES: [&str; 11] = [
    "c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552",
];

/// Published profile of one ISCAS-85 circuit, used to drive the synthetic
/// generator and reported in the experiment tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Benchmark name, e.g. `"c3540"`.
    pub name: &'static str,
    /// Number of primary inputs (the test pattern width).
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Published combinational depth (informative; the synthetic stand-in
    /// approximates it).
    pub depth: u32,
    /// Weighted gate mix used by the generator.
    pub mix: &'static [(GateKind, u32)],
    /// Number of planted random-pattern-resistant cones.
    pub hard_cones: usize,
    /// Number of planted redundant reconvergent substructures.
    pub redundant_structs: usize,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

const MIX_NAND: &[(GateKind, u32)] = &[
    (GateKind::Nand, 26),
    (GateKind::And, 6),
    (GateKind::Nor, 14),
    (GateKind::Or, 6),
    (GateKind::Not, 16),
    (GateKind::Buf, 6),
    (GateKind::Xor, 20),
    (GateKind::Xnor, 8),
];

const MIX_XOR_RICH: &[(GateKind, u32)] = &[
    (GateKind::Xor, 30),
    (GateKind::Nand, 18),
    (GateKind::And, 16),
    (GateKind::Nor, 8),
    (GateKind::Or, 8),
    (GateKind::Not, 14),
    (GateKind::Buf, 6),
];

const MIX_ADDER: &[(GateKind, u32)] = &[
    (GateKind::Xor, 28),
    (GateKind::Xnor, 6),
    (GateKind::And, 22),
    (GateKind::Nor, 12),
    (GateKind::Or, 8),
    (GateKind::Nand, 16),
    (GateKind::Not, 8),
];

/// Profiles of the ten synthesized ISCAS-85 circuits (c17 is exact).
/// I/O and gate counts follow the published benchmark statistics.
pub const PROFILES: [Profile; 10] = [
    Profile {
        name: "c432",
        inputs: 36,
        outputs: 7,
        gates: 160,
        depth: 17,
        mix: MIX_NAND,
        hard_cones: 4,
        redundant_structs: 2,
        seed: 0x1985_0432,
    },
    Profile {
        name: "c499",
        inputs: 41,
        outputs: 32,
        gates: 202,
        depth: 11,
        mix: MIX_XOR_RICH,
        hard_cones: 4,
        redundant_structs: 3,
        seed: 0x1985_0499,
    },
    Profile {
        name: "c880",
        inputs: 60,
        outputs: 26,
        gates: 383,
        depth: 24,
        mix: MIX_NAND,
        hard_cones: 6,
        redundant_structs: 0,
        seed: 0x1985_0880,
    },
    Profile {
        name: "c1355",
        inputs: 41,
        outputs: 32,
        gates: 546,
        depth: 24,
        mix: MIX_XOR_RICH,
        hard_cones: 8,
        redundant_structs: 3,
        seed: 0x1985_1355,
    },
    Profile {
        name: "c1908",
        inputs: 33,
        outputs: 25,
        gates: 880,
        depth: 40,
        mix: MIX_NAND,
        hard_cones: 12,
        redundant_structs: 4,
        seed: 0x1985_1908,
    },
    Profile {
        name: "c2670",
        inputs: 233,
        outputs: 140,
        gates: 1193,
        depth: 32,
        mix: MIX_NAND,
        hard_cones: 18,
        redundant_structs: 25,
        seed: 0x1985_2670,
    },
    Profile {
        name: "c3540",
        inputs: 50,
        outputs: 22,
        gates: 1669,
        depth: 47,
        mix: MIX_NAND,
        hard_cones: 26,
        redundant_structs: 40,
        seed: 0x1985_3540,
    },
    Profile {
        name: "c5315",
        inputs: 178,
        outputs: 123,
        gates: 2307,
        depth: 49,
        mix: MIX_NAND,
        hard_cones: 30,
        redundant_structs: 18,
        seed: 0x1985_5315,
    },
    Profile {
        name: "c6288",
        inputs: 32,
        outputs: 32,
        gates: 2416,
        depth: 124,
        mix: MIX_ADDER,
        hard_cones: 6,
        redundant_structs: 10,
        seed: 0x1985_6288,
    },
    Profile {
        name: "c7552",
        inputs: 207,
        outputs: 108,
        gates: 3512,
        depth: 43,
        mix: MIX_NAND,
        hard_cones: 40,
        redundant_structs: 45,
        seed: 0x1985_7552,
    },
];

/// Returns the profile for a synthesized benchmark (`None` for `"c17"`,
/// which is exact, and for unknown names).
pub fn profile(name: &str) -> Option<&'static Profile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// The exact ISCAS-85 `c17` circuit (6 NAND gates, 5 inputs, 2 outputs).
///
/// # Panics
///
/// Never panics: the embedded source is validated by tests.
pub fn c17() -> Circuit {
    bench::parse("c17", C17_BENCH).expect("embedded c17 netlist is valid")
}

/// Returns the named ISCAS-85 benchmark: the exact `c17`, or the synthetic
/// profile stand-in for the ten larger circuits. `None` for unknown names.
///
/// The result is deterministic: repeated calls return identical netlists.
pub fn circuit(name: &str) -> Option<Circuit> {
    if name == "c17" {
        return Some(c17());
    }
    profile(name).map(synthesize)
}

/// Generates all eleven benchmarks, smallest first.
pub fn all() -> Vec<Circuit> {
    NAMES
        .iter()
        .map(|n| circuit(n).expect("known name"))
        .collect()
}

/// Synthesizes a circuit matching `profile` (deterministic in
/// `profile.seed`).
///
/// Guarantees:
/// * exact primary input and output counts,
/// * gate count within a few gates of `profile.gates` (funnelling to the
///   requested output count can add a final collector layer),
/// * every primary input drives logic, every gate reaches an output,
/// * `hard_cones` deep AND/OR trees (detection probability `2^-k`,
///   `k ∈ 7..=11`) and `redundant_structs` untestable reconvergent
///   substructures are embedded.
pub fn synthesize(profile: &Profile) -> Circuit {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut g = Generator::new(profile);

    g.plant_inputs();
    g.plant_hard_cones(&mut rng);
    g.plant_redundant_structs(&mut rng);
    g.grow_body(&mut rng);
    g.collect_outputs(&mut rng);
    g.finish()
}

/// Internal growth state for the synthetic generator.
struct Generator<'p> {
    profile: &'p Profile,
    builder: CircuitBuilder,
    /// Names of all value-producing nodes created so far.
    nodes: Vec<String>,
    /// Approximate logic level per entry of `nodes`.
    levels: Vec<u32>,
    /// Fan-out count per entry of `nodes` (to track dangling nodes).
    fanout_count: Vec<usize>,
    /// Gates created so far (excludes inputs).
    gates_made: usize,
    next_id: usize,
    mix_total: u32,
}

impl<'p> Generator<'p> {
    fn new(profile: &'p Profile) -> Self {
        Generator {
            profile,
            builder: CircuitBuilder::new(profile.name),
            nodes: Vec::new(),
            levels: Vec::new(),
            fanout_count: Vec::new(),
            gates_made: 0,
            next_id: 0,
            mix_total: profile.mix.iter().map(|(_, w)| w).sum(),
        }
    }

    fn fresh_name(&mut self) -> String {
        let n = format!("g{}", self.next_id);
        self.next_id += 1;
        n
    }

    fn plant_inputs(&mut self) {
        for i in 0..self.profile.inputs {
            let name = format!("i{i}");
            self.builder.add_input(&name).expect("fresh input name");
            self.nodes.push(name);
            self.levels.push(0);
            self.fanout_count.push(0);
        }
    }

    fn add_gate(&mut self, kind: GateKind, fanin_idx: &[usize]) -> usize {
        let name = self.fresh_name();
        let fanin_names: Vec<&str> = fanin_idx.iter().map(|&i| self.nodes[i].as_str()).collect();
        self.builder
            .add_gate(&name, kind, &fanin_names)
            .expect("generator produces valid gates");
        let level = fanin_idx.iter().map(|&i| self.levels[i]).max().unwrap_or(0) + 1;
        for &i in fanin_idx {
            self.fanout_count[i] += 1;
        }
        self.nodes.push(name);
        self.levels.push(level);
        self.fanout_count.push(0);
        self.gates_made += 1;
        self.nodes.len() - 1
    }

    fn pick_kind(&self, rng: &mut StdRng) -> GateKind {
        let mut roll = rng.gen_range(0..self.mix_total);
        for &(kind, w) in self.profile.mix {
            if roll < w {
                return kind;
            }
            roll -= w;
        }
        GateKind::Nand
    }

    /// Deep 2-input AND (or OR) trees over distinct primary inputs: the
    /// output is 1 (resp. 0) with probability `2^-k`, so its stuck-at-0
    /// (resp. stuck-at-1) fault is random-pattern resistant.
    fn plant_hard_cones(&mut self, rng: &mut StdRng) {
        let n_pi = self.profile.inputs;
        for c in 0..self.profile.hard_cones {
            let k = rng.gen_range(5..=8usize).min(n_pi);
            let use_and = c % 2 == 0;
            let kind = if use_and { GateKind::And } else { GateKind::Or };
            // k distinct PIs
            let mut pis: Vec<usize> = (0..n_pi).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n_pi);
                pis.swap(i, j);
            }
            let mut acc = pis[0];
            for &pi in &pis[1..k] {
                acc = self.add_gate(kind, &[acc, pi]);
            }
        }
    }

    /// `r = OR(a, AND(a, b))` is functionally `a`: the AND output stuck-at-0
    /// (and faults inside the AND) are untestable. The dual
    /// `r = AND(a, OR(a, b))` plants the stuck-at-1 counterpart.
    fn plant_redundant_structs(&mut self, rng: &mut StdRng) {
        for s in 0..self.profile.redundant_structs {
            let a = rng.gen_range(0..self.nodes.len());
            let mut b = rng.gen_range(0..self.nodes.len());
            if b == a {
                b = (b + 1) % self.nodes.len();
            }
            if s % 2 == 0 {
                let t = self.add_gate(GateKind::And, &[a, b]);
                self.add_gate(GateKind::Or, &[a, t]);
            } else {
                let t = self.add_gate(GateKind::Or, &[a, b]);
                self.add_gate(GateKind::And, &[a, t]);
            }
        }
    }

    /// Picks a distinct fan-in from `pool` (falling back to any earlier
    /// node), avoiding duplicates within one gate.
    fn pick_from(&self, rng: &mut StdRng, pool: &[usize], exclude: &[usize]) -> usize {
        for _ in 0..32 {
            let cand = if !pool.is_empty() && rng.gen_bool(0.8) {
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(0..self.nodes.len())
            };
            if !exclude.contains(&cand) {
                return cand;
            }
        }
        (0..self.nodes.len())
            .find(|i| !exclude.contains(i))
            .expect("more nodes than pins")
    }

    fn grow_body(&mut self, rng: &mut StdRng) {
        // ensure every primary input is consumed at least once
        let unused: Vec<usize> = (0..self.profile.inputs)
            .filter(|&i| self.fanout_count[i] == 0)
            .collect();
        for pair in unused.chunks(2) {
            let a = pair[0];
            let b = if pair.len() == 2 {
                pair[1]
            } else {
                self.pick_from(rng, &[], &[a])
            };
            self.add_gate(GateKind::Nand, &[a, b]);
        }

        // level-quota growth: gates are laid out in bands so the circuit
        // stays as shallow and wide as the published benchmark, instead of
        // degenerating into deep random-pattern-resistant chains
        let reserve = self.profile.outputs * 4; // head-room for collectors
        let body_gates = self
            .profile
            .gates
            .saturating_sub(self.gates_made + reserve)
            .max(1);
        let body_levels = ((self.profile.depth as usize / 2).saturating_sub(2)).max(3);
        let per_level = (body_gates / body_levels).max(1);

        let mut prev_band: Vec<usize> = (0..self.nodes.len()).collect();
        let mut made = 0usize;
        for l in 1..=body_levels {
            if made >= body_gates {
                break;
            }
            let quota = if l == body_levels {
                body_gates - made
            } else {
                per_level.min(body_gates - made)
            };
            // consume the previous band's dangling nodes first so signals
            // keep moving towards the outputs
            let mut queue: Vec<usize> = prev_band
                .iter()
                .copied()
                .filter(|&i| self.fanout_count[i] == 0)
                .collect();
            // deterministic shuffle
            for i in (1..queue.len()).rev() {
                let j = rng.gen_range(0..=i);
                queue.swap(i, j);
            }
            let mut band = Vec::with_capacity(quota);
            for _ in 0..quota {
                let kind = self.pick_kind(rng);
                let arity = match kind {
                    GateKind::Not | GateKind::Buf => 1,
                    _ => match rng.gen_range(0..20) {
                        0..=14 => 2,
                        15..=18 => 3,
                        _ => 4,
                    },
                };
                let mut fanin: Vec<usize> = Vec::with_capacity(arity);
                if let Some(first) = queue.pop() {
                    fanin.push(first);
                }
                while fanin.len() < arity {
                    let f = self.pick_from(rng, &prev_band, &fanin);
                    fanin.push(f);
                }
                band.push(self.add_gate(kind, &fanin));
                made += 1;
            }
            prev_band = band;
        }
    }

    /// Builds exactly `profile.outputs` primary outputs. Dangling internal
    /// nodes are distributed over per-output *balanced trees* of 2-input
    /// gates with a healthy XOR share — wide masking gates at the outputs
    /// would make the whole circuit artificially random-pattern resistant.
    fn collect_outputs(&mut self, rng: &mut StdRng) {
        let n_po = self.profile.outputs;
        let dangling: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.fanout_count[i] == 0)
            .collect();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_po];
        for (i, node) in dangling.into_iter().enumerate() {
            buckets[i % n_po].push(node);
        }
        for mut bucket in buckets {
            // tap a few already-consumed mid-level nodes too: real circuits
            // observe signals at every depth, not just the last band
            let taps = 4 + rng.gen_range(0..4);
            for _ in 0..taps {
                let extra = self.pick_from(rng, &[], &bucket);
                bucket.push(extra);
            }
            while bucket.len() < 2 {
                let extra = self.pick_from(rng, &[], &bucket);
                bucket.push(extra);
            }
            // balanced reduction keeps the tree shallow and observable
            while bucket.len() > 1 {
                let mut next = Vec::with_capacity(bucket.len() / 2 + 1);
                for pair in bucket.chunks(2) {
                    if pair.len() == 1 {
                        next.push(pair[0]);
                        continue;
                    }
                    let kind = match rng.gen_range(0..20) {
                        0..=7 => GateKind::Xor,
                        8..=11 => GateKind::Nand,
                        12..=14 => GateKind::Or,
                        15..=17 => GateKind::And,
                        _ => GateKind::Nor,
                    };
                    next.push(self.add_gate(kind, &[pair[0], pair[1]]));
                }
                bucket = next;
            }
            let out_name = self.nodes[bucket[0]].clone();
            self.builder
                .mark_output(&out_name)
                .expect("collector outputs are gates with fresh names");
        }
    }

    fn finish(self) -> Circuit {
        self.builder
            .build()
            .expect("generator maintains structural invariants")
    }
}

/// Convenience: the set of node ids of planted hard-cone outputs is not
/// tracked; this helper instead reports the number of nodes with level 0
/// fan-in only (a cheap sanity probe used in tests).
pub fn count_pi_fed_gates(circuit: &Circuit) -> usize {
    circuit
        .nodes()
        .iter()
        .filter(|n| {
            n.kind().is_combinational()
                && n.fanin()
                    .iter()
                    .all(|f| circuit.node(*f).kind() == GateKind::Input)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_matches_published_shape() {
        let c = c17();
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.num_gates(), 6);
        assert!(c
            .nodes()
            .iter()
            .filter(|n| n.kind().is_combinational())
            .all(|n| n.kind() == GateKind::Nand));
    }

    #[test]
    fn profiles_cover_all_large_benchmarks() {
        for name in NAMES {
            if name == "c17" {
                assert!(profile(name).is_none());
            } else {
                assert!(profile(name).is_some(), "missing profile for {name}");
            }
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = circuit("c432").expect("known benchmark");
        let b = circuit("c432").expect("known benchmark");
        assert_eq!(a.num_nodes(), b.num_nodes());
        for (na, nb) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn synthesis_matches_io_profile() {
        for p in &PROFILES {
            let c = synthesize(p);
            assert_eq!(c.inputs().len(), p.inputs, "{}", p.name);
            assert_eq!(c.outputs().len(), p.outputs, "{}", p.name);
            // gate count is close to the published number
            let got = c.num_gates();
            let want = p.gates;
            let tol = want / 10 + 40;
            assert!(
                got + tol >= want && got <= want + tol,
                "{}: {} gates vs profile {}",
                p.name,
                got,
                want
            );
        }
    }

    #[test]
    fn every_gate_reaches_an_output() {
        let c = circuit("c880").expect("known benchmark");
        let mut reaches = vec![false; c.num_nodes()];
        for &o in c.outputs() {
            reaches[o.index()] = true;
        }
        for &id in c.topo_order().iter().rev() {
            if reaches[id.index()] {
                for f in c.node(id).fanin() {
                    reaches[f.index()] = true;
                }
            }
        }
        for (i, n) in c.nodes().iter().enumerate() {
            assert!(
                reaches[i],
                "node {} ({:?}) does not reach any output",
                n.name(),
                n.kind()
            );
        }
    }

    #[test]
    fn every_input_drives_logic() {
        for name in ["c432", "c3540"] {
            let c = circuit(name).expect("known benchmark");
            for &pi in c.inputs() {
                assert!(
                    !c.fanout(pi).is_empty(),
                    "{name}: input {} has no fan-out",
                    c.node(pi).name()
                );
            }
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(circuit("c9000").is_none());
    }

    #[test]
    fn all_returns_eleven() {
        // only build the small ones here to keep the test fast; `all` is
        // exercised in release-mode integration tests
        assert_eq!(NAMES.len(), 11);
        let c432 = circuit("c432").expect("known benchmark");
        assert!(c432.num_gates() > 100);
    }

    #[test]
    fn bench_round_trip_of_synthetic() {
        let c = circuit("c432").expect("known benchmark");
        let text = bench::write(&c);
        let back = bench::parse("c432", &text).expect("serialized netlist parses");
        assert_eq!(back.num_nodes(), c.num_nodes());
        assert_eq!(back.outputs().len(), c.outputs().len());
    }
}
