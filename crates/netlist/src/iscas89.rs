//! ISCAS-89 sequential benchmark substrate: the exact `s27` plus
//! deterministic synthetic stand-ins for the larger circuits.
//!
//! The paper's introduction frames the whole BIST problem around scan:
//! internal nodes become controllable/observable by inserting memory
//! elements "in the form of a scan chain" and the TPG drives that chain.
//! The 1995 evaluation stays combinational (ISCAS-85), but the flow is
//! *built* for scan-wrapped sequential logic — `bist-scan` performs the
//! wrapping, and this module supplies the sequential circuits to wrap.
//!
//! As with [`iscas85`](crate::iscas85), the original ISCAS-89 netlists
//! are not redistributable here: `s27` is small enough to embed exactly,
//! and the larger circuits are profile-matched synthetic stand-ins
//! (published #PI / #PO / #DFF / #gates, seeded and reproducible). Real
//! `.bench` files — the format carries `DFF(...)` lines — drop in
//! through [`bench::parse`](crate::bench::parse()) unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bench;
use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::gate::GateKind;

/// The exact ISCAS-89 `s27` netlist in `.bench` syntax: 4 inputs, 1
/// output, 3 flip-flops, 10 gates.
pub const S27_BENCH: &str = "\
# ISCAS-89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// Every benchmark this module can produce.
pub const NAMES: [&str; 6] = ["s27", "s298", "s344", "s641", "s1196", "s5378"];

/// Published profile of one ISCAS-89 circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqProfile {
    /// Benchmark name, e.g. `"s1196"`.
    pub name: &'static str,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of D flip-flops.
    pub dffs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Generator seed (fixed: stand-ins are reproducible).
    pub seed: u64,
}

/// Profiles for the synthetic stand-ins (published ISCAS-89 statistics).
pub const PROFILES: [SeqProfile; 5] = [
    SeqProfile {
        name: "s298",
        inputs: 3,
        outputs: 6,
        dffs: 14,
        gates: 119,
        seed: 0x89_0298,
    },
    SeqProfile {
        name: "s344",
        inputs: 9,
        outputs: 11,
        dffs: 15,
        gates: 160,
        seed: 0x89_0344,
    },
    SeqProfile {
        name: "s641",
        inputs: 35,
        outputs: 24,
        dffs: 19,
        gates: 379,
        seed: 0x89_0641,
    },
    SeqProfile {
        name: "s1196",
        inputs: 14,
        outputs: 14,
        dffs: 18,
        gates: 529,
        seed: 0x89_1196,
    },
    SeqProfile {
        name: "s5378",
        inputs: 35,
        outputs: 49,
        dffs: 179,
        gates: 2779,
        seed: 0x89_5378,
    },
];

/// Looks up the profile of a synthetic stand-in.
pub fn profile(name: &str) -> Option<&'static SeqProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// The exact ISCAS-89 `s27` circuit.
///
/// # Panics
///
/// Never panics: the embedded source is validated by tests.
pub fn s27() -> Circuit {
    bench::parse("s27", S27_BENCH).expect("embedded s27 netlist is valid")
}

/// Any benchmark by name — the exact `s27`, or a synthesized stand-in.
pub fn circuit(name: &str) -> Option<Circuit> {
    if name == "s27" {
        return Some(s27());
    }
    profile(name).map(synthesize)
}

/// Synthesizes a sequential stand-in from its profile: a layered random
/// combinational body over the primary inputs and flip-flop outputs, with
/// flip-flop D-pins and primary outputs tapped from the deepest layers —
/// giving real feedback loops (state → logic → next state) through every
/// flip-flop.
pub fn synthesize(profile: &SeqProfile) -> Circuit {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut b = CircuitBuilder::new(profile.name);

    let mut sources: Vec<String> = Vec::new();
    for i in 0..profile.inputs {
        let name = format!("pi{i}");
        b.add_input(&name).expect("fresh name");
        sources.push(name);
    }
    // flip-flop outputs are sources too; their D fan-in is declared by
    // name now and resolved at build (forward references are supported)
    for i in 0..profile.dffs {
        let q = format!("q{i}");
        b.add_gate(&q, GateKind::Dff, &[&format!("d{i}")])
            .expect("fresh name");
        sources.push(q);
    }

    const KINDS: [GateKind; 6] = [
        GateKind::Nand,
        GateKind::Nor,
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Not,
    ];
    let mut nodes = sources.clone();
    let mut fanin_record: Vec<(String, Vec<String>)> = Vec::with_capacity(profile.gates);
    for g in 0..profile.gates {
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let fanin_count = match kind {
            GateKind::Not => 1,
            _ => rng.gen_range(2..=3.min(nodes.len())),
        };
        let name = format!("g{g}");
        // bias fan-in toward recent nodes so depth grows
        let mut fanin: Vec<String> = Vec::with_capacity(fanin_count);
        for _ in 0..fanin_count {
            let lo = nodes.len().saturating_sub(40);
            let idx = if rng.gen_bool(0.7) && lo > 0 {
                rng.gen_range(lo..nodes.len())
            } else {
                rng.gen_range(0..nodes.len())
            };
            let candidate = nodes[idx].clone();
            if !fanin.contains(&candidate) {
                fanin.push(candidate);
            }
        }
        if fanin.is_empty() {
            fanin.push(nodes[rng.gen_range(0..nodes.len())].clone());
        }
        let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
        b.add_gate(&name, kind, &refs).expect("fresh name");
        fanin_record.push((name.clone(), fanin));
        nodes.push(name);
    }

    // D-pins and primary outputs tap the deepest third of the body
    let tail_start = sources.len() + (profile.gates * 2) / 3;
    let tail: Vec<String> = nodes[tail_start.min(nodes.len() - 1)..].to_vec();
    // determinism-vetted: dedup membership only; output order comes from
    // the rng-driven selection loop, not from set iteration
    #[allow(clippy::disallowed_types)]
    let mut marked = std::collections::HashSet::new();
    let mut o = 0;
    while o < profile.outputs {
        let src = tail[rng.gen_range(0..tail.len())].clone();
        if marked.insert(src.clone()) {
            b.mark_output(&src).expect("node exists");
            o += 1;
        }
        if marked.len() >= tail.len() {
            break;
        }
    }
    // every body node must be observable (through a PO or through state),
    // or the fault universe fills up with structurally untestable faults
    // no real circuit has: fold dangling nodes into the D-pin gates as
    // extra XOR fan-ins, round-robin across the flip-flops
    // determinism-vetted: membership probe only (`dangling` is collected
    // by scanning `nodes` in declaration order)
    #[allow(clippy::disallowed_types)]
    let mut used: std::collections::HashSet<String> = marked.iter().cloned().collect();
    for (name, fanin) in &fanin_record {
        let _ = name;
        for f in fanin {
            used.insert(f.clone());
        }
    }
    let dangling: Vec<String> = nodes[sources.len()..]
        .iter()
        .filter(|n| !used.contains(*n))
        .cloned()
        .collect();
    let mut d_fanin: Vec<Vec<String>> = (0..profile.dffs)
        .map(|_| vec![tail[rng.gen_range(0..tail.len())].clone()])
        .collect();
    for (k, extra) in dangling.into_iter().enumerate() {
        let slot = &mut d_fanin[k % profile.dffs];
        if !slot.contains(&extra) {
            slot.push(extra);
        }
    }
    for (i, fanin) in d_fanin.iter().enumerate() {
        let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
        let kind = if refs.len() == 1 {
            GateKind::Buf
        } else {
            GateKind::Xor
        };
        b.add_gate(&format!("d{i}"), kind, &refs)
            .expect("fresh name");
    }
    b.build().expect("synthetic sequential netlist is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    #[test]
    fn s27_matches_published_statistics() {
        let c = s27();
        assert_eq!(c.inputs().len(), 4);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.num_dffs(), 3);
        assert_eq!(c.num_gates(), 10);
    }

    #[test]
    fn s27_has_state_feedback() {
        // every flip-flop's D cone must reach some flip-flop output —
        // otherwise it would not be sequential logic
        let c = s27();
        let dffs: Vec<_> = c
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind() == GateKind::Dff)
            .map(|(i, _)| crate::NodeId::from_index(i))
            .collect();
        assert_eq!(dffs.len(), 3);
        for &q in &dffs {
            let d = c.node(q).fanin()[0];
            // walk the fan-in cone of d looking for any DFF
            let mut stack = vec![d];
            let mut seen = vec![false; c.num_nodes()];
            let mut found = false;
            while let Some(n) = stack.pop() {
                if seen[n.index()] {
                    continue;
                }
                seen[n.index()] = true;
                if c.node(n).kind() == GateKind::Dff {
                    found = true;
                    break;
                }
                stack.extend(c.node(n).fanin().iter().copied());
            }
            assert!(found, "{} has no state feedback", c.node(q).name());
        }
    }

    #[test]
    fn profiles_synthesize_to_their_statistics() {
        for p in &PROFILES[..4] {
            let c = synthesize(p);
            assert_eq!(c.inputs().len(), p.inputs, "{}", p.name);
            assert_eq!(c.outputs().len(), p.outputs, "{}", p.name);
            assert_eq!(c.num_dffs(), p.dffs, "{}", p.name);
            // gates: body + one Buf per DFF D-pin
            assert_eq!(c.num_gates(), p.gates + p.dffs, "{}", p.name);
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let p = profile("s344").expect("known profile");
        let a = bench::write(&synthesize(p));
        let b = bench::write(&synthesize(p));
        assert_eq!(a, b);
    }

    #[test]
    fn circuits_round_trip_through_bench_format() {
        for name in NAMES.iter().take(4) {
            let c = circuit(name).expect("known benchmark");
            let text = bench::write(&c);
            let back = bench::parse(name, &text).expect("serialized netlist parses");
            assert_eq!(back.num_gates(), c.num_gates(), "{name}");
            assert_eq!(back.num_dffs(), c.num_dffs(), "{name}");
        }
    }

    #[test]
    fn unknown_names_are_none() {
        assert!(circuit("s9999").is_none());
        assert!(profile("c17").is_none());
    }
}
