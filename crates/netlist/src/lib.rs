//! Gate-level netlist substrate for the LFSROM mixed-BIST reproduction.
//!
//! This crate provides the circuit representation every other crate in the
//! workspace builds on:
//!
//! * [`Circuit`] — an immutable, levelized gate-level netlist with
//!   precomputed fan-out and topological order,
//! * [`CircuitBuilder`] — the only way to construct a [`Circuit`], with full
//!   structural validation (unique names, legal fan-in arities, acyclicity),
//! * [`bench`](mod@bench) — a reader/writer for the classic ISCAS-85 `.bench` format so
//!   real benchmark netlists drop in unchanged,
//! * [`iscas85`] — the benchmark substrate: the exact `c17` netlist plus a
//!   deterministic synthetic generator reproducing the published profile
//!   (inputs/outputs/gate count/depth/gate mix, with planted random-pattern
//!   resistant cones and redundant substructures) of the ten larger ISCAS-85
//!   circuits used in the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use bist_netlist::{CircuitBuilder, GateKind};
//!
//! # fn main() -> Result<(), bist_netlist::BuildCircuitError> {
//! let mut b = CircuitBuilder::new("half_adder");
//! b.add_input("a")?;
//! b.add_input("b")?;
//! b.add_gate("sum", GateKind::Xor, &["a", "b"])?;
//! b.add_gate("carry", GateKind::And, &["a", "b"])?;
//! b.mark_output("sum")?;
//! b.mark_output("carry")?;
//! let circuit = b.build()?;
//! assert_eq!(circuit.num_gates(), 2);
//! assert_eq!(circuit.inputs().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod builder;
mod circuit;
pub mod dot;
mod error;
mod gate;
pub mod iscas85;
pub mod iscas89;
mod simgraph;
mod stats;

pub use bench::SourceMap;
pub use builder::CircuitBuilder;
pub use circuit::{Circuit, Node, NodeId};
pub use error::{BuildCircuitError, ParseBenchError};
pub use gate::GateKind;
pub use simgraph::{LevelQueue, SimGraph};
pub use stats::CircuitStats;
