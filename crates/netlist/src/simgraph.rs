//! Flattened struct-of-arrays simulation view of a [`Circuit`].
//!
//! The pointer-rich [`Circuit`] representation (`Vec<Node>` with per-node
//! fan-in/fan-out vectors) is ideal for construction, validation and
//! name-based inspection — and hostile to the simulation hot loops, which
//! chase two pointers per edge. [`SimGraph`] is the same graph re-laid-out
//! for speed: compressed-sparse-row (CSR) adjacency — one contiguous index
//! array plus offsets per direction — and parallel per-node arrays for the
//! gate kind, logic level, topological position and output flag. Every
//! simulation engine in the workspace (packed good-machine simulation,
//! PPSFP cone propagation, the five-valued ATPG implication walk, the
//! sequential replay engine) reads this one layout, so a cache line fetched
//! for one consumer is warm for the next.
//!
//! The view is built once per circuit on first use and cached inside the
//! [`Circuit`] (see [`Circuit::sim_graph`]); it is a pure re-indexing of
//! the frozen netlist, so the two representations can never disagree.
//!
//! # Example
//!
//! ```
//! let c17 = bist_netlist::iscas85::c17();
//! let g = c17.sim_graph();
//! assert_eq!(g.num_nodes(), c17.num_nodes());
//! // CSR adjacency mirrors the legacy accessors exactly.
//! for id in 0..c17.num_nodes() {
//!     let node = c17.node(bist_netlist::NodeId::from_index(id));
//!     let csr: Vec<usize> = g.fanin(id).iter().map(|&f| f as usize).collect();
//!     let legacy: Vec<usize> = node.fanin().iter().map(|f| f.index()).collect();
//!     assert_eq!(csr, legacy);
//! }
//! ```

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Flattened, cache-linear view of a [`Circuit`] for simulation hot loops.
///
/// All node references are dense `u32` indices (the same values as
/// [`NodeId::index`](crate::NodeId::index)); adjacency is CSR. Obtain via
/// [`Circuit::sim_graph`] — the view is built once and cached.
#[derive(Debug, Clone)]
pub struct SimGraph {
    kind: Vec<GateKind>,
    level: Vec<u32>,
    topo: Vec<u32>,
    topo_pos: Vec<u32>,
    is_output: Vec<bool>,
    fanin_off: Vec<u32>,
    fanin: Vec<u32>,
    fanout_off: Vec<u32>,
    fanout: Vec<u32>,
    /// Primary-input position per node (`u32::MAX` for non-inputs).
    input_pos: Vec<u32>,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
    num_levels: u32,
}

impl SimGraph {
    /// Builds the flattened view of `circuit`. Prefer
    /// [`Circuit::sim_graph`], which builds once and caches.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.num_nodes();
        let mut kind = Vec::with_capacity(n);
        let mut fanin_off = Vec::with_capacity(n + 1);
        let mut fanin = Vec::new();
        fanin_off.push(0u32);
        for node in circuit.nodes() {
            kind.push(node.kind());
            fanin.extend(node.fanin().iter().map(|f| f.index() as u32));
            fanin_off.push(fanin.len() as u32);
        }

        let mut fanout_off = Vec::with_capacity(n + 1);
        let mut fanout = Vec::new();
        fanout_off.push(0u32);
        for id in 0..n {
            fanout.extend(
                circuit
                    .fanout(crate::NodeId::from_index(id))
                    .iter()
                    .map(|s| s.index() as u32),
            );
            fanout_off.push(fanout.len() as u32);
        }

        let topo: Vec<u32> = circuit
            .topo_order()
            .iter()
            .map(|id| id.index() as u32)
            .collect();
        let mut topo_pos = vec![0u32; n];
        for (pos, &id) in topo.iter().enumerate() {
            topo_pos[id as usize] = pos as u32;
        }

        let level: Vec<u32> = (0..n)
            .map(|id| circuit.level(crate::NodeId::from_index(id)))
            .collect();
        let num_levels = level.iter().copied().max().unwrap_or(0) + 1;

        let mut input_pos = vec![u32::MAX; n];
        for (pos, pi) in circuit.inputs().iter().enumerate() {
            input_pos[pi.index()] = pos as u32;
        }

        SimGraph {
            kind,
            level,
            topo,
            topo_pos,
            is_output: (0..n)
                .map(|id| circuit.is_output(crate::NodeId::from_index(id)))
                .collect(),
            fanin_off,
            fanin,
            fanout_off,
            fanout,
            input_pos,
            inputs: circuit.inputs().iter().map(|i| i.index() as u32).collect(),
            outputs: circuit.outputs().iter().map(|o| o.index() as u32).collect(),
            num_levels,
        }
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kind.len()
    }

    /// Gate kind of node `id`.
    #[inline]
    pub fn kind(&self, id: usize) -> GateKind {
        self.kind[id]
    }

    /// Logic level of node `id` (0 for sources).
    #[inline]
    pub fn level(&self, id: usize) -> u32 {
        self.level[id]
    }

    /// Number of distinct logic levels (`depth + 1`) — the bucket count a
    /// levelized event queue needs.
    #[inline]
    pub fn num_levels(&self) -> u32 {
        self.num_levels
    }

    /// Combinational topological order as dense indices (identical order to
    /// [`Circuit::topo_order`]).
    #[inline]
    pub fn topo(&self) -> &[u32] {
        &self.topo
    }

    /// Position of node `id` in [`SimGraph::topo`].
    #[inline]
    pub fn topo_pos(&self, id: usize) -> u32 {
        self.topo_pos[id]
    }

    /// True if node `id` is a primary output.
    #[inline]
    pub fn is_output(&self, id: usize) -> bool {
        self.is_output[id]
    }

    /// Fan-in of node `id`, in pin order (CSR slice).
    #[inline]
    pub fn fanin(&self, id: usize) -> &[u32] {
        &self.fanin[self.fanin_off[id] as usize..self.fanin_off[id + 1] as usize]
    }

    /// Fan-out of node `id` (each consumer once per pin it uses).
    #[inline]
    pub fn fanout(&self, id: usize) -> &[u32] {
        &self.fanout[self.fanout_off[id] as usize..self.fanout_off[id + 1] as usize]
    }

    /// Primary inputs in declaration order, as dense indices.
    #[inline]
    pub fn inputs(&self) -> &[u32] {
        &self.inputs
    }

    /// Primary outputs in declaration order, as dense indices.
    #[inline]
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// Position of node `id` in the primary-input list, or `None` if it is
    /// not an input. O(1) — replaces the linear scans name-oriented code
    /// does over [`Circuit::inputs`].
    #[inline]
    pub fn input_pos(&self, id: usize) -> Option<usize> {
        let pos = self.input_pos[id];
        (pos != u32::MAX).then_some(pos as usize)
    }

    /// Evaluates the combinational gate `id` bit-parallel, reading fan-in
    /// value words through `get`. Dispatches a specialized two-input fast
    /// path (the overwhelming majority of benchmark gates) before the
    /// generic fold; never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a source node (input / flip-flop).
    #[inline]
    pub fn eval_word(&self, id: usize, get: impl Fn(usize) -> u64) -> u64 {
        let kind = self.kind[id];
        match *self.fanin(id) {
            [a] => kind.eval_word1(get(a as usize)),
            [a, b] => kind.eval_word2(get(a as usize), get(b as usize)),
            ref fanin => kind.eval_word_iter(fanin.iter().map(|&f| get(f as usize))),
        }
    }

    /// Boolean counterpart of [`SimGraph::eval_word`] for the scalar
    /// engines; never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a source node (input / flip-flop).
    #[inline]
    pub fn eval_bool(&self, id: usize, get: impl Fn(usize) -> bool) -> bool {
        self.kind[id].eval_bool_iter(self.fanin(id).iter().map(|&f| get(f as usize)))
    }
}

/// Reusable levelized event queue over one [`SimGraph`]: one bucket of
/// pending node indices per logic level, epoch-stamped membership dedup,
/// drained in strictly ascending level order.
///
/// This is the scheduling structure shared by the event-driven cone walks
/// (PPSFP fault propagation, the ATPG's incremental implication): because
/// every fan-in of a node sits at a strictly lower level, draining level
/// by level evaluates each reached node exactly once, after all of its
/// producers are final — the same values as any other topological order,
/// without a heap's `O(log n)` per event. All storage (buckets, stamps)
/// is reused across waves; after warm-up a wave allocates nothing.
///
/// Usage per wave:
///
/// 1. [`LevelQueue::begin`] at the seed's level,
/// 2. [`LevelQueue::push`] the seed's fan-out (each node with its level),
/// 3. repeatedly [`LevelQueue::take_bucket`], walk the returned nodes
///    (pushing their fan-outs as values change), and hand the storage
///    back with [`LevelQueue::restore`].
#[derive(Debug, Clone)]
pub struct LevelQueue {
    buckets: Vec<Vec<u32>>,
    /// Membership stamp per node: queued this wave iff `enq[id] == epoch`.
    enq: Vec<u32>,
    epoch: u32,
    /// Nodes currently enqueued and not yet taken.
    pending: usize,
    /// The scan resumes here; levels below are already drained.
    cursor: usize,
    /// Level slot of the bucket handed out by the last `take_bucket`.
    taken_level: usize,
}

impl LevelQueue {
    /// Creates an empty queue shaped for `graph`.
    pub fn new(graph: &SimGraph) -> Self {
        LevelQueue {
            buckets: vec![Vec::new(); graph.num_levels() as usize],
            enq: vec![0; graph.num_nodes()],
            epoch: 0,
            pending: 0,
            cursor: 0,
            taken_level: 0,
        }
    }

    /// Starts a new wave whose pushes are all at levels `> level`. Clears
    /// the previous wave's membership stamps in O(1) (an epoch bump; the
    /// stamp array is only rewritten when the epoch wraps).
    ///
    /// The queue must be drained (`take_bucket` returned `None`, or the
    /// previous wave never pushed) — draining is what leaves the buckets
    /// empty for reuse.
    pub fn begin(&mut self, level: u32) {
        debug_assert_eq!(self.pending, 0, "begin on an undrained queue");
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.enq.fill(0);
            self.epoch = 1;
        }
        self.cursor = level as usize + 1;
    }

    /// Enqueues node `id` at `level` unless it is already queued this
    /// wave; returns whether it was accepted. Callers filter out nodes
    /// that must not be scheduled (sources — their level would violate
    /// the ascending-drain invariant).
    #[inline]
    pub fn push(&mut self, id: u32, level: u32) -> bool {
        debug_assert!(
            level as usize >= self.cursor,
            "push below the drain cursor breaks the ascending-level invariant"
        );
        let slot = &mut self.enq[id as usize];
        if *slot == self.epoch {
            return false;
        }
        *slot = self.epoch;
        self.buckets[level as usize].push(id);
        self.pending += 1;
        true
    }

    /// Detaches the next non-empty bucket in ascending level order, or
    /// `None` when the wave is drained. Return the storage via
    /// [`LevelQueue::restore`] before the next `take_bucket`.
    pub fn take_bucket(&mut self) -> Option<Vec<u32>> {
        if self.pending == 0 {
            return None;
        }
        while self.buckets[self.cursor].is_empty() {
            self.cursor += 1;
        }
        self.taken_level = self.cursor;
        self.cursor += 1;
        let bucket = std::mem::take(&mut self.buckets[self.taken_level]);
        self.pending -= bucket.len();
        Some(bucket)
    }

    /// Hands a drained bucket's storage back to its slot (cleared,
    /// capacity kept), so the next wave reuses the allocation.
    pub fn restore(&mut self, mut bucket: Vec<u32>) {
        bucket.clear();
        self.buckets[self.taken_level] = bucket;
    }
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, GateKind, NodeId};

    fn sample() -> crate::Circuit {
        let mut b = CircuitBuilder::new("s");
        b.add_input("a").expect("fresh name");
        b.add_input("b").expect("fresh name");
        b.add_input("c").expect("fresh name");
        b.add_gate("n1", GateKind::Nand, &["a", "b"]).expect("gate");
        b.add_gate("n2", GateKind::Or, &["n1", "c", "a"])
            .expect("gate");
        b.add_gate("n3", GateKind::Not, &["n2"]).expect("gate");
        b.mark_output("n2").expect("exists");
        b.mark_output("n3").expect("exists");
        b.build().expect("valid")
    }

    #[test]
    fn csr_matches_legacy_adjacency() {
        let c = sample();
        let g = c.sim_graph();
        for id in 0..c.num_nodes() {
            let node = c.node(NodeId::from_index(id));
            let fi: Vec<usize> = g.fanin(id).iter().map(|&f| f as usize).collect();
            let legacy: Vec<usize> = node.fanin().iter().map(|f| f.index()).collect();
            assert_eq!(fi, legacy, "fanin of {id}");
            let fo: Vec<usize> = g.fanout(id).iter().map(|&f| f as usize).collect();
            let legacy: Vec<usize> = c
                .fanout(NodeId::from_index(id))
                .iter()
                .map(|f| f.index())
                .collect();
            assert_eq!(fo, legacy, "fanout of {id}");
            assert_eq!(g.kind(id), node.kind());
            assert_eq!(g.level(id), c.level(NodeId::from_index(id)));
            assert_eq!(g.is_output(id), c.is_output(NodeId::from_index(id)));
        }
        let topo: Vec<usize> = g.topo().iter().map(|&i| i as usize).collect();
        let legacy: Vec<usize> = c.topo_order().iter().map(|i| i.index()).collect();
        assert_eq!(topo, legacy);
        assert_eq!(g.num_levels(), c.depth() + 1);
    }

    #[test]
    fn input_positions_are_o1() {
        let c = sample();
        let g = c.sim_graph();
        for (pos, pi) in c.inputs().iter().enumerate() {
            assert_eq!(g.input_pos(pi.index()), Some(pos));
        }
        let n1 = c.find("n1").expect("exists");
        assert_eq!(g.input_pos(n1.index()), None);
    }

    #[test]
    fn eval_dispatch_agrees_with_eval_word() {
        let c = sample();
        let g = c.sim_graph();
        let vals: Vec<u64> = (0..c.num_nodes() as u64).map(|i| i * 0x9E37).collect();
        for id in 0..c.num_nodes() {
            let node = c.node(NodeId::from_index(id));
            if !node.kind().is_combinational() {
                continue;
            }
            let fanin: Vec<u64> = node.fanin().iter().map(|f| vals[f.index()]).collect();
            assert_eq!(
                g.eval_word(id, |f| vals[f]),
                node.kind().eval_word(&fanin),
                "node {id}"
            );
        }
    }

    #[test]
    fn level_queue_drains_ascending_with_dedup() {
        let c = sample();
        let g = c.sim_graph();
        let mut q = crate::LevelQueue::new(g);
        for wave in 0..3 {
            // seed from input "a" (level 0): fanout is n1 (level 1) and
            // n2 (level 2); push n1 twice to exercise the stamp dedup
            let a = c.find("a").expect("exists").index();
            q.begin(g.level(a));
            for &s in g.fanout(a) {
                q.push(s, g.level(s as usize));
            }
            let n1 = c.find("n1").expect("exists").index() as u32;
            assert!(!q.push(n1, 1), "duplicate push must be rejected");
            let mut drained: Vec<Vec<u32>> = Vec::new();
            while let Some(bucket) = q.take_bucket() {
                drained.push(bucket.clone());
                q.restore(bucket);
            }
            let n2 = c.find("n2").expect("exists").index() as u32;
            assert_eq!(drained, vec![vec![n1], vec![n2]], "wave {wave}");
        }
    }

    #[test]
    fn cached_view_is_shared() {
        let c = sample();
        let a = c.sim_graph() as *const _;
        let b = c.sim_graph() as *const _;
        assert_eq!(a, b, "sim_graph must be built once and cached");
    }
}
