use std::collections::BTreeMap;
use std::fmt;

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Summary statistics of a [`Circuit`], used by the synthetic-benchmark
/// generator's self-checks and by the experiment reports.
///
/// # Example
///
/// ```
/// let c17 = bist_netlist::iscas85::c17();
/// let stats = c17.stats();
/// assert_eq!(stats.num_gates, 6);
/// assert_eq!(stats.gate_mix.get(&bist_netlist::GateKind::Nand), Some(&6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of combinational gates.
    pub num_gates: usize,
    /// Number of D flip-flops.
    pub num_dffs: usize,
    /// Combinational depth (maximum logic level).
    pub depth: u32,
    /// Count of gates per kind.
    pub gate_mix: BTreeMap<GateKind, usize>,
    /// Largest fan-in of any gate.
    pub max_fanin: usize,
    /// Largest fan-out of any node.
    pub max_fanout: usize,
    /// Total fan-in connections (≈ wire count).
    pub total_pins: usize,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let mut gate_mix = BTreeMap::new();
        let mut max_fanin = 0;
        let mut total_pins = 0;
        let mut num_gates = 0;
        for node in circuit.nodes() {
            total_pins += node.fanin().len();
            if node.kind().is_combinational() {
                num_gates += 1;
                max_fanin = max_fanin.max(node.fanin().len());
                *gate_mix.entry(node.kind()).or_insert(0) += 1;
            }
        }
        let max_fanout = (0..circuit.num_nodes())
            .map(|i| circuit.fanout(crate::NodeId::from_index(i)).len())
            .max()
            .unwrap_or(0);
        CircuitStats {
            num_inputs: circuit.inputs().len(),
            num_outputs: circuit.outputs().len(),
            num_gates,
            num_dffs: circuit.num_dffs(),
            depth: circuit.depth(),
            gate_mix,
            max_fanin,
            max_fanout,
            total_pins,
        }
    }

    /// Average gate fan-in (0 if there are no gates).
    pub fn avg_fanin(&self) -> f64 {
        if self.num_gates == 0 {
            return 0.0;
        }
        let gate_pins: usize = self.gate_mix.iter().map(|(_, &c)| c).sum::<usize>().max(1);
        let _ = gate_pins;
        self.total_pins as f64 / self.num_gates as f64
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "I/O {}/{}  gates {}  dffs {}  depth {}  max fan-in {}  max fan-out {}",
            self.num_inputs,
            self.num_outputs,
            self.num_gates,
            self.num_dffs,
            self.depth,
            self.max_fanin,
            self.max_fanout
        )?;
        for (kind, count) in &self.gate_mix {
            writeln!(f, "  {kind:>6}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::iscas85;

    #[test]
    fn c17_stats() {
        let s = iscas85::c17().stats();
        assert_eq!(s.num_inputs, 5);
        assert_eq!(s.num_outputs, 2);
        assert_eq!(s.num_gates, 6);
        assert_eq!(s.num_dffs, 0);
        assert_eq!(s.depth, 3);
        assert!(s.avg_fanin() > 1.9 && s.avg_fanin() < 2.1);
    }
}
