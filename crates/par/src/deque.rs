//! The work-stealing substrate: one double-ended task queue per worker.
//!
//! The classic lock-free Chase–Lev deque needs `unsafe`; the workspace
//! forbids it, so each deque is a `Mutex<VecDeque<usize>>` — the owner
//! pops task indices from the front (preserving ascending order, which
//! keeps neighbouring faults on the same worker for cache locality) and
//! thieves steal half the victim's remaining work from the back. Tasks
//! here are coarse (a chunk of fault cones, one PODEM search, one whole
//! circuit sweep), so a short critical section per task is noise next to
//! the task body.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A set of per-worker deques over the task indices `0..tasks`.
///
/// Tasks are pre-distributed as contiguous ranges (worker 0 gets the
/// first `tasks / workers` indices, and so on); imbalance is corrected at
/// run time by stealing.
#[derive(Debug)]
pub(crate) struct WorkQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl WorkQueues {
    /// Distributes `tasks` task indices over `workers` deques.
    pub(crate) fn new(tasks: usize, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        let base = tasks / workers;
        let extra = tasks % workers;
        let mut next = 0usize;
        for (w, q) in queues.iter_mut().enumerate() {
            let take = base + usize::from(w < extra);
            q.extend(next..next + take);
            next += take;
        }
        WorkQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The next task for `worker`: its own front, or — once its deque runs
    /// dry — a batch stolen from the back of the fullest other deque.
    /// `None` once every deque is empty (the pool is shutting down).
    pub(crate) fn next(&self, worker: usize) -> Option<usize> {
        if let Some(i) = self.queues[worker]
            .lock()
            .expect("queue poisoned")
            .pop_front()
        {
            return Some(i);
        }
        self.steal_into(worker)
    }

    /// Steals roughly half of the fullest victim's tasks into `worker`'s
    /// deque and returns the first of them.
    fn steal_into(&self, worker: usize) -> Option<usize> {
        loop {
            // pick the victim with the most remaining work
            let mut victim: Option<(usize, usize)> = None;
            for (v, q) in self.queues.iter().enumerate() {
                if v == worker {
                    continue;
                }
                let len = q.lock().expect("queue poisoned").len();
                if len > 0 && victim.map(|(_, best)| len > best).unwrap_or(true) {
                    victim = Some((v, len));
                }
            }
            let (v, _) = victim?;
            let mut stolen: VecDeque<usize> = VecDeque::new();
            {
                let mut q = self.queues[v].lock().expect("queue poisoned");
                let take = q.len().div_ceil(2);
                for _ in 0..take {
                    if let Some(i) = q.pop_back() {
                        stolen.push_front(i);
                    }
                }
            }
            if stolen.is_empty() {
                // the victim was drained between the len() probe and the
                // lock; rescan for another one
                continue;
            }
            let first = stolen.pop_front();
            if !stolen.is_empty() {
                let mut own = self.queues[worker].lock().expect("queue poisoned");
                own.extend(stolen);
            }
            return first;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // determinism-vetted: insert/uniqueness bookkeeping, never iterated
    #[allow(clippy::disallowed_types)]
    use std::collections::HashSet;

    #[test]
    fn every_task_handed_out_exactly_once() {
        let q = WorkQueues::new(100, 4);
        #[allow(clippy::disallowed_types)]
        let mut seen = HashSet::new();
        for w in (0..4).cycle() {
            match q.next(w) {
                Some(i) => assert!(seen.insert(i), "task {i} dispatched twice"),
                None => break,
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn single_worker_drains_in_order() {
        let q = WorkQueues::new(5, 1);
        let order: Vec<usize> = std::iter::from_fn(|| q.next(0)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn idle_worker_steals_from_the_busy_one() {
        // worker 1 drains its own range, then steals worker 0's entire
        // share — a single worker must always be able to finish the job
        let q = WorkQueues::new(8, 2);
        let mut got: Vec<usize> = std::iter::from_fn(|| q.next(1)).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert!(q.next(0).is_none());
    }

    #[test]
    fn more_workers_than_tasks() {
        let q = WorkQueues::new(2, 8);
        let got: Vec<Option<usize>> = (0..8).map(|w| q.next(w)).collect();
        let handed: Vec<usize> = got.into_iter().flatten().collect();
        assert_eq!(handed.len(), 2);
    }
}
