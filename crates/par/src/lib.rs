//! `bist-par` — the workspace's dependency-free parallel runtime.
//!
//! Fault-simulation throughput is the binding constraint on exploring the
//! mixed scheme's pseudo-random/deterministic trade-off, and the hot loops
//! (PPSFP cone propagation, PODEM searches, per-circuit sweeps) are
//! embarrassingly parallel *provided the merge stays deterministic*. This
//! crate supplies exactly that substrate, in-tree and offline like the
//! `vendor/` shims, built from `std::thread::scope` plus a work-stealing
//! deque (`deque`, a lock-guarded stand-in for the crossbeam Chase–Lev
//! deque — the workspace forbids `unsafe`):
//!
//! * [`Pool`] — a scoped work-stealing pool with a
//!   [`par_map`](Pool::par_map) / [`par_map_init`](Pool::par_map_init) /
//!   [`par_chunks`](Pool::par_chunks) surface; results always come back
//!   in input order, so callers can fold them with a deterministic,
//!   thread-count-independent merge;
//! * [`num_threads`] / [`env_threads`] — the `BIST_THREADS` knob.
//!   `BIST_THREADS=1` (or `Pool::new(1)`) runs every consumer inline on
//!   the calling thread: no worker threads, exactly the historical serial
//!   behaviour.
//!
//! The engines built on top (`bist-faultsim`, `bist-atpg`, `bist-core`)
//! guarantee bit-identical results at every pool width; the regression
//! suite in `tests/par_identity.rs` enforces it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deque;
mod pool;

pub use pool::{env_threads, num_threads, Pool};
