//! The scoped pool: spawn `threads` workers over one task list, steal
//! work until every task ran, reassemble results in task order.

use crate::deque::WorkQueues;

/// How many threads the `BIST_THREADS` environment variable requests:
/// `Some(n)` for an explicit positive count, `None` when unset, empty,
/// unparsable or `0` (all of which mean "decide automatically").
pub fn env_threads() -> Option<usize> {
    std::env::var("BIST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The degree of parallelism the workspace should use by default:
/// `BIST_THREADS` when set to a positive number, the machine's available
/// parallelism otherwise.
pub fn num_threads() -> usize {
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// A scoped work-stealing thread pool of a fixed width.
///
/// A pool is just a thread-count policy: every `par_*` call spawns its
/// workers inside a [`std::thread::scope`], so closures may borrow from
/// the caller's stack and nothing outlives the call. With one thread (or
/// one item) the pool degrades to an inline serial loop on the calling
/// thread — no threads spawned, byte-for-byte today's sequential
/// behaviour; the engines in this workspace are written so their results
/// are bit-identical either way.
///
/// # Example
///
/// ```
/// use bist_par::Pool;
///
/// let squares = Pool::new(4).par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of exactly `threads` workers (`0` is promoted to 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The default pool: [`num_threads`] wide.
    pub fn from_env() -> Self {
        Pool::new(num_threads())
    }

    /// Resolves a `0 = automatic` knob: `Pool::new(n)` for positive `n`,
    /// [`Pool::from_env`] otherwise. Every `threads: usize` field in the
    /// workspace funnels through this.
    pub fn resolve(threads: usize) -> Self {
        if threads == 0 {
            Pool::from_env()
        } else {
            Pool::new(threads)
        }
    }

    /// The pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this pool would run work inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `items`, returning results in item order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_init(items, || (), |(), _, item| f(item))
    }

    /// Maps `f` over `items` with one `init()`-produced scratch state per
    /// worker (rayon's `map_init` shape): `f(&mut state, index, &item)`.
    /// Results come back in item order regardless of which worker ran
    /// what. Serial pools call `init` once and loop inline.
    pub fn par_map_init<T, S, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut state, i, item))
                .collect();
        }
        let queues = WorkQueues::new(n, workers);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let f = &f;
                    let init = &init;
                    scope.spawn(move || {
                        let mut state = init();
                        let mut out: Vec<(usize, R)> = Vec::new();
                        while let Some(i) = queues.next(w) {
                            out.push((i, f(&mut state, i, &items[i])));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("pool worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every task dispatched exactly once"))
            .collect()
    }

    /// Splits `items` into contiguous chunks of at most `chunk_size` and
    /// maps `f(chunk_index, chunk)` over them in parallel, returning the
    /// per-chunk results in chunk order. The chunk boundaries — and hence
    /// the result — are a pure function of `(items.len(), chunk_size)`,
    /// never of the pool width.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        self.par_map_init(&chunks, || (), |(), i, chunk| f(i, chunk))
    }

    /// [`Pool::par_chunks`] with one scratch state per worker.
    pub fn par_chunks_init<T, S, R, I, F>(
        &self,
        items: &[T],
        chunk_size: usize,
        init: I,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &[T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        self.par_map_init(&chunks, init, |state, i, chunk| f(state, i, chunk))
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8] {
            let got = Pool::new(threads).par_map(&items, |&x| x * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_init_reuses_worker_state() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let pool = Pool::new(4);
        let got = pool.par_map_init(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |count, _, &x| {
                *count += 1;
                x
            },
        );
        assert_eq!(got, items);
        // one scratch state per *worker*, not per task
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn par_chunks_boundaries_are_width_independent() {
        let items: Vec<u32> = (0..103).collect();
        let serial = Pool::new(1).par_chunks(&items, 10, |i, c| (i, c.to_vec()));
        let wide = Pool::new(7).par_chunks(&items, 10, |i, c| (i, c.to_vec()));
        assert_eq!(serial, wide);
        assert_eq!(serial.len(), 11);
        assert_eq!(serial[10].1.len(), 3);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let none: Vec<u8> = Vec::new();
        assert!(Pool::new(4).par_map(&none, |&x| x).is_empty());
    }

    #[test]
    fn borrows_from_the_caller_stack() {
        let base = [10u64, 20, 30];
        let items = [0usize, 1, 2];
        let got = Pool::new(2).par_map(&items, |&i| base[i] + 1);
        assert_eq!(got, vec![11, 21, 31]);
    }

    #[test]
    fn resolve_and_env_knob() {
        assert_eq!(Pool::resolve(3).threads(), 3);
        assert!(Pool::resolve(0).threads() >= 1);
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::new(1).is_serial());
        assert!(!Pool::new(2).is_serial());
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn worker_panics_propagate() {
        let items = [0u32, 1, 2, 3, 4, 5, 6, 7];
        Pool::new(2).par_map(&items, |&x| {
            assert!(x < 7, "boom");
            x
        });
    }
}
