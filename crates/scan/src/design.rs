// determinism-vetted: the only hash set here deduplicates observation
// points via insert(); marking order follows the circuit's node order
#[allow(clippy::disallowed_types)]
use std::collections::HashSet;
use std::fmt;

use bist_logicsim::{Pattern, SeqSim};
use bist_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};
use bist_synth::{AreaModel, CellCount, CellKind};

/// Error returned by [`ScanDesign::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertScanError {
    /// The circuit holds no flip-flops — nothing to scan; test it as pure
    /// combinational logic.
    NoFlipFlops,
}

impl fmt::Display for InsertScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertScanError::NoFlipFlops => write!(f, "circuit has no flip-flops to scan"),
        }
    }
}

impl std::error::Error for InsertScanError {}

/// Full-scan insertion of a sequential circuit: every D flip-flop becomes
/// a mux-scan cell stitched into one chain, making the state fully
/// controllable and observable — the paper's §1 premise ("inserting
/// memory elements ... in the form of a scan chain") that turns a
/// sequential test problem into the combinational one the whole LFSROM
/// flow solves.
///
/// The central artefact is the **test view** ([`ScanDesign::test_view`]):
/// a combinational circuit whose extra primary inputs are the flip-flop
/// outputs (scanned in) and whose extra primary outputs are the flip-flop
/// D-pins (scanned out). Every combinational engine in the workspace —
/// fault simulation, PODEM, the mixed scheme, LFSROM synthesis — applies
/// to the test view unchanged; [`ScanDesign::clocks_for`] then converts
/// pattern counts back into tester clocks through the chain.
///
/// # Example
///
/// ```
/// use bist_scan::ScanDesign;
///
/// let s27 = bist_netlist::iscas89::s27();
/// let scan = ScanDesign::insert(&s27)?;
/// assert_eq!(scan.chain_len(), 3);
/// assert_eq!(scan.pattern_width(), 4 + 3); // PIs + scanned state
/// # Ok::<(), bist_scan::InsertScanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScanDesign {
    original: Circuit,
    test_view: Circuit,
    /// Flip-flop names in scan-chain order (scan-in first).
    chain: Vec<String>,
}

impl ScanDesign {
    /// Inserts full scan into `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`InsertScanError::NoFlipFlops`] for purely combinational
    /// circuits.
    pub fn insert(circuit: &Circuit) -> Result<Self, InsertScanError> {
        let dffs: Vec<NodeId> = circuit
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind() == GateKind::Dff)
            .map(|(i, _)| NodeId::from_index(i))
            .collect();
        if dffs.is_empty() {
            return Err(InsertScanError::NoFlipFlops);
        }
        let chain: Vec<String> = dffs
            .iter()
            .map(|&q| circuit.node(q).name().to_owned())
            .collect();

        // --- build the combinational test view ---
        let mut b = CircuitBuilder::new(format!("{}_testview", circuit.name()));
        for &pi in circuit.inputs() {
            b.add_input(circuit.node(pi).name())
                .expect("original names are unique");
        }
        // flip-flop outputs become pseudo-primary inputs, same names so
        // fault sites correspond one-to-one
        for name in &chain {
            b.add_input(name).expect("original names are unique");
        }
        // copy every combinational gate verbatim (fan-in names that used
        // to reference a flip-flop now reference its pseudo-input)
        for node in circuit.nodes() {
            match node.kind() {
                GateKind::Input | GateKind::Dff => {}
                kind => {
                    let fanin: Vec<&str> = node
                        .fanin()
                        .iter()
                        .map(|&f| circuit.node(f).name())
                        .collect();
                    b.add_gate(node.name(), kind, &fanin)
                        .expect("original names are unique");
                }
            }
        }
        // original primary outputs, plus every flip-flop's D driver as a
        // pseudo-primary output (deduplicated: one node is observed once)
        #[allow(clippy::disallowed_types)]
        let mut marked: HashSet<String> = HashSet::new();
        for &po in circuit.outputs() {
            let name = circuit.node(po).name();
            if marked.insert(name.to_owned()) {
                b.mark_output(name).expect("node exists");
            }
        }
        for &q in &dffs {
            let d = circuit.node(q).fanin()[0];
            let name = circuit.node(d).name();
            if marked.insert(name.to_owned()) {
                b.mark_output(name).expect("node exists");
            }
        }
        let test_view = b.build().expect("test view of a valid circuit is valid");
        Ok(ScanDesign {
            original: circuit.clone(),
            test_view,
            chain,
        })
    }

    /// The sequential circuit scan was inserted into.
    pub fn original(&self) -> &Circuit {
        &self.original
    }

    /// The combinational test view: inputs = PIs then chain state, outputs
    /// = POs then (deduplicated) flip-flop D drivers.
    pub fn test_view(&self) -> &Circuit {
        &self.test_view
    }

    /// Flip-flop names in scan order.
    pub fn chain(&self) -> &[String] {
        &self.chain
    }

    /// Number of scan cells.
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// Width of one test-view pattern: primary inputs plus scanned state.
    pub fn pattern_width(&self) -> usize {
        self.original.inputs().len() + self.chain.len()
    }

    /// Splits a test-view pattern into `(primary inputs, state)` halves.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is not [`ScanDesign::pattern_width`] wide.
    pub fn split_pattern(&self, pattern: &Pattern) -> (Pattern, Pattern) {
        assert_eq!(pattern.len(), self.pattern_width(), "pattern width");
        let pis = self.original.inputs().len();
        (
            Pattern::from_fn(pis, |i| pattern.get(i)),
            Pattern::from_fn(self.chain.len(), |i| pattern.get(pis + i)),
        )
    }

    /// Scan hardware overhead: one 2-to-1 scan mux per flip-flop plus a
    /// scan-enable distribution buffer per 16 cells.
    pub fn scan_overhead_cells(&self) -> CellCount {
        let mut cells = CellCount::new();
        cells.add(CellKind::Mux2, self.chain.len());
        cells.add(CellKind::Buf, self.chain.len().div_ceil(16));
        cells
    }

    /// Scan overhead in mm² under `model`.
    pub fn scan_overhead_mm2(&self, model: &AreaModel) -> f64 {
        model.area_mm2(&self.scan_overhead_cells())
    }

    /// Tester clocks to apply `patterns` test-view patterns through the
    /// chain: each pattern shifts `chain_len` state bits in (primary
    /// inputs are applied in parallel), one capture clock, and the last
    /// response shifts out during the next load — plus one final
    /// `chain_len` unload.
    pub fn clocks_for(&self, patterns: usize) -> u64 {
        let chain = self.chain.len() as u64;
        (patterns as u64) * (chain + 1) + chain
    }

    /// Checks the structural equivalence that makes scan testing sound:
    /// for state `s` and input `x`, the original's combinational step
    /// (outputs and next state) must equal the test view's evaluation of
    /// `(x, s)`. Returns the first mismatch description, or `None` when
    /// `trials` random `(x, s)` pairs all agree.
    pub fn verify(&self, trials: usize, seed: u64) -> Option<String> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let pis = self.original.inputs().len();
        for t in 0..trials {
            let x = Pattern::random(&mut rng, pis);
            let s = Pattern::random(&mut rng, self.chain.len());

            // original: set state, evaluate outputs, clock, read next state
            let mut sim = SeqSim::new(&self.original);
            for (i, name) in self.chain.iter().enumerate() {
                let q = self.original.find(name).expect("chain name exists");
                sim.set_state(q, s.get(i));
            }
            let outs = sim.step(&x.to_bits());
            let next: Vec<bool> = self
                .chain
                .iter()
                .map(|name| sim.state(self.original.find(name).expect("exists")))
                .collect();

            // test view: one combinational evaluation of (x, s)
            let stimulus: Vec<bool> = x.iter().chain(s.iter()).collect();
            let values = bist_logicsim::naive_eval(&self.test_view, &stimulus);
            for (k, &po) in self.original.outputs().iter().enumerate() {
                let name = self.original.node(po).name();
                let tv = self.test_view.find(name).expect("copied node");
                if values[tv.index()] != outs[k] {
                    return Some(format!("trial {t}: output {name} differs"));
                }
            }
            for (i, name) in self.chain.iter().enumerate() {
                let q = self.original.find(name).expect("exists");
                let d = self.original.node(q).fanin()[0];
                let d_name = self.original.node(d).name();
                let tv = self.test_view.find(d_name).expect("copied node");
                if values[tv.index()] != next[i] {
                    return Some(format!("trial {t}: next-state {name} differs"));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::iscas89;

    #[test]
    fn s27_test_view_shape() {
        let s27 = iscas89::s27();
        let scan = ScanDesign::insert(&s27).unwrap();
        assert_eq!(scan.chain_len(), 3);
        assert_eq!(scan.pattern_width(), 7);
        let tv = scan.test_view();
        assert_eq!(tv.inputs().len(), 7);
        // 1 PO + 3 distinct D drivers (G10, G11, G13); G11 also drives
        // G17 but is itself distinct
        assert_eq!(tv.outputs().len(), 4);
        assert_eq!(tv.num_dffs(), 0, "test view is combinational");
    }

    #[test]
    fn s27_view_is_cycle_accurate() {
        let scan = ScanDesign::insert(&iscas89::s27()).unwrap();
        assert_eq!(scan.verify(200, 27), None);
    }

    #[test]
    fn synthetic_profiles_verify() {
        for name in ["s298", "s344", "s641"] {
            let c = iscas89::circuit(name).unwrap();
            let scan = ScanDesign::insert(&c).unwrap();
            assert_eq!(scan.verify(50, 89), None, "{name}");
        }
    }

    #[test]
    fn combinational_circuits_are_rejected() {
        let c17 = bist_netlist::iscas85::c17();
        assert_eq!(
            ScanDesign::insert(&c17).unwrap_err(),
            InsertScanError::NoFlipFlops
        );
    }

    #[test]
    fn overhead_and_test_time_models() {
        let scan = ScanDesign::insert(&iscas89::circuit("s344").unwrap()).unwrap();
        let cells = scan.scan_overhead_cells();
        assert_eq!(cells.get(CellKind::Mux2), 15);
        assert_eq!(cells.get(CellKind::Buf), 1);
        assert!(scan.scan_overhead_mm2(&AreaModel::es2_1um()) > 0.0);
        // 10 patterns through a 15-cell chain: 10*(15+1) + 15
        assert_eq!(scan.clocks_for(10), 175);
        assert_eq!(scan.clocks_for(0), 15);
    }

    #[test]
    fn split_pattern_partitions_correctly() {
        let scan = ScanDesign::insert(&iscas89::s27()).unwrap();
        let p: Pattern = "1010110".parse().unwrap();
        let (x, s) = scan.split_pattern(&p);
        assert_eq!(x.to_string(), "1010");
        assert_eq!(s.to_string(), "110");
    }
}
