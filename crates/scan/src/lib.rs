//! Full-scan insertion for the LFSROM mixed-BIST reproduction.
//!
//! The paper's opening argument is that VLSI testing became tractable by
//! "inserting memory elements on some of the nodes and then connecting
//! these memory elements — in the form of a scan chain" (§1), and its
//! wide-circuit cost accounting assumes patterns are shifted through
//! exactly such a chain (\[Hel92\] note, §4.2). This crate supplies that
//! substrate for *sequential* circuits:
//!
//! * [`ScanDesign::insert`] — full-scan insertion: every flip-flop
//!   becomes a mux-scan cell on one chain.
//! * [`ScanDesign::test_view`] — the combinational test view (state in,
//!   next-state out) that the whole workspace — fault models, PPSFP,
//!   PODEM, the mixed scheme, LFSROM synthesis — consumes unchanged.
//! * [`ScanDesign::verify`] — randomized cycle-accurate equivalence
//!   between the sequential original and the test view.
//! * [`ScanDesign::scan_overhead_cells`] / [`ScanDesign::clocks_for`] —
//!   the silicon and test-time prices of the chain, so mixed-scheme
//!   trade-offs can be quoted in tester clocks, not just pattern counts.
//!
//! # Example: the full mixed flow on a sequential circuit
//!
//! ```
//! use bist_scan::ScanDesign;
//!
//! let s27 = bist_netlist::iscas89::s27();
//! let scan = ScanDesign::insert(&s27)?;
//! assert_eq!(scan.verify(100, 7), None); // test view is cycle-accurate
//!
//! // any combinational engine now applies to scan.test_view(); pattern
//! // counts convert to tester clocks through the chain:
//! assert_eq!(scan.clocks_for(100), 100 * (3 + 1) + 3);
//! # Ok::<(), bist_scan::InsertScanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;

pub use design::{InsertScanError, ScanDesign};
