use std::collections::BTreeMap;
use std::fmt;

use bist_netlist::{Circuit, GateKind};

/// The 2-input standard-cell alphabet every netlist is mapped onto before
/// area estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-to-1 multiplexer.
    Mux2,
    /// D flip-flop.
    Dff,
    /// One bit of a mask-programmed ROM array (transistor + its share of
    /// word/bit lines; the row decoder and counter are costed as ordinary
    /// gates). Roughly an order of magnitude denser than random logic —
    /// which is exactly why the paper calls the counter-addressed ROM "the
    /// most efficient of the TPG architectures" that nevertheless
    /// "requires too much hardware" once the array grows with `d·w`.
    RomBit,
}

impl CellKind {
    /// All cell kinds, for iteration.
    pub const ALL: [CellKind; 11] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Dff,
        CellKind::RomBit,
    ];
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "ND2",
            CellKind::Nor2 => "NR2",
            CellKind::And2 => "AN2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XO2",
            CellKind::Xnor2 => "XN2",
            CellKind::Mux2 => "MX2",
            CellKind::Dff => "DFF",
            CellKind::RomBit => "ROMB",
        };
        f.write_str(s)
    }
}

/// A bag of standard cells (the technology-mapped form of a netlist).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CellCount {
    counts: BTreeMap<CellKind, usize>,
}

impl CellCount {
    /// The empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` cells of `kind`.
    pub fn add(&mut self, kind: CellKind, n: usize) {
        if n > 0 {
            *self.counts.entry(kind).or_insert(0) += n;
        }
    }

    /// Number of cells of `kind`.
    pub fn get(&self, kind: CellKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total cell count.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Iterates over `(kind, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellKind, usize)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// Merges another bag into this one.
    pub fn merge(&mut self, other: &CellCount) {
        for (k, c) in other.iter() {
            self.add(k, c);
        }
    }
}

impl fmt::Display for CellCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.iter().map(|(k, c)| format!("{k}:{c}")).collect();
        write!(f, "{}", parts.join(" "))
    }
}

/// Maps a gate-level netlist onto the 2-input cell alphabet.
///
/// Wide gates decompose into trees: a `k`-input AND costs `k−1` AND2
/// cells; a `k`-input NAND costs `k−2` AND2 plus a final NAND2, and
/// likewise for the OR/NOR and XOR/XNOR families. Inputs and constants are
/// free.
pub fn count_cells(circuit: &Circuit) -> CellCount {
    let mut cells = CellCount::new();
    for node in circuit.nodes() {
        let k = node.fanin().len();
        match node.kind() {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => {}
            GateKind::Dff => cells.add(CellKind::Dff, 1),
            GateKind::Buf => cells.add(CellKind::Buf, 1),
            GateKind::Not => cells.add(CellKind::Inv, 1),
            GateKind::And => {
                if k == 1 {
                    cells.add(CellKind::Buf, 1);
                } else {
                    cells.add(CellKind::And2, k - 1);
                }
            }
            GateKind::Or => {
                if k == 1 {
                    cells.add(CellKind::Buf, 1);
                } else {
                    cells.add(CellKind::Or2, k - 1);
                }
            }
            GateKind::Nand => {
                if k == 1 {
                    cells.add(CellKind::Inv, 1);
                } else {
                    cells.add(CellKind::And2, k - 2);
                    cells.add(CellKind::Nand2, 1);
                }
            }
            GateKind::Nor => {
                if k == 1 {
                    cells.add(CellKind::Inv, 1);
                } else {
                    cells.add(CellKind::Or2, k - 2);
                    cells.add(CellKind::Nor2, 1);
                }
            }
            GateKind::Xor => {
                if k == 1 {
                    cells.add(CellKind::Buf, 1);
                } else {
                    cells.add(CellKind::Xor2, k - 1);
                }
            }
            GateKind::Xnor => {
                if k == 1 {
                    cells.add(CellKind::Inv, 1);
                } else {
                    cells.add(CellKind::Xor2, k - 2);
                    cells.add(CellKind::Xnor2, 1);
                }
            }
        }
    }
    cells
}

/// ES2-1µm-style standard-cell area model: per-cell areas in µm² plus a
/// routing/overhead multiplier.
///
/// Calibrated against the paper's two published absolute anchors (see
/// `DESIGN.md` §5):
///
/// * a 16-bit LFSR (16 DFF + 3 XOR2) costs ≈ 0.25 mm²,
/// * the C3540-profile netlist (1 669 gates) costs ≈ 3.8 mm².
///
/// All experiment outputs are *relative* silicon costs, which survive any
/// uniform miscalibration.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    areas_um2: BTreeMap<CellKind, f64>,
    routing_factor: f64,
}

impl AreaModel {
    /// The calibrated ES2-1µm-style model used throughout the
    /// reproduction.
    pub fn es2_1um() -> Self {
        let mut areas_um2 = BTreeMap::new();
        areas_um2.insert(CellKind::Inv, 450.0);
        areas_um2.insert(CellKind::Buf, 550.0);
        areas_um2.insert(CellKind::Nand2, 700.0);
        areas_um2.insert(CellKind::Nor2, 700.0);
        areas_um2.insert(CellKind::And2, 850.0);
        areas_um2.insert(CellKind::Or2, 850.0);
        areas_um2.insert(CellKind::Xor2, 2400.0);
        areas_um2.insert(CellKind::Xnor2, 2400.0);
        areas_um2.insert(CellKind::Mux2, 1750.0);
        areas_um2.insert(CellKind::Dff, 8970.0);
        areas_um2.insert(CellKind::RomBit, 120.0);
        AreaModel {
            areas_um2,
            routing_factor: 1.55,
        }
    }

    /// A custom model (for sensitivity studies).
    pub fn with_areas(areas_um2: BTreeMap<CellKind, f64>, routing_factor: f64) -> Self {
        AreaModel {
            areas_um2,
            routing_factor,
        }
    }

    /// The routing/overhead multiplier.
    pub fn routing_factor(&self) -> f64 {
        self.routing_factor
    }

    /// The bare cell area of `kind` in µm².
    pub fn cell_area_um2(&self, kind: CellKind) -> f64 {
        self.areas_um2.get(&kind).copied().unwrap_or(0.0)
    }

    /// Area of a cell bag in mm², routing included.
    pub fn area_mm2(&self, cells: &CellCount) -> f64 {
        let um2: f64 = cells
            .iter()
            .map(|(k, c)| self.cell_area_um2(k) * c as f64)
            .sum();
        um2 * self.routing_factor / 1.0e6
    }

    /// Area of a netlist in mm² (maps it with [`count_cells`] first).
    pub fn circuit_area_mm2(&self, circuit: &Circuit) -> f64 {
        self.area_mm2(&count_cells(circuit))
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::es2_1um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_maps_to_six_nand2() {
        let cells = count_cells(&bist_netlist::iscas85::c17());
        assert_eq!(cells.get(CellKind::Nand2), 6);
        assert_eq!(cells.total(), 6);
    }

    #[test]
    fn wide_gates_decompose() {
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("wide");
        for i in 0..5 {
            b.add_input(&format!("i{i}")).unwrap();
        }
        b.add_gate("y", GateKind::Nand, &["i0", "i1", "i2", "i3", "i4"])
            .unwrap();
        b.mark_output("y").unwrap();
        let cells = count_cells(&b.build().unwrap());
        assert_eq!(cells.get(CellKind::And2), 3);
        assert_eq!(cells.get(CellKind::Nand2), 1);
    }

    #[test]
    fn lfsr16_anchor_holds() {
        // 16 DFF + 3 XOR2 must land close to the paper's 0.25 mm²
        let mut cells = CellCount::new();
        cells.add(CellKind::Dff, 16);
        cells.add(CellKind::Xor2, 3);
        let model = AreaModel::es2_1um();
        let mm2 = model.area_mm2(&cells);
        assert!(
            (0.22..=0.28).contains(&mm2),
            "LFSR-16 anchor off: {mm2:.3} mm²"
        );
    }

    #[test]
    fn c3540_nominal_anchor_holds() {
        let c = bist_netlist::iscas85::circuit("c3540").unwrap();
        let mm2 = AreaModel::es2_1um().circuit_area_mm2(&c);
        assert!(
            (3.2..=4.4).contains(&mm2),
            "C3540 nominal anchor off: {mm2:.3} mm² (paper: 3.8)"
        );
    }

    #[test]
    fn merge_and_totals() {
        let mut a = CellCount::new();
        a.add(CellKind::Inv, 2);
        let mut b = CellCount::new();
        b.add(CellKind::Inv, 3);
        b.add(CellKind::Dff, 1);
        a.merge(&b);
        assert_eq!(a.get(CellKind::Inv), 5);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn display_formats() {
        let mut c = CellCount::new();
        c.add(CellKind::Dff, 2);
        c.add(CellKind::Inv, 1);
        assert_eq!(c.to_string(), "INV:1 DFF:2");
    }
}
