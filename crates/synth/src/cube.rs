use std::fmt;

use bist_logicsim::Pattern;

/// A product term (cube) over `width` boolean variables, stored as two
/// multi-word literal masks: `pos` marks variables appearing as positive
/// literals, `neg` as negative literals. A variable in neither mask is
/// absent (don't-care within the cube).
///
/// # Example
///
/// ```
/// use bist_synth::Cube;
///
/// let minterm: bist_logicsim::Pattern = "101".parse()?;
/// let mut cube = Cube::from_minterm(&minterm); // a·b̄·c
/// assert_eq!(cube.num_literals(), 3);
/// cube.remove_literal(1);
/// assert_eq!(cube.num_literals(), 2); // a·c
/// assert!(cube.contains(&"101".parse()?));
/// assert!(cube.contains(&"111".parse()?));
/// assert!(!cube.contains(&"011".parse()?));
/// # Ok::<(), bist_logicsim::ParsePatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    width: usize,
    pos: Vec<u64>,
    neg: Vec<u64>,
}

impl Cube {
    /// The cube covering the whole space (no literals).
    pub fn universe(width: usize) -> Self {
        let words = width.div_ceil(64);
        Cube {
            width,
            pos: vec![0; words],
            neg: vec![0; words],
        }
    }

    /// The full minterm cube of `pattern` (every variable a literal).
    pub fn from_minterm(pattern: &Pattern) -> Self {
        let width = pattern.len();
        let mut cube = Cube::universe(width);
        for i in 0..width {
            if pattern.get(i) {
                cube.pos[i / 64] |= 1 << (i % 64);
            } else {
                cube.neg[i / 64] |= 1 << (i % 64);
            }
        }
        cube
    }

    /// Number of variables of the underlying space.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The polarity of variable `var` inside the cube (`None` if absent).
    pub fn literal(&self, var: usize) -> Option<bool> {
        assert!(var < self.width, "variable {var} out of range");
        if (self.pos[var / 64] >> (var % 64)) & 1 == 1 {
            Some(true)
        } else if (self.neg[var / 64] >> (var % 64)) & 1 == 1 {
            Some(false)
        } else {
            None
        }
    }

    /// Sets variable `var` to the given polarity.
    pub fn set_literal(&mut self, var: usize, polarity: bool) {
        assert!(var < self.width, "variable {var} out of range");
        let (w, b) = (var / 64, 1u64 << (var % 64));
        if polarity {
            self.pos[w] |= b;
            self.neg[w] &= !b;
        } else {
            self.neg[w] |= b;
            self.pos[w] &= !b;
        }
    }

    /// Drops variable `var` from the cube (expanding it).
    pub fn remove_literal(&mut self, var: usize) {
        assert!(var < self.width, "variable {var} out of range");
        let (w, b) = (var / 64, 1u64 << (var % 64));
        self.pos[w] &= !b;
        self.neg[w] &= !b;
    }

    /// Number of literals in the cube.
    pub fn num_literals(&self) -> usize {
        self.pos
            .iter()
            .chain(self.neg.iter())
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Iterates over `(variable, polarity)` literals.
    pub fn literals(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        (0..self.width).filter_map(|v| self.literal(v).map(|p| (v, p)))
    }

    /// True if `minterm` satisfies every literal of the cube.
    pub fn contains(&self, minterm: &Pattern) -> bool {
        assert_eq!(minterm.len(), self.width, "minterm width mismatch");
        for v in 0..self.width {
            match self.literal(v) {
                Some(p) if minterm.get(v) != p => return false,
                _ => {}
            }
        }
        true
    }

    /// True if every minterm of `other` is contained in `self`
    /// (single-cube containment check).
    pub fn covers_cube(&self, other: &Cube) -> bool {
        assert_eq!(self.width, other.width);
        for (w, (&sp, &sn)) in self.pos.iter().zip(&self.neg).enumerate() {
            // every literal of self must appear in other with same polarity
            if sp & !other.pos[w] != 0 || sn & !other.neg[w] != 0 {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Cube {
    /// PLA-style row: `1` positive, `0` negative, `-` absent.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in 0..self.width {
            let c = match self.literal(v) {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_round_trip() {
        let p: Pattern = "0110".parse().unwrap();
        let c = Cube::from_minterm(&p);
        assert_eq!(c.num_literals(), 4);
        assert_eq!(c.to_string(), "0110");
        assert!(c.contains(&p));
        assert!(!c.contains(&"0111".parse().unwrap()));
    }

    #[test]
    fn expansion_grows_containment() {
        let p: Pattern = "0110".parse().unwrap();
        let mut c = Cube::from_minterm(&p);
        c.remove_literal(0);
        assert_eq!(c.to_string(), "-110");
        assert!(c.contains(&"1110".parse().unwrap()));
        assert!(c.contains(&"0110".parse().unwrap()));
        assert!(!c.contains(&"0100".parse().unwrap()));
    }

    #[test]
    fn universe_contains_everything() {
        let u = Cube::universe(7);
        assert_eq!(u.num_literals(), 0);
        assert!(u.contains(&"1010101".parse().unwrap()));
        assert_eq!(u.to_string(), "-------");
    }

    #[test]
    fn covers_cube_ordering() {
        let big: Cube = {
            let mut c = Cube::from_minterm(&"110".parse().unwrap());
            c.remove_literal(2);
            c
        };
        let small = Cube::from_minterm(&"110".parse().unwrap());
        assert!(big.covers_cube(&small));
        assert!(!small.covers_cube(&big));
        assert!(big.covers_cube(&big));
    }

    #[test]
    fn set_literal_flips_polarity() {
        let mut c = Cube::universe(3);
        c.set_literal(1, true);
        assert_eq!(c.literal(1), Some(true));
        c.set_literal(1, false);
        assert_eq!(c.literal(1), Some(false));
        assert_eq!(c.num_literals(), 1);
    }

    #[test]
    fn wide_cubes_cross_word_boundaries() {
        let p = Pattern::from_fn(130, |i| i % 3 == 0);
        let c = Cube::from_minterm(&p);
        assert_eq!(c.num_literals(), 130);
        assert_eq!(c.literal(129), Some(p.get(129)));
        assert!(c.contains(&p));
    }
}
