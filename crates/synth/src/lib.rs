//! Two-level logic synthesis and silicon-area estimation for the LFSROM
//! mixed-BIST reproduction.
//!
//! The paper costs its generators by synthesizing VHDL with the COMPASS
//! ASIC Synthesizer and reading the Design Assistant's area estimate for
//! an ES2 1 µm standard-cell process (its §4.1, ±5 % accuracy). This crate
//! rebuilds that tool chain for the structures at hand:
//!
//! * [`Cube`] / [`OutputSpec`] — cube calculus over wide (multi-word)
//!   input spaces,
//! * [`synthesize_pla`] — espresso-style two-level minimization (EXPAND
//!   against the off-set with single-pass greedy literal removal, greedy
//!   irredundant cover, cross-output term sharing). The LFSROM's enormous
//!   don't-care set — only the `d` sequence states are care terms out of
//!   `2^w` — is what this stage exploits,
//! * [`TwoLevelNetwork`] — the result: shared AND terms, OR planes per
//!   output, evaluation, netlist emission,
//! * [`AreaModel`] / [`CellCount`] — gate-level technology mapping onto a
//!   2-input cell library with an ES2-1µm-style area table, calibrated to
//!   the paper's two published anchors (LFSR-16 = 0.25 mm², C3540 nominal
//!   = 3.8 mm²; see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use bist_logicsim::Pattern;
//! use bist_synth::{synthesize_pla, OutputSpec};
//!
//! // y = 1 for 11x, 0 for 00x; everything else don't-care
//! let spec = OutputSpec {
//!     on: vec!["110".parse()?, "111".parse()?],
//!     off: vec!["000".parse()?, "001".parse()?],
//! };
//! let net = synthesize_pla(3, &[spec]);
//! assert_eq!(net.num_terms(), 1); // collapses to a single literal "a"
//! # Ok::<(), bist_logicsim::ParsePatternError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod cube;
mod minimize;
mod network;

pub use area::{count_cells, AreaModel, CellCount, CellKind};
pub use cube::Cube;
pub use minimize::{
    minimize_single_output, synthesize_pla, synthesize_pla_with, OutputSpec, SynthesisOptions,
};
pub use network::TwoLevelNetwork;
