// determinism-vetted: both hash maps below deduplicate/index cubes via
// entry()/insert() in minterm order and are never iterated
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

use bist_logicsim::Pattern;

use crate::cube::Cube;
use crate::network::{OutputFunc, TwoLevelNetwork};

/// Care-set specification of one output: minterms that must evaluate to 1
/// (`on`) and to 0 (`off`); *everything else is a don't-care*.
///
/// This is exactly the LFSROM situation: of the `2^w` possible register
/// states only the `d` sequence states are ever visited, so `on.len() +
/// off.len() == d` and the minimizer has an astronomically large don't-care
/// set to expand into.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutputSpec {
    /// Minterms where the output must be 1.
    pub on: Vec<Pattern>,
    /// Minterms where the output must be 0.
    pub off: Vec<Pattern>,
}

/// Tuning knobs for [`synthesize_pla`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisOptions {
    /// Reuse product terms across outputs (PLA-style sharing). Disabling
    /// this is the ablation knob for the paper's cost model: each output
    /// then pays for its own terms.
    pub share_terms: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions { share_terms: true }
    }
}

/// Transposed view of a minterm set: one multi-word bit column per
/// variable, bit `j` of column `v` being minterm `j`'s value of variable
/// `v`. Expansion tests become word-parallel AND chains over columns.
struct Columns {
    cols: Vec<Vec<u64>>,
    valid: Vec<u64>,
    words: usize,
}

impl Columns {
    fn new(width: usize, minterms: &[Pattern]) -> Self {
        let words = minterms.len().div_ceil(64).max(1);
        let mut cols = vec![vec![0u64; words]; width];
        for (j, m) in minterms.iter().enumerate() {
            for (v, col) in cols.iter_mut().enumerate() {
                if m.get(v) {
                    col[j / 64] |= 1 << (j % 64);
                }
            }
        }
        let mut valid = vec![0u64; words];
        for j in 0..minterms.len() {
            valid[j / 64] |= 1 << (j % 64);
        }
        Columns { cols, valid, words }
    }

    /// The mask of minterms *agreeing* with literal `(var, polarity)`.
    fn agree(&self, var: usize, polarity: bool, out: &mut [u64]) {
        for (w, slot) in out.iter_mut().enumerate().take(self.words) {
            let c = self.cols[var][w];
            *slot = if polarity { c } else { !c } & self.valid[w];
        }
    }
}

/// Expands the minterm `m` against the off-set (single greedy pass):
/// literals are dropped, in rotated order, whenever the grown cube still
/// avoids every off minterm.
fn expand_minterm(width: usize, m: &Pattern, off: &Columns, rotation: usize) -> Cube {
    let words = off.words;
    // agree masks per variable for this minterm's literals
    let mut agree = vec![vec![0u64; words]; width];
    for (v, mask) in agree.iter_mut().enumerate() {
        off.agree(v, m.get(v), mask);
    }
    let order: Vec<usize> = (0..width).map(|i| (i + rotation) % width).collect();
    // suffix[k] = AND of agree[order[k..]]
    let mut suffix = vec![vec![!0u64; words]; width + 1];
    for k in (0..width).rev() {
        for w in 0..words {
            suffix[k][w] = suffix[k + 1][w] & agree[order[k]][w];
        }
    }
    let mut prefix = vec![!0u64; words];
    let mut cube = Cube::from_minterm(m);
    for (k, &v) in order.iter().enumerate() {
        // can we drop literal v? the cube would cover an off minterm only
        // if all *other* kept literals still agree with it somewhere
        let mut covers_off = false;
        for w in 0..words {
            if prefix[w] & suffix[k + 1][w] & off.valid[w] != 0 {
                covers_off = true;
                break;
            }
        }
        if covers_off {
            // must keep literal v
            for w in 0..words {
                prefix[w] &= agree[v][w];
            }
        } else {
            cube.remove_literal(v);
        }
    }
    cube
}

/// Minimizes a single output: expanded cubes + greedy irredundant cover.
/// Returns the selected cubes.
///
/// # Panics
///
/// Panics if the on- and off-sets intersect (an inconsistent
/// specification) or if any minterm width differs from `width`.
pub fn minimize_single_output(width: usize, spec: &OutputSpec) -> Vec<Cube> {
    let candidates = expand_all(width, spec);
    greedy_cover(&spec.on, candidates)
}

fn expand_all(width: usize, spec: &OutputSpec) -> Vec<Cube> {
    for m in spec.on.iter().chain(&spec.off) {
        assert_eq!(m.len(), width, "minterm width mismatch");
    }
    let off = Columns::new(width, &spec.off);
    #[allow(clippy::disallowed_types)]
    let mut seen = HashMap::new();
    let mut candidates = Vec::new();
    for (j, m) in spec.on.iter().enumerate() {
        debug_assert!(
            !spec.off.contains(m),
            "minterm {m} appears in both on- and off-set"
        );
        let cube = expand_minterm(width, m, &off, j % width.max(1));
        if seen.insert(cube.clone(), true).is_none() {
            candidates.push(cube);
        }
    }
    candidates
}

/// Greedy set cover of the on-set by candidate cubes.
fn greedy_cover(on: &[Pattern], candidates: Vec<Cube>) -> Vec<Cube> {
    let mut covered = vec![false; on.len()];
    let mut cover_sets: Vec<Vec<usize>> = candidates
        .iter()
        .map(|c| {
            on.iter()
                .enumerate()
                .filter(|(_, m)| c.contains(m))
                .map(|(j, _)| j)
                .collect()
        })
        .collect();
    let mut selected = Vec::new();
    let mut remaining = on.len();
    while remaining > 0 {
        let (best, _) = cover_sets
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.iter().filter(|&&j| !covered[j]).count())
            .expect("on-set non-empty implies candidates exist");
        let gain: Vec<usize> = cover_sets[best]
            .iter()
            .copied()
            .filter(|&j| !covered[j])
            .collect();
        assert!(!gain.is_empty(), "cover stalled: inconsistent candidates");
        for j in gain {
            covered[j] = true;
            remaining -= 1;
        }
        selected.push(candidates[best].clone());
        cover_sets[best].clear();
    }
    selected
}

/// Synthesizes a multi-output two-level network with default options.
///
/// `specs[o]` describes output `o`; all minterms are `width` bits wide.
/// See [`OutputSpec`] for the don't-care convention and
/// [`synthesize_pla_with`] for the option knobs.
pub fn synthesize_pla(width: usize, specs: &[OutputSpec]) -> TwoLevelNetwork {
    synthesize_pla_with(width, specs, SynthesisOptions::default())
}

/// Synthesizes a multi-output two-level network.
///
/// With `share_terms`, a product term selected for one output is offered to
/// later outputs (when compatible with their off-sets), modelling PLA-style
/// AND-plane sharing.
///
/// # Panics
///
/// Panics on inconsistent specifications (a minterm in both the on- and
/// off-set of one output).
pub fn synthesize_pla_with(
    width: usize,
    specs: &[OutputSpec],
    options: SynthesisOptions,
) -> TwoLevelNetwork {
    let mut terms: Vec<Cube> = Vec::new();
    #[allow(clippy::disallowed_types)]
    let mut term_index: HashMap<Cube, usize> = HashMap::new();
    let mut outputs = Vec::with_capacity(specs.len());

    for spec in specs {
        if spec.on.is_empty() {
            outputs.push(OutputFunc::Const(false));
            continue;
        }
        if spec.off.is_empty() {
            outputs.push(OutputFunc::Const(true));
            continue;
        }
        let mut candidates = expand_all(width, spec);
        if options.share_terms {
            // offer previously selected terms that avoid this off-set and
            // cover something from this on-set
            for t in &terms {
                if spec.off.iter().all(|m| !t.contains(m))
                    && spec.on.iter().any(|m| t.contains(m))
                    && !candidates.contains(t)
                {
                    candidates.push(t.clone());
                }
            }
        }
        let selected = greedy_cover(&spec.on, candidates);
        let mut indices = Vec::with_capacity(selected.len());
        for cube in selected {
            let idx = if options.share_terms {
                *term_index.entry(cube.clone()).or_insert_with(|| {
                    terms.push(cube.clone());
                    terms.len() - 1
                })
            } else {
                terms.push(cube.clone());
                terms.len() - 1
            };
            indices.push(idx);
        }
        indices.sort_unstable();
        indices.dedup();
        outputs.push(OutputFunc::Terms(indices));
    }
    TwoLevelNetwork::new(width, terms, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn single_literal_collapse() {
        // on = {110, 111}, off = {000, 001}: variable 0 separates them.
        let spec = OutputSpec {
            on: vec![p("110"), p("111")],
            off: vec![p("000"), p("001")],
        };
        let cubes = minimize_single_output(3, &spec);
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].num_literals(), 1);
    }

    #[test]
    fn cover_is_correct_on_all_care_minterms() {
        let spec = OutputSpec {
            on: vec![p("0011"), p("1011"), p("1110")],
            off: vec![p("0000"), p("1000"), p("0110")],
        };
        let cubes = minimize_single_output(4, &spec);
        for m in &spec.on {
            assert!(cubes.iter().any(|c| c.contains(m)), "uncovered on {m}");
        }
        for m in &spec.off {
            assert!(cubes.iter().all(|c| !c.contains(m)), "off violated {m}");
        }
    }

    #[test]
    fn dont_cares_shrink_the_cover() {
        // with a full truth table (no DCs) the parity function needs 2^{n-1}
        // terms; with only 2 care minterms it needs 1.
        let spec = OutputSpec {
            on: vec![p("10101010")],
            off: vec![p("01010101")],
        };
        let cubes = minimize_single_output(8, &spec);
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].num_literals(), 1, "one literal distinguishes them");
    }

    #[test]
    fn constant_outputs() {
        let net = synthesize_pla(
            3,
            &[
                OutputSpec {
                    on: vec![],
                    off: vec![p("000")],
                },
                OutputSpec {
                    on: vec![p("000")],
                    off: vec![],
                },
            ],
        );
        assert_eq!(net.eval(&p("101")).to_string(), "01");
    }

    #[test]
    fn sharing_reuses_terms() {
        // two outputs with identical care specs share their single term
        let spec = OutputSpec {
            on: vec![p("110"), p("111")],
            off: vec![p("000")],
        };
        let shared = synthesize_pla(3, &[spec.clone(), spec.clone()]);
        assert_eq!(shared.num_terms(), 1);
        let unshared = synthesize_pla_with(
            3,
            &[spec.clone(), spec],
            SynthesisOptions { share_terms: false },
        );
        assert_eq!(unshared.num_terms(), 2);
    }

    #[test]
    fn random_specs_evaluate_correctly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let width = rng.gen_range(4..40);
            let count = rng.gen_range(2..30);
            let mut minterms: Vec<Pattern> = Vec::new();
            while minterms.len() < count {
                let m = Pattern::random(&mut rng, width);
                if !minterms.contains(&m) {
                    minterms.push(m);
                }
            }
            let split = rng.gen_range(1..minterms.len());
            let spec = OutputSpec {
                on: minterms[..split].to_vec(),
                off: minterms[split..].to_vec(),
            };
            let net = synthesize_pla(width, std::slice::from_ref(&spec));
            for m in &spec.on {
                assert!(net.eval(m).get(0), "trial {trial}: on {m} evaluated 0");
            }
            for m in &spec.off {
                assert!(!net.eval(m).get(0), "trial {trial}: off {m} evaluated 1");
            }
        }
    }
}
