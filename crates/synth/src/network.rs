use std::fmt;

use bist_logicsim::Pattern;
use bist_netlist::{BuildCircuitError, CircuitBuilder, GateKind};

use crate::cube::Cube;

/// The function of one network output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputFunc {
    /// Constant output (an output whose care set was one-sided).
    Const(bool),
    /// OR of the listed product terms (indices into the shared term pool).
    Terms(Vec<usize>),
}

/// A multi-output two-level (AND-OR) network with a shared product-term
/// pool — the synthesized "OR2 network" of the LFSROM figures.
///
/// Obtained from [`synthesize_pla`](crate::synthesize_pla); evaluable in
/// software ([`TwoLevelNetwork::eval`]) and emittable as structural gates
/// into a [`CircuitBuilder`] ([`TwoLevelNetwork::emit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoLevelNetwork {
    width: usize,
    terms: Vec<Cube>,
    outputs: Vec<OutputFunc>,
}

impl TwoLevelNetwork {
    /// Assembles a network from parts (used by the synthesizer).
    pub fn new(width: usize, terms: Vec<Cube>, outputs: Vec<OutputFunc>) -> Self {
        TwoLevelNetwork {
            width,
            terms,
            outputs,
        }
    }

    /// Number of input variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of distinct product terms in the AND plane.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The product terms.
    pub fn terms(&self) -> &[Cube] {
        &self.terms
    }

    /// The output functions.
    pub fn outputs(&self) -> &[OutputFunc] {
        &self.outputs
    }

    /// Total number of AND-plane literals.
    pub fn num_literals(&self) -> usize {
        self.terms.iter().map(Cube::num_literals).sum()
    }

    /// Total number of OR-plane connections.
    pub fn or_plane_size(&self) -> usize {
        self.outputs
            .iter()
            .map(|o| match o {
                OutputFunc::Const(_) => 0,
                OutputFunc::Terms(t) => t.len(),
            })
            .sum()
    }

    /// Evaluates the network on one input pattern; returns one bit per
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches.
    pub fn eval(&self, input: &Pattern) -> Pattern {
        assert_eq!(input.len(), self.width, "input width mismatch");
        let term_values: Vec<bool> = self.terms.iter().map(|t| t.contains(input)).collect();
        Pattern::from_fn(self.outputs.len(), |o| match &self.outputs[o] {
            OutputFunc::Const(b) => *b,
            OutputFunc::Terms(ts) => ts.iter().any(|&t| term_values[t]),
        })
    }

    /// Emits the network as structural gates.
    ///
    /// `inputs[v]` names the node driving variable `v`; created node names
    /// are prefixed with `prefix`. Inverters are shared per variable; terms
    /// and outputs become (wide) `AND`/`OR` gates that the area model
    /// decomposes into 2-input cells. Returns the created output node
    /// names, one per network output.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildCircuitError`] (e.g. name collisions with existing
    /// nodes).
    pub fn emit(
        &self,
        builder: &mut CircuitBuilder,
        inputs: &[&str],
        prefix: &str,
    ) -> Result<Vec<String>, BuildCircuitError> {
        assert_eq!(inputs.len(), self.width, "input name count mismatch");
        // shared inverters for variables used negatively
        let mut inv_name: Vec<Option<String>> = vec![None; self.width];
        for term in &self.terms {
            for (v, pol) in term.literals() {
                if !pol && inv_name[v].is_none() {
                    let name = format!("{prefix}_inv{v}");
                    builder.add_gate(&name, GateKind::Not, &[inputs[v]])?;
                    inv_name[v] = Some(name);
                }
            }
        }
        // product terms
        let mut term_names: Vec<String> = Vec::with_capacity(self.terms.len());
        for (ti, term) in self.terms.iter().enumerate() {
            let lits: Vec<String> = term
                .literals()
                .map(|(v, pol)| {
                    if pol {
                        inputs[v].to_owned()
                    } else {
                        inv_name[v].clone().expect("inverter emitted above")
                    }
                })
                .collect();
            let name = format!("{prefix}_t{ti}");
            match lits.len() {
                0 => {
                    builder.add_gate(&name, GateKind::Const1, &[])?;
                }
                1 => {
                    builder.add_gate(&name, GateKind::Buf, &[&lits[0]])?;
                }
                _ => {
                    let refs: Vec<&str> = lits.iter().map(String::as_str).collect();
                    builder.add_gate(&name, GateKind::And, &refs)?;
                }
            }
            term_names.push(name);
        }
        // outputs
        let mut out_names = Vec::with_capacity(self.outputs.len());
        for (o, func) in self.outputs.iter().enumerate() {
            let name = format!("{prefix}_y{o}");
            match func {
                OutputFunc::Const(false) => {
                    builder.add_gate(&name, GateKind::Const0, &[])?;
                }
                OutputFunc::Const(true) => {
                    builder.add_gate(&name, GateKind::Const1, &[])?;
                }
                OutputFunc::Terms(ts) if ts.len() == 1 => {
                    builder.add_gate(&name, GateKind::Buf, &[&term_names[ts[0]]])?;
                }
                OutputFunc::Terms(ts) => {
                    let refs: Vec<&str> = ts.iter().map(|&t| term_names[t].as_str()).collect();
                    builder.add_gate(&name, GateKind::Or, &refs)?;
                }
            }
            out_names.push(name);
        }
        Ok(out_names)
    }
}

impl fmt::Display for TwoLevelNetwork {
    /// PLA-table style dump.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            ".i {} .o {} .p {}",
            self.width,
            self.outputs.len(),
            self.terms.len()
        )?;
        for (ti, term) in self.terms.iter().enumerate() {
            let uses: String = self
                .outputs
                .iter()
                .map(|o| match o {
                    OutputFunc::Terms(ts) if ts.contains(&ti) => '1',
                    _ => '0',
                })
                .collect();
            writeln!(f, "{term} {uses}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize::{synthesize_pla, OutputSpec};
    use bist_logicsim::naive_eval;

    fn p(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    fn sample_network() -> TwoLevelNetwork {
        synthesize_pla(
            3,
            &[
                OutputSpec {
                    on: vec![p("110"), p("111")],
                    off: vec![p("000"), p("010")],
                },
                OutputSpec {
                    on: vec![p("001")],
                    off: vec![p("110")],
                },
            ],
        )
    }

    #[test]
    fn emit_matches_eval() {
        let net = sample_network();
        let mut b = CircuitBuilder::new("pla");
        b.add_input("x0").unwrap();
        b.add_input("x1").unwrap();
        b.add_input("x2").unwrap();
        let outs = net.emit(&mut b, &["x0", "x1", "x2"], "pla").unwrap();
        for o in &outs {
            b.mark_output(o).unwrap();
        }
        let circuit = b.build().unwrap();
        for v in 0u32..8 {
            let input = Pattern::from_fn(3, |i| (v >> i) & 1 == 1);
            let sw = net.eval(&input);
            let hw = naive_eval(&circuit, &input.to_bits());
            for (o, name) in outs.iter().enumerate() {
                let id = circuit.find(name).unwrap();
                assert_eq!(hw[id.index()], sw.get(o), "input {input} output {o}");
            }
        }
    }

    #[test]
    fn stats_are_consistent() {
        let net = sample_network();
        assert!(net.num_terms() >= 1);
        assert!(net.num_literals() >= net.num_terms());
        assert!(net.or_plane_size() >= net.num_outputs() - 1);
    }

    #[test]
    fn display_is_pla_like() {
        let net = sample_network();
        let text = net.to_string();
        assert!(text.starts_with(".i 3 .o 2"));
        assert!(text.lines().count() == net.num_terms() + 1);
    }
}
