//! The unified test-pattern-generator face of the workspace.
//!
//! Every BIST TPG architecture in this repository — the paper's LFSROM
//! and shared-register mixed generator, the bare LFSR, and all the
//! surveyed baselines (ROM+counter, counter+PLA, cellular automata,
//! weighted LFSR, reseeding) — answers the same two questions: *what
//! sequence does the hardware emit* and *what does the hardware cost*.
//! The [`Tpg`] trait captures exactly that face, object-safely, so
//! bake-offs, area tables and HDL emission consume one interface instead
//! of per-type adapters:
//!
//! * [`Tpg::sequence`] / [`Tpg::test_length`] / [`Tpg::width`] — the
//!   emitted pattern stream;
//! * [`Tpg::cells`] / [`Tpg::area_mm2`] — the silicon inventory and its
//!   cost under any [`AreaModel`];
//! * [`Tpg::netlist`] / [`Tpg::replay_netlist`] — the structural
//!   hardware, where one exists, with a cycle-accurate replay of the
//!   sequence it emits;
//! * [`Tpg::emit_verilog`] / [`Tpg::emit_vhdl`] — blanket HDL emission
//!   through [`bist_hdl`] for every implementor that carries a netlist.
//!
//! This crate also hosts the two architectures that have no crate of
//! their own: [`PlainLfsr`] (the paper's pseudo-random extreme) and the
//! direct [`Tpg`] implementation for
//! [`LfsromGenerator`] (the deterministic
//! extreme).
//!
//! # Example
//!
//! ```
//! use bist_tpg::{PlainLfsr, Tpg};
//! use bist_synth::AreaModel;
//!
//! let tpg = PlainLfsr::new(bist_lfsr::paper_poly(), 1, 20, 50);
//! let generators: Vec<&dyn Tpg> = vec![&tpg];
//! for g in generators {
//!     assert_eq!(g.sequence().len(), g.test_length());
//!     assert!(g.area_mm2(&AreaModel::es2_1um()) > 0.0);
//!     assert!(g.emit_verilog(&Default::default()).is_some());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bist_hdl::HdlOptions;
use bist_lfsr::{Lfsr, Polynomial, ScanExpander};
use bist_lfsrom::LfsromGenerator;
use bist_logicsim::{Pattern, SeqSim};
use bist_netlist::Circuit;
use bist_synth::{AreaModel, CellCount, CellKind};

/// The common face of every BIST test-pattern-generator architecture in
/// the workspace: an emitted pattern sequence plus a silicon cost, so
/// architectures compare on the paper's two axes — test length and area
/// overhead — and, where structural hardware exists, a netlist with
/// cycle-accurate replay and HDL emission.
///
/// The trait is object-safe: heterogeneous collections of `&dyn Tpg` /
/// `Box<dyn Tpg>` are the intended consumption style (see
/// `bist_baselines::bakeoff`).
pub trait Tpg {
    /// Architecture name for reports (e.g. `"rom-counter"`).
    fn architecture(&self) -> &'static str;

    /// Width of the emitted patterns (number of CUT primary inputs).
    fn width(&self) -> usize;

    /// Number of patterns the generator is designed to emit per test
    /// session.
    fn test_length(&self) -> usize;

    /// The emitted pattern sequence, in order.
    fn sequence(&self) -> Vec<Pattern>;

    /// The generator's standard-cell inventory (flip-flops, gates, ROM
    /// bits).
    fn cells(&self) -> CellCount;

    /// Silicon area in mm² under `model`, routing included.
    fn area_mm2(&self, model: &AreaModel) -> f64 {
        model.area_mm2(&self.cells())
    }

    /// The structural hardware netlist, for architectures that carry
    /// one. `None` for purely analytical cost models (ROM arrays and
    /// the like).
    fn netlist(&self) -> Option<&Circuit> {
        None
    }

    /// The pattern sequence as recovered by cycle-accurate simulation
    /// of [`Tpg::netlist`] — the hardware-truth counterpart of
    /// [`Tpg::sequence`]. `None` exactly when there is no netlist.
    ///
    /// Implementors must guarantee `replay_netlist() == Some(sequence())`
    /// whenever a netlist exists; the workspace integration tests
    /// enforce this round-trip for every architecture.
    fn replay_netlist(&self) -> Option<Vec<Pattern>> {
        None
    }

    /// Structural Verilog for the generator hardware, where a netlist
    /// exists — the blanket emission path through [`bist_hdl`].
    fn emit_verilog(&self, options: &HdlOptions) -> Option<String> {
        self.netlist().map(|n| bist_hdl::emit_verilog(n, options))
    }

    /// Structural VHDL for the generator hardware, where a netlist
    /// exists.
    fn emit_vhdl(&self, options: &HdlOptions) -> Option<String> {
        self.netlist().map(|n| bist_hdl::emit_vhdl(n, options))
    }
}

impl Tpg for LfsromGenerator {
    fn architecture(&self) -> &'static str {
        "lfsrom"
    }

    fn width(&self) -> usize {
        LfsromGenerator::width(self)
    }

    fn test_length(&self) -> usize {
        LfsromGenerator::sequence(self).len()
    }

    fn sequence(&self) -> Vec<Pattern> {
        LfsromGenerator::sequence(self).to_vec()
    }

    fn cells(&self) -> CellCount {
        LfsromGenerator::cells(self)
    }

    fn netlist(&self) -> Option<&Circuit> {
        Some(LfsromGenerator::netlist(self))
    }

    fn replay_netlist(&self) -> Option<Vec<Pattern>> {
        Some(self.replay(LfsromGenerator::sequence(self).len()))
    }
}

/// The paper's reference pseudo-random generator: a plain Fibonacci LFSR
/// expanded through the (shared) scan register. The cost charged is the
/// LFSR core alone — `k` flip-flops plus the feedback XOR tree — matching
/// the paper's 0.25 mm² accounting, which reuses the circuit's scan chain
/// for the expansion register. The netlist is that core
/// ([`bist_lfsr::lfsr_netlist`]); [`Tpg::replay_netlist`] clocks it
/// cycle-accurately and shifts its serial output through the scan-chain
/// model to recover the emitted patterns.
#[derive(Debug, Clone)]
pub struct PlainLfsr {
    poly: Polynomial,
    seed: u64,
    width: usize,
    test_length: usize,
    netlist: Circuit,
}

impl PlainLfsr {
    /// Creates a generator emitting `test_length` patterns of `width`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `test_length` is 0, or if the seed is invalid
    /// for the polynomial (see [`Lfsr::fibonacci`]).
    pub fn new(poly: Polynomial, seed: u64, width: usize, test_length: usize) -> Self {
        assert!(width > 0, "pattern width must be positive");
        assert!(test_length > 0, "test length must be positive");
        let _check = Lfsr::fibonacci(poly, seed);
        PlainLfsr {
            poly,
            seed,
            width,
            test_length,
            netlist: bist_lfsr::lfsr_netlist(poly),
        }
    }

    /// The feedback polynomial.
    pub fn poly(&self) -> Polynomial {
        self.poly
    }

    /// The LFSR seed state.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Tpg for PlainLfsr {
    fn architecture(&self) -> &'static str {
        "lfsr"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn test_length(&self) -> usize {
        self.test_length
    }

    fn sequence(&self) -> Vec<Pattern> {
        let lfsr = Lfsr::fibonacci(self.poly, self.seed);
        ScanExpander::new(lfsr, self.width).patterns(self.test_length)
    }

    fn cells(&self) -> CellCount {
        let mut cells = CellCount::new();
        cells.add(CellKind::Dff, self.poly.degree() as usize);
        cells.add(CellKind::Xor2, self.poly.taps().len().saturating_sub(1));
        cells
    }

    fn netlist(&self) -> Option<&Circuit> {
        Some(&self.netlist)
    }

    fn replay_netlist(&self) -> Option<Vec<Pattern>> {
        let k = self.poly.degree() as usize;
        let mut sim = SeqSim::new(&self.netlist);
        // load the seed into the hardware register
        for i in 0..k {
            let q = self
                .netlist
                .find(&format!("lfsr_q{i}"))
                .expect("LFSR cell exists");
            sim.set_state(q, (self.seed >> i) & 1 == 1);
        }
        // the scan-chain extension beyond the LFSR core: cells
        // q{k}..q{width-1}, shifted from the core's last cell exactly as
        // the hardware shares the CUT scan register
        let mut chain = vec![false; self.width.saturating_sub(k)];
        let core_cells: Vec<_> = (0..k)
            .map(|i| {
                self.netlist
                    .find(&format!("lfsr_q{i}"))
                    .expect("LFSR cell exists")
            })
            .collect();
        let mut patterns = Vec::with_capacity(self.test_length);
        for _ in 0..self.test_length {
            for _ in 0..self.width {
                let serial = sim.state(core_cells[k - 1]);
                sim.step(&[false]);
                if !chain.is_empty() {
                    chain.rotate_right(1);
                    chain[0] = serial;
                }
            }
            // register cell q{i}: core state for i < k, chain for i >= k;
            // pattern bit b = cell q{width-1-b}
            let p = Pattern::from_fn(self.width, |b| {
                let cell = self.width - 1 - b;
                if cell < k {
                    sim.state(core_cells[cell])
                } else {
                    chain[cell - k]
                }
            });
            patterns.push(p);
        }
        Some(patterns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_lfsr::{paper_poly, primitive_poly};

    #[test]
    fn plain_lfsr_matches_paper_anchor() {
        let tpg = PlainLfsr::new(paper_poly(), 1, 50, 100);
        let mm2 = tpg.area_mm2(&AreaModel::es2_1um());
        assert!(
            (0.2..0.3).contains(&mm2),
            "paper charges 0.25 mm², got {mm2:.3}"
        );
        assert_eq!(tpg.sequence().len(), 100);
    }

    #[test]
    fn plain_lfsr_sequence_matches_expander() {
        let a = PlainLfsr::new(paper_poly(), 1, 23, 40).sequence();
        let b = bist_lfsr::pseudo_random_patterns(paper_poly(), 23, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn plain_lfsr_netlist_replay_round_trips() {
        // both regimes: width < k and width > k (scan-chain extension)
        for (width, degree) in [(5usize, 16u32), (23, 16), (20, 8)] {
            let tpg = PlainLfsr::new(primitive_poly(degree), 1, width, 12);
            assert_eq!(
                tpg.replay_netlist().unwrap(),
                tpg.sequence(),
                "width {width} degree {degree}"
            );
        }
    }

    #[test]
    fn lfsrom_implements_tpg_directly() {
        let seq: Vec<Pattern> = ["0110", "1001", "1111", "0000"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let generator = LfsromGenerator::synthesize(&seq).unwrap();
        let tpg: &dyn Tpg = &generator;
        assert_eq!(tpg.architecture(), "lfsrom");
        assert_eq!(tpg.test_length(), 4);
        assert_eq!(tpg.sequence(), seq);
        assert_eq!(tpg.replay_netlist().unwrap(), seq);
        assert!(tpg.cells().get(CellKind::Dff) >= 4);
    }

    #[test]
    fn hdl_emission_is_lint_clean() {
        let tpg = PlainLfsr::new(primitive_poly(8), 1, 12, 6);
        let options = HdlOptions::default();
        let verilog = tpg.emit_verilog(&options).expect("netlist exists");
        let vhdl = tpg.emit_vhdl(&options).expect("netlist exists");
        bist_hdl::lint::check_verilog(&verilog).expect("clean Verilog");
        bist_hdl::lint::check_vhdl(&vhdl).expect("clean VHDL");
    }
}
