//! Full-chip BIST sign-off: grade every ISCAS-85 benchmark with one
//! consistent mixed-BIST recipe and print a sign-off sheet.
//!
//! ```text
//! cargo run --release --example bist_signoff
//! cargo run --release --example bist_signoff -- 200
//! ```
//!
//! The optional argument is the pseudo-random prefix length (default 500).
//! For each circuit the sheet reports the achieved coverage, the residual
//! untestable faults, the sequence composition and the silicon bill. This
//! is the "downstream user" workflow: one command answering *can I ship
//! this test plan?* for a whole chip family.

use bist_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prefix: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(500);
    println!("BIST sign-off sheet — mixed scheme, p = {prefix}, 16-bit LFSR\n");
    println!(
        "{:>7} {:>6} | {:>9} {:>6} | {:>10} {:>10} | {:>10} {:>9}",
        "circuit", "#I", "coverage", "eff.", "p", "d", "gen (mm2)", "% chip"
    );

    // the smaller circuits sign off quickly; the big ones dominate runtime
    let names = ["c17", "c432", "c499", "c880", "c1355", "c1908", "c3540"];
    for name in names {
        let circuit = iscas85::circuit(name).expect("known benchmark");
        let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
        let s = session.solve_at(prefix.min(4 * (1 << circuit.inputs().len().min(16))))?;
        assert!(s.generator.verify(), "{name}: generator failed replay");
        println!(
            "{:>7} {:>6} | {:>8.2}% {:>5.1}% | {:>10} {:>10} | {:>10.3} {:>8.1}%",
            name,
            circuit.inputs().len(),
            s.coverage.coverage_pct(),
            s.coverage.efficiency_pct(),
            s.prefix_len,
            s.det_len,
            s.generator_area_mm2,
            s.overhead_pct()
        );
    }
    println!("\nsign-off rule of thumb: efficiency < 100 % means ATPG aborted faults —");
    println!("rerun with a higher backtrack limit before committing silicon.");
    Ok(())
}
