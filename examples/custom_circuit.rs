//! Bring your own netlist: run the mixed-BIST flow on a user-supplied
//! ISCAS-style `.bench` file.
//!
//! ```text
//! cargo run --release --example custom_circuit -- my_design.bench 100
//! cargo run --release --example custom_circuit            # built-in demo
//! ```
//!
//! With no arguments, a small demo design (a 4-bit carry-ripple
//! comparator) is built programmatically, written out as `.bench` text,
//! parsed back, and then pushed through the flow — demonstrating both the
//! file format round-trip and the `CircuitBuilder` API.

use bist_core::prelude::*;

fn demo_design() -> Circuit {
    // a 4-bit equality comparator with a ripple-AND spine
    let mut b = CircuitBuilder::new("eq4");
    for i in 0..4 {
        b.add_input(&format!("a{i}")).expect("fresh");
        b.add_input(&format!("b{i}")).expect("fresh");
    }
    for i in 0..4 {
        b.add_gate(
            &format!("x{i}"),
            GateKind::Xnor,
            &[&format!("a{i}"), &format!("b{i}")],
        )
        .expect("fresh");
    }
    b.add_gate("e01", GateKind::And, &["x0", "x1"])
        .expect("fresh");
    b.add_gate("e012", GateKind::And, &["e01", "x2"])
        .expect("fresh");
    b.add_gate("eq", GateKind::And, &["e012", "x3"])
        .expect("fresh");
    b.mark_output("eq").expect("fresh");
    b.build().expect("demo design is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let circuit = match args.next() {
        Some(path) => {
            let src = std::fs::read_to_string(&path)?;
            let name = std::path::Path::new(&path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("custom")
                .to_owned();
            bist_netlist::bench::parse(&name, &src)?
        }
        None => {
            // demonstrate the .bench round-trip on the built-in demo
            let demo = demo_design();
            let text = bist_netlist::bench::write(&demo);
            println!("demo .bench netlist:\n{text}");
            bist_netlist::bench::parse("eq4", &text)?
        }
    };
    let prefix: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(50);

    println!("{circuit}");
    let faults = FaultList::mixed_model(&circuit);
    println!(
        "fault universe: {} ({} stuck-at + {} stuck-open)",
        faults.len(),
        faults.num_stuck_at(),
        faults.num_stuck_open()
    );

    let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
    let s = session.solve_at(prefix)?;
    println!(
        "mixed solution: p={}, d={} -> {:.2} % coverage ({} redundant, {} aborted)",
        s.prefix_len,
        s.det_len,
        s.coverage.coverage_pct(),
        s.coverage.redundant,
        s.coverage.aborted
    );
    println!(
        "generator: {:.4} mm² = {:.1} % of the {:.4} mm² design",
        s.generator_area_mm2,
        s.overhead_pct(),
        s.chip_area_mm2
    );
    assert!(s.generator.verify());
    println!("hardware replay: OK");
    Ok(())
}
