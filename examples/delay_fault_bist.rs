//! Delay-fault BIST: measuring the paper's motivating claim.
//!
//! ```text
//! cargo run --release --example delay_fault_bist
//! ```
//!
//! Section 2.2 of the paper argues that pseudo-random sequences "are no
//! longer efficient" for delay faults, and §3.1 reserves the mixed
//! scheme's deterministic suffix for exactly those. The 1995 evaluation
//! never measures it — this example does, on the c880 profile under the
//! gate-level transition fault model: for each pseudo-random prefix
//! length `p`, report the prefix's transition coverage and the size `d`
//! of the two-pattern deterministic top-up that closes the gap.

use bist_delay::{DelayAtpgOptions, DelayTestGenerator, TransitionFaultList, TransitionSim};
use bist_lfsr::{paper_poly, pseudo_random_patterns};

fn main() {
    let circuit = bist_netlist::iscas85::circuit("c880").expect("known benchmark");
    let width = circuit.inputs().len();
    let faults = TransitionFaultList::universe(&circuit);
    println!(
        "circuit {} : {} inputs, {} transition faults (stems + fan-out branches)",
        circuit.name(),
        width,
        faults.len()
    );
    println!();
    println!(
        "{:>6}  {:>14}  {:>12}  {:>14}  {:>10}",
        "p", "prefix cov %", "top-up d", "final cov %", "total p+d"
    );

    for p in [0usize, 64, 256, 1024] {
        let prefix = pseudo_random_patterns(paper_poly(), width, p);

        // coverage of the prefix alone
        let mut sim = TransitionSim::new(&circuit, faults.clone());
        sim.simulate(&prefix);
        let prefix_cov = sim.report().coverage_pct();

        // deterministic two-pattern top-up for what remains
        let run = DelayTestGenerator::new(
            &circuit,
            faults.clone(),
            DelayAtpgOptions {
                prefix,
                ..DelayAtpgOptions::default()
            },
        )
        .run();

        println!(
            "{:>6}  {:>13.2}%  {:>12}  {:>13.2}%  {:>10}",
            p,
            prefix_cov,
            run.num_patterns(),
            run.report.coverage_pct(),
            p + run.num_patterns()
        );
    }

    println!();
    println!("Reading: the prefix's transition coverage rises much more slowly than");
    println!("its stuck-at coverage would (two-pattern tests are rare events in a");
    println!("random stream), and the deterministic suffix shrinks as p grows —");
    println!("the same trade-off the paper's Figure 5 shows for stuck-at/stuck-open,");
    println!("now measured for the fault class that motivated the mixed scheme.");
}
