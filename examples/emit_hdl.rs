//! HDL hand-off: the artefact the paper fed to COMPASS.
//!
//! ```text
//! cargo run --release --example emit_hdl
//! ```
//!
//! Synthesizes the full deterministic LFSROM for c17's stuck-at +
//! stuck-open test set, then renders it three ways: structural VHDL (the
//! paper's §4.1 hand-off format), structural Verilog, and a self-checking
//! Verilog testbench that replays the expected pattern sequence. Files
//! land in `results/hdl/`.
//!
//! The second half does the same for the *mixed* generator through one
//! engine `JobSpec::EmitHdl` job: solve the scheme at `p = 8`, emit
//! lint-clean Verilog + VHDL + testbench, no per-type plumbing.

use std::fs;

use bist_atpg::{AtpgOptions, TestGenerator};
use bist_engine::{CircuitSource, EmitHdlSpec, Engine, HdlLanguage, JobSpec};
use bist_fault::FaultList;
use bist_hdl::{emit_verilog, emit_verilog_testbench, emit_vhdl, HdlOptions};
use bist_lfsrom::LfsromGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c17 = bist_netlist::iscas85::c17();
    let faults = FaultList::mixed_model(&c17);
    let run = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
    let sequence = run.sequence();
    println!(
        "c17 deterministic set: {} patterns, coverage {:.1} %",
        sequence.len(),
        run.report.coverage_pct()
    );

    let lfsrom = LfsromGenerator::synthesize(&sequence)?;
    let netlist = lfsrom.netlist();

    // seed the flip-flops with the first pattern so reset starts the walk
    let mut options = HdlOptions::default().with_module_name("c17_lfsrom");
    for b in 0..lfsrom.num_flip_flops() {
        let q = netlist
            .find(&format!("q{b}"))
            .expect("flip-flop exists by construction");
        let bit = if b < lfsrom.width() {
            sequence[0].get(b)
        } else {
            (lfsrom.codes()[0] >> (b - lfsrom.width())) & 1 == 1
        };
        options = options.with_reset_value(q, bit);
    }

    let vhdl = emit_vhdl(netlist, &options);
    let verilog = emit_verilog(netlist, &options);
    let expected = lfsrom.replay(sequence.len());
    let testbench = emit_verilog_testbench(netlist, &options, &expected);

    bist_hdl::lint::check_vhdl(&vhdl)?;
    bist_hdl::lint::check_verilog(&verilog)?;

    fs::create_dir_all("results/hdl")?;
    fs::write("results/hdl/c17_lfsrom.vhd", &vhdl)?;
    fs::write("results/hdl/c17_lfsrom.v", &verilog)?;
    fs::write("results/hdl/c17_lfsrom_tb.v", &testbench)?;

    println!(
        "wrote results/hdl/c17_lfsrom.vhd     ({} lines)",
        vhdl.lines().count()
    );
    println!(
        "wrote results/hdl/c17_lfsrom.v       ({} lines)",
        verilog.lines().count()
    );
    println!(
        "wrote results/hdl/c17_lfsrom_tb.v    ({} lines)",
        testbench.lines().count()
    );
    println!();
    println!(
        "The testbench prints TB_PASS after {} cycles under any",
        expected.len()
    );
    println!("event-driven simulator (iverilog, Verilator, ModelSim).");

    // --- the engine path: the solved mixed generator, one job ---
    let engine = Engine::new();
    let result = engine.run(JobSpec::EmitHdl(EmitHdlSpec {
        circuit: CircuitSource::iscas85("c17"),
        config: Default::default(),
        prefix_len: 8,
        language: HdlLanguage::Both,
        module_name: Some("c17_mixed".to_owned()),
        testbench: true,
    }))?;
    let hdl = result.as_emit_hdl().expect("emit jobs yield hdl outcomes");
    println!();
    println!(
        "mixed generator (p={}, d={}) as module `{}`:",
        hdl.solution.prefix_len, hdl.solution.det_len, hdl.module
    );
    for (suffix, text) in [
        (".v", hdl.verilog.as_deref()),
        (".vhd", hdl.vhdl.as_deref()),
        ("_tb.v", hdl.testbench.as_deref()),
    ] {
        let text = text.expect("all three artefacts requested");
        let path = format!("results/hdl/{}{suffix}", hdl.module);
        fs::write(&path, text)?;
        println!(
            "wrote {path:<32} ({} lines, lint-clean)",
            text.lines().count()
        );
    }
    Ok(())
}
