//! HDL hand-off: the artefact the paper fed to COMPASS.
//!
//! ```text
//! cargo run --release --example emit_hdl
//! ```
//!
//! Synthesizes the full deterministic LFSROM for c17's stuck-at +
//! stuck-open test set, then renders it three ways: structural VHDL (the
//! paper's §4.1 hand-off format), structural Verilog, and a self-checking
//! Verilog testbench that replays the expected pattern sequence. Files
//! land in `results/hdl/`.
//!
//! The second half emits Verilog for a whole *fleet* of generator
//! architectures — LFSROM, bare LFSR, shared-register mixed — through
//! the one `Tpg` trait, no per-type plumbing.

use std::fs;

use bist_atpg::{AtpgOptions, TestGenerator};
use bist_core::{BistSession, MixedSchemeConfig};
use bist_fault::FaultList;
use bist_hdl::{emit_verilog, emit_verilog_testbench, emit_vhdl, HdlOptions};
use bist_lfsrom::LfsromGenerator;
use bist_tpg::{PlainLfsr, Tpg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c17 = bist_netlist::iscas85::c17();
    let faults = FaultList::mixed_model(&c17);
    let run = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
    let sequence = run.sequence();
    println!(
        "c17 deterministic set: {} patterns, coverage {:.1} %",
        sequence.len(),
        run.report.coverage_pct()
    );

    let lfsrom = LfsromGenerator::synthesize(&sequence)?;
    let netlist = lfsrom.netlist();

    // seed the flip-flops with the first pattern so reset starts the walk
    let mut options = HdlOptions::default().with_module_name("c17_lfsrom");
    for b in 0..lfsrom.num_flip_flops() {
        let q = netlist
            .find(&format!("q{b}"))
            .expect("flip-flop exists by construction");
        let bit = if b < lfsrom.width() {
            sequence[0].get(b)
        } else {
            (lfsrom.codes()[0] >> (b - lfsrom.width())) & 1 == 1
        };
        options = options.with_reset_value(q, bit);
    }

    let vhdl = emit_vhdl(netlist, &options);
    let verilog = emit_verilog(netlist, &options);
    let expected = lfsrom.replay(sequence.len());
    let testbench = emit_verilog_testbench(netlist, &options, &expected);

    bist_hdl::lint::check_vhdl(&vhdl)?;
    bist_hdl::lint::check_verilog(&verilog)?;

    fs::create_dir_all("results/hdl")?;
    fs::write("results/hdl/c17_lfsrom.vhd", &vhdl)?;
    fs::write("results/hdl/c17_lfsrom.v", &verilog)?;
    fs::write("results/hdl/c17_lfsrom_tb.v", &testbench)?;

    println!(
        "wrote results/hdl/c17_lfsrom.vhd     ({} lines)",
        vhdl.lines().count()
    );
    println!(
        "wrote results/hdl/c17_lfsrom.v       ({} lines)",
        verilog.lines().count()
    );
    println!(
        "wrote results/hdl/c17_lfsrom_tb.v    ({} lines)",
        testbench.lines().count()
    );
    println!();
    println!(
        "The testbench prints TB_PASS after {} cycles under any",
        expected.len()
    );
    println!("event-driven simulator (iverilog, Verilator, ModelSim).");

    // --- the generic path: every architecture through one trait ---
    let lfsr = PlainLfsr::new(bist_lfsr::paper_poly(), 1, c17.inputs().len(), 64);
    let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
    let mixed = session.solve_at(8)?.generator;
    println!();
    for tpg in [&lfsrom as &dyn Tpg, &lfsr, &mixed] {
        // distinct `fleet_` paths: the seeded c17_lfsrom.v above (whose
        // testbench depends on its reset values) must survive
        let name = format!("fleet_c17_{}", tpg.architecture());
        let options = HdlOptions::default().with_module_name(name.clone());
        let verilog = tpg
            .emit_verilog(&options)
            .expect("all three architectures carry netlists");
        bist_hdl::lint::check_verilog(&verilog)?;
        let path = format!("results/hdl/{name}.v");
        fs::write(&path, &verilog)?;
        println!(
            "wrote {path:<32} ({} lines, {} patterns x {} bits via Tpg)",
            verilog.lines().count(),
            tpg.test_length(),
            tpg.width()
        );
    }
    Ok(())
}
