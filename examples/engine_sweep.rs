//! Engine smoke: one `JobSpec::Sweep` end-to-end, with the progress
//! stream printed — the example CI drives under `BIST_THREADS=2`.
//!
//! ```text
//! cargo run --release --example engine_sweep
//! cargo run --release --example engine_sweep -- c432 0,50,100
//! ```
//!
//! Arguments: circuit name (default `c432`) and a comma-separated prefix
//! ladder (default `0,50,100`). The engine validates the spec, runs the
//! sweep on the `bist-par` pool (`BIST_THREADS` sets the width), streams
//! queued/started/checkpoint/finished events through the pull-based
//! feed, and returns the solved frontier.

use bist::engine::{CircuitSource, Engine, JobSpec, ProgressEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "c432".to_owned());
    let ladder = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "0,50,100".to_owned());
    let prefixes = ladder
        .split(',')
        .map(|p| p.trim().parse::<usize>())
        .collect::<Result<Vec<_>, _>>()?;

    let engine = Engine::new();
    println!(
        "sweeping {circuit} at p = {prefixes:?} on {} thread(s)\n",
        engine.threads()
    );
    let handle = engine.submit(JobSpec::sweep(CircuitSource::iscas85(&circuit), prefixes));
    let feed = handle.progress().clone();
    let result = handle.wait()?;

    // the per-job pull-based event stream: every lifecycle step and
    // per-point checkpoint (with fault coverage so far)
    for event in feed.drain() {
        match event {
            ProgressEvent::Queued { job, label } => println!("{job}: queued   {label}"),
            ProgressEvent::Started { job } => println!("{job}: started"),
            ProgressEvent::Checkpoint {
                job,
                prefix_len,
                coverage_pct,
            } => println!("{job}: solved   p={prefix_len:<6} coverage so far {coverage_pct:.2} %"),
            ProgressEvent::Finished { job, .. } => println!("{job}: finished"),
            other => println!("{}: {other:?}", other.job()),
        }
    }

    let sweep = result.as_sweep().expect("sweep jobs yield sweep outcomes");
    println!("\n{}", sweep.summary);
    println!(
        "session work: {} patterns graded once, {} ATPG runs, {} cached answers",
        sweep.stats.patterns_simulated,
        sweep.stats.atpg_runs,
        sweep.stats.atpg_cache_hits + sweep.stats.podem_cache_hits
    );
    Ok(())
}
