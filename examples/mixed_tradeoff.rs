//! The paper's motivating scenario: exploring the `(p, d)` trade-off for
//! the C3540-class circuit and picking a practical operating point.
//!
//! ```text
//! cargo run --release --example mixed_tradeoff
//! cargo run --release --example mixed_tradeoff -- c880
//! ```
//!
//! One `JobSpec::Sweep` runs the full flow per prefix length (fault
//! simulation, ATPG top-up, generator synthesis, replay verification);
//! the resulting frontier shows the paper's headline effect — the longer
//! the mixed sequence, the cheaper the generator — and the selection
//! helpers pick the kind of compromise the paper advocates (C3540: 68 %
//! overhead at `p = 0` cut to ≈20 % at `p = 1000`), with documented
//! deterministic tie-breaking.

use bist::engine::{CircuitSource, Engine, JobSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "c3540".to_owned());
    println!("exploring the mixed trade-off for {name}\n");

    let engine = Engine::new();
    let result = engine.run(JobSpec::sweep(
        CircuitSource::iscas85(&name),
        [0, 100, 200, 500, 1000],
    ))?;
    let outcome = result.as_sweep().expect("sweep jobs yield sweep outcomes");
    let summary = &outcome.summary;
    print!("{summary}");

    let cheapest = summary.cheapest().expect("sweep is non-empty");
    let shortest = summary.shortest().expect("sweep is non-empty");
    println!(
        "\nshortest test : {} patterns at {:.3} mm² ({:.1} % of chip)",
        shortest.total_len(),
        shortest.generator_area_mm2,
        shortest.overhead_pct()
    );
    println!(
        "cheapest BIST : {} patterns at {:.3} mm² ({:.1} % of chip)",
        cheapest.total_len(),
        cheapest.generator_area_mm2,
        cheapest.overhead_pct()
    );
    if let Some(balanced) = summary.within_overhead(25.0) {
        println!(
            "paper-style   : overhead <= 25 % reached at (p={}, d={}) — {:.1} % of chip",
            balanced.prefix_len,
            balanced.det_len,
            balanced.overhead_pct()
        );
    }

    // every point reaches the same maximal coverage — the mixed scheme
    // never trades quality, only time against silicon
    let covs: Vec<f64> = summary
        .solutions()
        .iter()
        .map(|s| s.coverage.coverage_pct())
        .collect();
    println!(
        "\nall points reach {:.2} % coverage (efficiency {:.1} %)",
        covs[0],
        summary.solutions()[0].coverage.efficiency_pct()
    );
    Ok(())
}
