//! Quickstart: the whole mixed-BIST flow on the classic `c17` circuit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's pipeline end to end on the smallest ISCAS-85
//! benchmark: fault universe → pseudo-random grading → ATPG top-up →
//! mixed hardware generator → cycle-accurate replay verification.

use bist_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. the circuit under test: the exact ISCAS-85 c17 netlist
    let c17 = iscas85::c17();
    println!("circuit under test : {c17}");

    // 2. the paper's fault model: collapsed stuck-at + CMOS stuck-open
    let faults = FaultList::mixed_model(&c17);
    println!(
        "fault universe     : {} faults ({} stuck-at, {} stuck-open)",
        faults.len(),
        faults.num_stuck_at(),
        faults.num_stuck_open()
    );

    // 3. solve the mixed scheme with an 8-pattern pseudo-random prefix
    let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
    let solution = session.solve_at(8)?;
    println!(
        "prefix coverage    : {:.1} % after {} pseudo-random patterns",
        solution.prefix_coverage.coverage_pct(),
        solution.prefix_len
    );
    println!(
        "ATPG top-up        : {} deterministic patterns -> {:.1} % total",
        solution.det_len,
        solution.coverage.coverage_pct()
    );

    // 4. the hardware: a shared-register mixed generator
    let generator = &solution.generator;
    println!(
        "generator hardware : {} flip-flops, {} cells, {:.4} mm²",
        generator.netlist().num_dffs(),
        generator.cells().total(),
        solution.generator_area_mm2
    );

    // 5. prove the silicon would do the right thing: replay every cycle
    assert!(
        generator.verify(),
        "hardware must replay both phases bit-exactly"
    );
    println!(
        "replay check       : hardware reproduces all {} patterns bit-exactly",
        generator.total_len()
    );

    // 6. the paper's trade-off in one sentence. (On a 6-gate circuit the
    // 16-bit LFSR dominates the cost, so pure-deterministic wins here —
    // exactly the paper's Figure 6 story for c17. The mixed win appears at
    // scale: see the `mixed_tradeoff` example.)
    let pure_det = session.solve_at(0)?;
    println!(
        "trade-off          : pure deterministic d={} costs {:.4} mm²; mixed (p=8, d={}) costs {:.4} mm²",
        pure_det.det_len, pure_det.generator_area_mm2, solution.det_len, solution.generator_area_mm2
    );
    Ok(())
}
