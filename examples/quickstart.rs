//! Quickstart: the whole mixed-BIST flow on the classic `c17` circuit,
//! through the engine's job API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's pipeline end to end on the smallest ISCAS-85
//! benchmark: one `JobSpec::SolveAt` job covers fault universe →
//! pseudo-random grading → ATPG top-up → mixed hardware generator →
//! cycle-accurate replay verification.

use bist::engine::{CircuitSource, Engine, JobSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. the engine is the single entry point; jobs name their circuit
    // by source, so a typo comes back as a typed error, not a panic
    let engine = Engine::new();
    let result = engine.run(JobSpec::solve_at(CircuitSource::iscas85("c17"), 8))?;
    let outcome = result
        .as_solve_at()
        .expect("solve jobs yield solve outcomes");
    let solution = &outcome.solution;

    // 2. the fault model behind the numbers: collapsed stuck-at + CMOS
    // stuck-open over the exact c17 netlist
    let total = solution.coverage.total();
    println!("circuit under test : c17 (mixed fault universe: {total} faults)");
    println!(
        "prefix coverage    : {:.1} % after {} pseudo-random patterns",
        solution.prefix_coverage.coverage_pct(),
        solution.prefix_len
    );
    println!(
        "ATPG top-up        : {} deterministic patterns -> {:.1} % total",
        solution.det_len,
        solution.coverage.coverage_pct()
    );

    // 3. the hardware: a shared-register mixed generator
    let generator = &solution.generator;
    println!(
        "generator hardware : {} flip-flops, {} cells, {:.4} mm²",
        generator.netlist().num_dffs(),
        generator.cells().total(),
        solution.generator_area_mm2
    );

    // 4. prove the silicon would do the right thing: replay every cycle
    assert!(
        generator.verify(),
        "hardware must replay both phases bit-exactly"
    );
    println!(
        "replay check       : hardware reproduces all {} patterns bit-exactly",
        generator.total_len()
    );

    // 5. the paper's trade-off in one sentence. (On a 6-gate circuit the
    // 16-bit LFSR dominates the cost, so pure-deterministic wins here —
    // exactly the paper's Figure 6 story for c17. The mixed win appears at
    // scale: see the `mixed_tradeoff` example.)
    let pure_det = engine.run(JobSpec::solve_at(CircuitSource::iscas85("c17"), 0))?;
    let pure_det = &pure_det.as_solve_at().expect("solve outcome").solution;
    println!(
        "trade-off          : pure deterministic d={} costs {:.4} mm²; mixed (p=8, d={}) costs {:.4} mm²",
        pure_det.det_len, pure_det.generator_area_mm2, solution.det_len, solution.generator_area_mm2
    );
    Ok(())
}
