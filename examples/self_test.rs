//! The complete Figure-1 BIST loop in simulation: mixed generator → CUT →
//! MISR signature → PASS/FAIL, including a fault-injection campaign.
//!
//! ```text
//! cargo run --release --example self_test
//! cargo run --release --example self_test -- c880 200
//! ```

use bist_core::prelude::*;
use bist_core::selftest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "c432".to_owned());
    let prefix: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(100);
    let circuit = iscas85::circuit(&name).ok_or_else(|| format!("unknown circuit `{name}`"))?;
    println!("self-test session for {circuit}");

    // 1. build and verify the mixed generator
    let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
    let solution = session.solve_at(prefix)?;
    assert!(solution.generator.verify());
    println!(
        "generator: p={}, d={}, {:.3} mm² ({:.1} % of chip)",
        solution.prefix_len,
        solution.det_len,
        solution.generator_area_mm2,
        solution.overhead_pct()
    );

    // 2. the stimulus is exactly what the hardware will emit
    let (random, det) = solution.generator.replay();
    let mut stimulus = random;
    stimulus.extend(det);

    // 3. golden signature via the MISR (the ORA of the paper's Figure 1)
    let golden = selftest::golden_signature(&circuit, &stimulus, paper_poly());
    println!(
        "golden signature: 0x{:04x} after {} patterns (MISR aliasing ≈ 2^-16)",
        golden.signature, golden.patterns_applied
    );

    // 4. fault-injection campaign: sampled faults must FAIL the signature
    let faults = FaultList::mixed_model(&circuit);
    let rate = selftest::fail_rate(&circuit, &stimulus, faults.faults(), paper_poly(), 60);
    println!(
        "fault injection: {:.1} % of sampled faults produce a failing signature",
        rate * 100.0
    );
    println!(
        "(sequence coverage is {:.1} %; the self-test flags what the sequence detects)",
        solution.coverage.coverage_pct()
    );

    // 5. where the random-resistant faults live (COP testability estimate)
    let testability = Testability::analyze(&circuit);
    println!("\nfive hardest faults by COP estimate:");
    for (fault, p_detect) in testability.hardest_faults(&circuit, faults.faults(), 5) {
        println!(
            "  {:<40} p(detect/pattern) ≈ {:.2e}",
            fault.describe(&circuit),
            p_detect
        );
    }
    Ok(())
}
