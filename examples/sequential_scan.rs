//! Scan-based mixed BIST for a sequential circuit, end to end.
//!
//! ```text
//! cargo run --release --example sequential_scan
//! ```
//!
//! The paper's flow is combinational; real chips are not. This example
//! closes the loop the paper's introduction sketches: insert a scan chain
//! into a sequential circuit (the s344 profile), extract the
//! combinational test view, run the complete mixed scheme on it — LFSR
//! prefix, ATPG top-up, mixed generator synthesis with replay
//! verification — and report the result in *tester clocks*, where the
//! scan chain multiplies every pattern by its shift length.

use bist_core::prelude::*;
use bist_scan::ScanDesign;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sequential = bist_netlist::iscas89::circuit("s344").expect("known benchmark");
    println!(
        "sequential CUT     : {} ({} PIs, {} POs, {} flip-flops, {} gates)",
        sequential.name(),
        sequential.inputs().len(),
        sequential.outputs().len(),
        sequential.num_dffs(),
        sequential.num_gates()
    );

    // 1. full-scan insertion + equivalence check
    let scan = ScanDesign::insert(&sequential)?;
    assert_eq!(
        scan.verify(200, 344),
        None,
        "test view must be cycle-accurate"
    );
    println!(
        "scan insertion     : chain of {} cells, overhead {:.4} mm², test view {} inputs",
        scan.chain_len(),
        scan.scan_overhead_mm2(&AreaModel::es2_1um()),
        scan.test_view().inputs().len()
    );

    // 2. the whole mixed scheme, unchanged, on the combinational view
    let mut session = BistSession::new(scan.test_view(), MixedSchemeConfig::default());
    println!(
        "\n{:>6}  {:>8}  {:>12}  {:>12}  {:>14}",
        "p", "d", "coverage %", "gen mm²", "tester clocks"
    );
    for p in [0usize, 128, 512] {
        let solution = session.solve_at(p)?;
        assert!(solution.generator.verify());
        let patterns = solution.total_len();
        println!(
            "{:>6}  {:>8}  {:>11.2}%  {:>12.3}  {:>14}",
            solution.prefix_len,
            solution.det_len,
            solution.coverage.coverage_pct(),
            solution.generator_area_mm2,
            scan.clocks_for(patterns)
        );
    }

    println!();
    println!("Reading: the mixed trade-off carries over to scan designs unchanged —");
    println!("a longer (cheap) random prefix shrinks the deterministic suffix and");
    println!("its generator; the scan chain turns every pattern into chain+1 tester");
    println!("clocks, which is why the paper counts test time in patterns and the");
    println!("chain length is a fixed multiplier.");
    Ok(())
}
