//! TPG architecture bake-off: the paper's §1 survey, actually run.
//!
//! ```text
//! cargo run --release --example tpg_bakeoff
//! ```
//!
//! The paper's introduction surveys the BIST TPG design space — ROMs,
//! counters with decoders, cellular automata, (weighted) LFSRs, reseeding
//! — but its evaluation compares only the two extremes. This example puts
//! every surveyed architecture on one board for the c432 profile with a
//! single `JobSpec::Bakeoff`: the deterministic encoders all embed the
//! same ATPG test set, the pseudo-random generators all get the same
//! pattern budget, and every row is re-graded by fault simulation of what
//! the hardware would actually emit.

use bist::engine::{CircuitSource, Engine, JobSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();
    let result = engine.run(JobSpec::bakeoff(CircuitSource::iscas85("c432"), 1000))?;
    let outcome = result
        .as_bakeoff()
        .expect("bakeoff jobs yield bakeoff outcomes");
    let bakeoff = &outcome.bakeoff;

    println!("circuit {}", outcome.circuit);
    println!(
        "deterministic ATPG set: {} patterns; coverage ceiling {:.2} % (ATPG reaches {:.2} %)",
        bakeoff.deterministic_patterns, bakeoff.achievable_pct, bakeoff.atpg_coverage_pct
    );
    println!();
    println!(
        "{:<20} {:>8} {:>10} {:>10}   kind",
        "architecture", "patterns", "area mm²", "coverage"
    );
    for row in &bakeoff.rows {
        println!(
            "{:<20} {:>8} {:>10.3} {:>9.2}%   {}",
            row.architecture,
            row.test_length,
            row.area_mm2,
            row.coverage_pct,
            if row.deterministic {
                "deterministic"
            } else {
                "pseudo-random"
            }
        );
    }

    println!();
    println!("Reading: the plain LFSR is the cheapest device on the board but stalls");
    println!("below the ceiling; every deterministic encoder reaches the ATPG's");
    println!("coverage and pays for it in silicon. Where each encoder lands — ROM");
    println!("array vs counter-PLA vs reseeding vs the paper's LFSROM — is the");
    println!("architecture trade the mixed scheme then relaxes by shrinking d.");
    Ok(())
}
