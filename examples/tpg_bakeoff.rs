//! TPG architecture bake-off: the paper's §1 survey, actually run.
//!
//! ```text
//! cargo run --release --example tpg_bakeoff
//! ```
//!
//! The paper's introduction surveys the BIST TPG design space — ROMs,
//! counters with decoders, cellular automata, (weighted) LFSRs, reseeding
//! — but its evaluation compares only the two extremes. This example puts
//! every surveyed architecture on one board for the c432 profile: the
//! deterministic encoders all embed the same ATPG test set, the
//! pseudo-random generators all get the same pattern budget, and every
//! row is re-graded by fault simulation of what the hardware would
//! actually emit.

use bist_baselines::{bakeoff, BakeoffConfig};

fn main() {
    let circuit = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
    let config = BakeoffConfig {
        random_length: 1000,
        ..BakeoffConfig::default()
    };
    let result = bakeoff(&circuit, &config);

    println!("circuit {}", circuit.name());
    println!(
        "deterministic ATPG set: {} patterns; coverage ceiling {:.2} % (ATPG reaches {:.2} %)",
        result.deterministic_patterns, result.achievable_pct, result.atpg_coverage_pct
    );
    println!();
    println!(
        "{:<20} {:>8} {:>10} {:>10}   kind",
        "architecture", "patterns", "area mm²", "coverage"
    );
    for row in &result.rows {
        println!(
            "{:<20} {:>8} {:>10.3} {:>9.2}%   {}",
            row.architecture,
            row.test_length,
            row.area_mm2,
            row.coverage_pct,
            if row.deterministic {
                "deterministic"
            } else {
                "pseudo-random"
            }
        );
    }

    println!();
    println!("Reading: the plain LFSR is the cheapest device on the board but stalls");
    println!("below the ceiling; every deterministic encoder reaches the ATPG's");
    println!("coverage and pays for it in silicon. Where each encoder lands — ROM");
    println!("array vs counter-PLA vs reseeding vs the paper's LFSROM — is the");
    println!("architecture trade the mixed scheme then relaxes by shrinking d.");
}
