//! Workspace facade for the LFSROM mixed-BIST reproduction.
//!
//! Re-exports every substrate crate under one roof so downstream users
//! (and the repo-level integration tests and examples) can depend on a
//! single package. The interesting entry points:
//!
//! * [`engine::Engine`](bist_engine) — **the public face**: typed
//!   [`JobSpec`](bist_engine::JobSpec)s for every workload (solve,
//!   sweep, coverage curve, bake-off, HDL emission, area report),
//!   scheduled across the pool with streaming progress, cooperative
//!   cancellation and fallible parsing end-to-end.
//! * [`core::BistSession`](bist_core) — the incremental mixed-scheme
//!   pipeline the engine drives (fault universe built once, prefix fault
//!   simulation advanced across checkpoints, ATPG cached per open-fault
//!   frontier).
//! * [`tpg::Tpg`](bist_tpg) — the unified test-pattern-generator trait
//!   every architecture in the workspace implements.
//! * [`baselines::bakeoff`](bist_baselines) — all surveyed TPG
//!   architectures compared on one circuit.
//! * [`lint::lint_bench`](bist_lint) — simulation-free static analysis:
//!   structural rules and SCOAP testability as unified diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bist_atpg as atpg;
pub use bist_baselines as baselines;
pub use bist_bridging as bridging;
pub use bist_core as core;
pub use bist_delay as delay;
pub use bist_engine as engine;
pub use bist_fault as fault;
pub use bist_faultsim as faultsim;
pub use bist_hdl as hdl;
pub use bist_lfsr as lfsr;
pub use bist_lfsrom as lfsrom;
pub use bist_lint as lint;
pub use bist_logicsim as logicsim;
pub use bist_netlist as netlist;
pub use bist_scan as scan;
pub use bist_synth as synth;
pub use bist_tpg as tpg;
