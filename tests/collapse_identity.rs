//! Cross-engine identity battery for fault collapsing.
//!
//! The contract under test: grading only the collapsed universe's
//! representatives and projecting the statuses back through the
//! collapsed→representative map is **bit-identical** to grading the
//! full stuck-at universe directly — same per-fault statuses, same
//! coverage report — at every pool width, because every fold step is a
//! true equivalence (not a dominance approximation). Dominance is kept
//! as a statistics-only overlay and never enters projection.
//!
//! A second battery pins the collapse to the fault models: the mixed
//! solve itself must be width-invariant for every [`FaultModel`], so
//! the representative-only grading path cannot leak thread-count
//! nondeterminism into solutions.
//!
//! A third battery lifts the identity to the session layer:
//! representative-only (`CollapseMode::InFlow`) sessions must commit
//! bit-identical sweeps — every `(p, d)` point, coverage report, and
//! synthesized deterministic pattern — to the uncollapsed
//! (`CollapseMode::Off`) flow, across random reconvergent circuits,
//! widths 1/2/4 and all three fault models, including a non-monotone
//! revisit below the checkpoint front (the snapshot-resume path).

use bist_core::prelude::*;
use proptest::prelude::*;

use bist::fault::CollapsedUniverse;
use bist_faultmodel::{FaultModel, ModelSession};

/// Random small circuits, biased to create reconvergent fanout and
/// primary outputs with fanout (the collapse soundness edge case: a
/// branch behind a single-fanout driver that is also an output pad is
/// *not* equivalent to its stem).
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..8, 2usize..24, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = CircuitBuilder::new("prop");
        let mut pool: Vec<String> = (0..inputs)
            .map(|i| {
                let n = format!("i{i}");
                b.add_input(&n).expect("fresh");
                n
            })
            .collect();
        for g in 0..gates {
            let kinds = [
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Xnor,
                GateKind::Not,
                GateKind::Buf,
            ];
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                _ => 2 + usize::from(rng.gen_bool(0.3)),
            };
            let mut fanin: Vec<String> = Vec::new();
            while fanin.len() < arity {
                let cand = pool[rng.gen_range(0..pool.len())].clone();
                if !fanin.contains(&cand) {
                    fanin.push(cand);
                } else if fanin.len() >= pool.len() {
                    break;
                }
            }
            let name = format!("g{g}");
            let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
            b.add_gate(&name, kind, &refs).expect("fresh");
            pool.push(name);
        }
        // the last two nodes become outputs; since earlier gates may
        // also read them, outputs with fanout are common here
        let n = pool.len();
        b.mark_output(&pool[n - 1]).expect("fresh");
        if n >= 2 && pool[n - 2] != pool[n - 1] {
            let _ = b.mark_output(&pool[n - 2]);
        }
        b.build().expect("generated circuits are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Representative-only grading + projection == full-universe
    /// grading, status for status, at widths 1/2/4.
    #[test]
    fn collapsed_grading_matches_full_bit_for_bit(
        circuit in arb_circuit(),
        seed in any::<u64>(),
        chunks in 1usize..4,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let universe = CollapsedUniverse::build(&circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns: Vec<Pattern> = (0..chunks * 24)
            .map(|_| Pattern::random(&mut rng, circuit.inputs().len()))
            .collect();

        let mut full = FaultSim::new(&circuit, universe.full().clone()).with_threads(1);
        full.simulate(&patterns);

        for width in [1usize, 2, 4] {
            let mut reps =
                FaultSim::new(&circuit, universe.representatives().clone()).with_threads(width);
            // feed incrementally so mid-sequence state is exercised too
            for chunk in patterns.chunks(24) {
                reps.simulate(chunk);
            }
            prop_assert_eq!(
                reps.statuses_projected(&universe),
                full.statuses().to_vec(),
                "projected statuses diverge at width {}", width
            );
            let projected = reps.report_projected(&universe);
            prop_assert_eq!(projected, full.report());
            prop_assert_eq!(
                projected.coverage_pct().to_bits(),
                full.report().coverage_pct().to_bits()
            );
        }
    }

    /// The tentpole identity at the session layer: a representative-only
    /// (`InFlow`) session commits bit-identical sweeps to the
    /// uncollapsed (`Off`) flow for every fault model and pool width,
    /// including a non-monotone revisit below the checkpoint front.
    #[test]
    fn inflow_sessions_match_uncollapsed_flow(circuit in arb_circuit()) {
        let prefixes = [0usize, 12, 30];
        let models = [
            FaultModel::StuckAt,
            FaultModel::Transition,
            FaultModel::bridging(),
        ];
        for model in models {
            for width in [1usize, 2, 4] {
                let config = MixedSchemeConfig {
                    threads: width,
                    ..MixedSchemeConfig::default()
                };
                let mut inflow = ModelSession::with_collapse_mode(
                    &circuit,
                    config.clone(),
                    model,
                    CollapseMode::InFlow,
                );
                let mut off = ModelSession::with_collapse_mode(
                    &circuit,
                    config,
                    model,
                    CollapseMode::Off,
                );
                match (inflow.sweep(&prefixes), off.sweep(&prefixes)) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a.solutions().len(), b.solutions().len());
                        for (x, y) in a.solutions().iter().zip(b.solutions()) {
                            prop_assert_eq!(x.prefix_len, y.prefix_len);
                            prop_assert_eq!(
                                x.det_len, y.det_len,
                                "{:?} width {}: det_len diverges at p={}",
                                model, width, x.prefix_len
                            );
                            prop_assert_eq!(&x.coverage, &y.coverage);
                            prop_assert_eq!(&x.prefix_coverage, &y.prefix_coverage);
                            prop_assert_eq!(
                                x.generator.deterministic(),
                                y.generator.deterministic()
                            );
                        }
                        // a revisit below the committed front resumes
                        // from a checkpoint snapshot — identical too
                        let x = inflow.solve_at(7).expect("revisit below front solves");
                        let y = off.solve_at(7).expect("revisit below front solves");
                        prop_assert_eq!(x.det_len, y.det_len);
                        prop_assert_eq!(&x.coverage, &y.coverage);
                        prop_assert_eq!(
                            x.generator.deterministic(),
                            y.generator.deterministic()
                        );
                    }
                    // a degenerate circuit may be unsolvable — then both
                    // flows must refuse identically
                    (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
                    (a, b) => prop_assert!(
                        false,
                        "one flow failed where the other solved \
                         (inflow ok: {}, off ok: {})",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }

    /// Every full fault maps to a representative with the same
    /// observable behaviour class: a representative detected first at
    /// pattern k means every member of its class is detected by the
    /// prefix of length k+1 when graded directly.
    #[test]
    fn class_members_share_first_detection_windows(
        circuit in arb_circuit(),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let universe = CollapsedUniverse::build(&circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns: Vec<Pattern> = (0..32)
            .map(|_| Pattern::random(&mut rng, circuit.inputs().len()))
            .collect();
        let mut full = FaultSim::new(&circuit, universe.full().clone()).with_threads(1);
        full.simulate(&patterns);
        let mut reps =
            FaultSim::new(&circuit, universe.representatives().clone()).with_threads(1);
        reps.simulate(&patterns);
        for (i, _) in universe.full().iter().enumerate() {
            prop_assert_eq!(
                full.first_detection(i),
                reps.first_detection(universe.rep_of(i)),
                "fault {} and its representative detect at different patterns", i
            );
        }
    }
}

/// The pinned ISCAS universe cuts the tentpole claims: ~43 % of c432's
/// and ~40 % of c3540's stuck-at universe collapses away. These numbers
/// are part of the repo's measured contract — a collapse change that
/// moves them must update `BENCH_collapse.json` and this test together.
#[test]
fn pinned_iscas_universe_cuts() {
    for (name, full, reps) in [("c432", 1170usize, 667usize), ("c3540", 10750, 6416)] {
        let circuit = bist::netlist::iscas85::circuit(name).expect("known benchmark");
        let universe = CollapsedUniverse::build(&circuit);
        assert_eq!(universe.full().len(), full, "{name}: full universe size");
        assert_eq!(
            universe.representatives().len(),
            reps,
            "{name}: representative count"
        );
        let stats = universe.stats();
        assert_eq!(stats.full, full);
        assert_eq!(stats.representatives, reps);
    }
}

/// Width invariance across fault models: the representative-only paths
/// cannot make any model's solve depend on the pool width.
#[test]
fn model_solves_are_width_invariant() {
    let c17 = bist::netlist::iscas85::c17();
    for model in [
        FaultModel::StuckAt,
        FaultModel::Transition,
        FaultModel::bridging(),
    ] {
        let mut outcomes = Vec::new();
        for width in [1usize, 2, 4] {
            let mut config = MixedSchemeConfig {
                threads: width,
                ..MixedSchemeConfig::default()
            };
            config.atpg.threads = width;
            let mut session = ModelSession::new(&c17, config, model);
            let solution = session.solve_at(16).expect("c17 solves at p=16");
            outcomes.push((
                solution.prefix_len,
                solution.det_len,
                solution.coverage,
                solution.coverage.coverage_pct().to_bits(),
            ));
        }
        assert_eq!(outcomes[0], outcomes[1], "{model:?}: width 1 vs 2");
        assert_eq!(outcomes[0], outcomes[2], "{model:?}: width 1 vs 4");
    }
}
