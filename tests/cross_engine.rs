//! Cross-engine consistency tests: every independent implementation of the
//! same semantics must agree (bit-parallel vs naive simulation, PPSFP vs
//! serial fault grading, software LFSR vs synthesized hardware, PODEM
//! tests vs fault-simulator verdicts).

use bist_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn packed_vs_naive_on_three_profiles() {
    let mut rng = StdRng::seed_from_u64(2024);
    for name in ["c432", "c499", "c880"] {
        let c = iscas85::circuit(name).unwrap();
        let patterns: Vec<Pattern> = (0..64)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();
        let block = bist_logicsim::PatternBlock::pack(&c, &patterns);
        let mut sim = PackedSim::new(&c);
        let outs = sim.run(&block);
        for (j, p) in patterns.iter().enumerate() {
            let naive = bist_logicsim::naive_eval(&c, &p.to_bits());
            for (o, out_id) in c.outputs().iter().enumerate() {
                assert_eq!(
                    (outs[o] >> j) & 1 == 1,
                    naive[out_id.index()],
                    "{name}: output {o}, pattern {j}"
                );
            }
        }
    }
}

#[test]
fn ppsfp_vs_serial_on_c880_sampled_universe() {
    let c = iscas85::circuit("c880").unwrap();
    let universe = FaultList::mixed_model(&c);
    let sampled: FaultList = universe
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| i % 23 == 0)
        .map(|(_, f)| f)
        .collect();
    let mut rng = StdRng::seed_from_u64(7);
    let patterns: Vec<Pattern> = (0..120)
        .map(|_| Pattern::random(&mut rng, c.inputs().len()))
        .collect();

    let serial = bist_faultsim::serial::grade_sequence(&c, sampled.faults(), &patterns);
    let mut ppsfp = FaultSim::new(&c, sampled.clone());
    ppsfp.simulate(&patterns);
    for (i, &graded) in serial.iter().enumerate() {
        assert_eq!(
            graded,
            ppsfp.first_detection(i),
            "fault {}",
            sampled.get(i).unwrap().describe(&c)
        );
    }
}

#[test]
fn podem_patterns_verified_by_independent_grader() {
    let c = iscas85::circuit("c1355").unwrap();
    let faults = FaultList::stuck_at_collapsed(&c);
    let mut checked = 0;
    for fault in faults.iter().step_by(31) {
        let Fault::StuckAt { site, pin, value } = *fault else {
            continue;
        };
        let outcome = bist_atpg::podem(
            &c,
            bist_logicsim::InjectedFault {
                site,
                pin,
                stuck: value,
            },
            bist_atpg::PodemOptions::default(),
        );
        if let bist_atpg::PodemOutcome::Test(p) = outcome {
            assert!(
                bist_faultsim::serial::detects(&c, *fault, None, &p),
                "PODEM pattern fails independent grading for {}",
                fault.describe(&c)
            );
            checked += 1;
        }
    }
    assert!(checked > 10, "too few faults exercised ({checked})");
}

#[test]
fn lfsrom_software_eval_equals_hardware_replay() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut seq: Vec<Pattern> = Vec::new();
    while seq.len() < 20 {
        let p = Pattern::random(&mut rng, 12);
        if !seq.contains(&p) {
            seq.push(p); // distinct patterns: the state *is* the pattern
        }
    }
    let generator = LfsromGenerator::synthesize(&seq).unwrap();
    assert_eq!(generator.extra_flip_flops(), 0);
    // software: iterate the next-state network
    let net = generator.network();
    let mut state = seq[0].clone();
    let mut software = vec![state.clone()];
    for _ in 1..seq.len() {
        state = net.eval(&state);
        software.push(state.clone());
    }
    assert_eq!(software, seq);
    // hardware: clock the netlist
    assert_eq!(generator.replay(seq.len()), seq);
}

#[test]
fn incremental_imply_equals_full_imply() {
    use bist_logicsim::{FiveValueSim, InjectedFault};
    let c = iscas85::circuit("c432").unwrap();
    let fault = InjectedFault {
        site: c.outputs()[0],
        pin: None,
        stuck: false,
    };
    let mut rng = StdRng::seed_from_u64(3);
    let mut incremental = FiveValueSim::new(&c, Some(fault));
    incremental.imply();
    let mut reference = FiveValueSim::new(&c, Some(fault));
    for step in 0..200 {
        let pi = rand::Rng::gen_range(&mut rng, 0..c.inputs().len());
        let v = match rand::Rng::gen_range(&mut rng, 0..3) {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        };
        incremental.set_input(pi, v);
        incremental.imply_from_input(pi);
        reference.set_input(pi, v);
        reference.imply();
        for idx in 0..c.num_nodes() {
            let id = bist_netlist::NodeId::from_index(idx);
            assert_eq!(
                incremental.value(id),
                reference.value(id),
                "step {step}: node {id} diverged"
            );
        }
    }
}
