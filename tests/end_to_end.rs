//! Workspace-level integration tests: the complete mixed-BIST pipeline
//! across crates, on real (c17) and synthetic-profile benchmarks.

use bist_core::prelude::*;

/// The paper's Figure 2/3 story on the exact c17 netlist: a deterministic
/// sequence is found, encoded in hardware, and the hardware detects every
/// fault when its replayed patterns are graded.
#[test]
fn c17_hardware_patterns_detect_every_fault() {
    let c17 = iscas85::c17();
    let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
    let solution = session.solve_at(6).expect("flow succeeds");
    assert!(solution.generator.verify());

    // grade the *hardware-replayed* sequence from scratch
    let (random, det) = solution.generator.replay();
    let mut sim = FaultSim::new(&c17, FaultList::mixed_model(&c17));
    sim.simulate(&random);
    sim.simulate(&det);
    let report = sim.report();
    assert_eq!(
        report.undetected + report.aborted,
        0,
        "hardware sequence must detect the full universe: {report}"
    );
}

/// The deterministic suffix shrinks monotonically in the prefix length
/// (the lever all the paper's cost curves pull on).
#[test]
fn suffix_shrinks_with_prefix_on_c432() {
    let c = iscas85::circuit("c432").unwrap();
    // one monotone session: the prefix grading is shared across all three
    let mut session = BistSession::new(&c, MixedSchemeConfig::default());
    let d0 = session.solve_at(0).unwrap().det_len;
    let d200 = session.solve_at(200).unwrap().det_len;
    let d800 = session.solve_at(800).unwrap().det_len;
    assert_eq!(session.stats().patterns_simulated, 800);
    assert!(d0 > d200, "d(0)={d0} vs d(200)={d200}");
    assert!(d200 >= d800, "d(200)={d200} vs d(800)={d800}");
}

/// Coverage parity: solving with any prefix reaches the same detected
/// count as the pure deterministic run (ATPG tops up whatever the prefix
/// missed).
#[test]
fn all_prefixes_reach_equal_coverage_on_c880() {
    let c = iscas85::circuit("c880").unwrap();
    let mut session = BistSession::new(&c, MixedSchemeConfig::default());
    let a = session.solve_at(0).unwrap();
    let b = session.solve_at(300).unwrap();
    // abort collateral detection differs between the two runs (the ATPG
    // sees a different fault list either way), so the spread can lean a
    // few faults in either direction — but only a sliver of the universe
    let spread = b.coverage.detected.abs_diff(a.coverage.detected);
    assert!(
        spread * 100 <= a.coverage.total(),
        "coverage spread {spread} too wide"
    );
    assert!(b.generator_area_mm2 <= a.generator_area_mm2);
}

/// The synthesized mixed generator netlist is a well-formed circuit that
/// survives a `.bench` round-trip (so it could be handed to any other
/// tool).
#[test]
fn generator_netlist_round_trips_through_bench_format() {
    let c17 = iscas85::c17();
    let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
    let solution = session.solve_at(4).expect("flow succeeds");
    let netlist = solution.generator.netlist();
    let text = bist_netlist::bench::write(netlist);
    let back = bist_netlist::bench::parse("generator", &text).expect("round-trip parses");
    assert_eq!(back.num_nodes(), netlist.num_nodes());
    assert_eq!(back.num_dffs(), netlist.num_dffs());
}

/// Redundant faults cap the achievable coverage exactly as the paper's
/// 96.7 % ceiling story describes: the planted redundancies in the c3540
/// profile are proven by the ATPG and excluded from the efficiency
/// denominator.
#[test]
fn redundancy_creates_a_coverage_ceiling() {
    let c = iscas85::circuit("c1908").unwrap();
    let mut session = BistSession::new(&c, MixedSchemeConfig::default());
    let s = session.solve_at(100).unwrap();
    assert!(
        s.coverage.redundant > 0,
        "the c1908 profile plants redundant structures"
    );
    assert!(s.coverage.coverage_pct() < 100.0);
    assert!(s.coverage.achievable_pct() < 100.0);
    assert!(s.coverage.efficiency_pct() > s.coverage.coverage_pct());
}

/// The LFSR netlist, the software stepper and the scan expander agree —
/// across the whole pseudo-random phase of a mixed generator.
#[test]
fn pseudo_random_phase_matches_software_model() {
    let c = iscas85::circuit("c499").unwrap();
    let mut session = BistSession::new(&c, MixedSchemeConfig::default());
    let s = session.solve_at(40).unwrap();
    let expected = session.pseudo_random_patterns(40);
    assert_eq!(s.generator.expected_random(), &expected[..]);
    let (random, _) = s.generator.replay();
    assert_eq!(random, expected);
}
