//! Deterministic statistical contract of the `CoverageEstimate` job.
//!
//! Nothing here is probabilistic at test time: every seed is pinned, so
//! each assertion is a reproducible fact about one specific sample. The
//! battery checks three things — the Wilson interval brackets the exact
//! coverage for the pinned samples on c17/s27/c432, re-running a spec
//! reproduces the interval byte for byte, and the result survives the
//! wire protocol and the on-disk result cache bit-identically (with the
//! warm run announcing itself via the `cache_hit` progress flag).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bist::engine::wire::{self, Response};
use bist::engine::{CircuitSource, Engine, JobSpec, ProgressEvent, ResultCache};
use bist_core::prelude::*;
use bist_faultmodel::estimate_coverage;

/// A fresh, private cache directory per test (under cargo's per-target
/// scratch space, cleaned with the target dir).
fn fresh_dir(test: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "bist-estimate-{test}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Exact coverage of the first `prefix_len` pseudo-random patterns over
/// the full stuck-at universe — the same expander construction the
/// estimator grades, so the comparison is stream-for-stream.
fn exact_coverage_pct(circuit: &Circuit, config: &MixedSchemeConfig, prefix_len: usize) -> f64 {
    let mut sim = FaultSim::new(circuit, FaultList::stuck_at_full(circuit)).with_threads(1);
    let mut expander = ScanExpander::new(Lfsr::fibonacci(config.poly, 1), circuit.inputs().len());
    sim.simulate(&expander.patterns(prefix_len));
    sim.report().coverage_pct()
}

#[test]
fn pinned_intervals_contain_exact_coverage() {
    let config = MixedSchemeConfig::default();
    let cases: &[(Circuit, usize, usize)] = &[
        (iscas85::c17(), 32, 64),
        (bist::netlist::iscas89::s27(), 32, 64),
        (iscas85::circuit("c432").expect("known benchmark"), 200, 256),
    ];
    for (circuit, prefix, samples) in cases {
        let exact = exact_coverage_pct(circuit, &config, *prefix);
        for seed in [0xb157u64, 0xdead_beef, 1] {
            let e = estimate_coverage(circuit, &config, *prefix, *samples, 95, seed);
            assert!(
                e.lo_pct <= exact && exact <= e.hi_pct,
                "{}: exact {exact:.3} outside [{:.3}, {:.3}] for seed {seed:#x}",
                circuit.name(),
                e.lo_pct,
                e.hi_pct
            );
            assert!(e.lo_pct <= e.estimate_pct && e.estimate_pct <= e.hi_pct);
            assert_eq!(e.samples, (*samples).min(e.fault_universe));
            assert_eq!(e.confidence, 95);
            assert_eq!(e.seed, seed);
        }
    }
}

/// When the sample budget covers the whole universe, the estimate's
/// point value *is* the exact coverage — the sampler degrades to a
/// census, not an approximation.
#[test]
fn census_sized_samples_report_exact_coverage() {
    let config = MixedSchemeConfig::default();
    let c17 = iscas85::c17();
    let exact = exact_coverage_pct(&c17, &config, 16);
    let e = estimate_coverage(&c17, &config, 16, 10_000, 99, 7);
    assert_eq!(e.samples, e.fault_universe, "budget covers the universe");
    assert_eq!(e.estimate_pct.to_bits(), exact.to_bits());
}

#[test]
fn reruns_reproduce_the_interval_byte_identically() {
    let config = MixedSchemeConfig::default();
    let c432 = iscas85::circuit("c432").expect("known benchmark");
    let first = estimate_coverage(&c432, &config, 100, 128, 90, 0xb157);
    let again = estimate_coverage(&c432, &config, 100, 128, 90, 0xb157);
    assert_eq!(first, again);
    assert_eq!(first.estimate_pct.to_bits(), again.estimate_pct.to_bits());
    assert_eq!(first.lo_pct.to_bits(), again.lo_pct.to_bits());
    assert_eq!(first.hi_pct.to_bits(), again.hi_pct.to_bits());

    // and through the engine, at different pool widths
    let spec = || JobSpec::estimate(CircuitSource::iscas85("c432"), 100);
    let narrow = Engine::with_threads(1).run(spec()).expect("estimate runs");
    let wide = Engine::with_threads(4).run(spec()).expect("estimate runs");
    let encode = |result: bist::engine::JobResult| {
        wire::encode_response(&Response::Result {
            job: 1,
            cached: false,
            result: Box::new(result),
        })
    };
    assert_eq!(
        encode(narrow),
        encode(wide),
        "estimates are bit-identical at every pool width"
    );
}

#[test]
fn estimates_survive_wire_and_cache_round_trips() {
    let dir = fresh_dir("round-trip");
    let spec = || JobSpec::estimate(CircuitSource::iscas85("c17"), 24);

    // cold: computes and stores; the finished event is not a cache hit
    let cold = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    let handle = cold.submit(spec());
    let feed = handle.progress().clone();
    let cold_result = handle.wait().expect("estimate runs");
    assert!(feed.drain().iter().any(|e| matches!(
        e,
        ProgressEvent::Finished {
            cache_hit: false,
            ..
        }
    )));

    // wire: encode → decode → re-encode is byte-identical
    let line = wire::encode_response(&Response::Result {
        job: 9,
        cached: false,
        result: Box::new(cold_result),
    });
    let decoded = wire::decode_response(&line).expect("estimate result decodes");
    assert_eq!(line, wire::encode_response(&decoded));

    // warm: a fresh engine over the same directory serves the same
    // bytes from disk and flags the hit in the progress stream
    let warm = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    let handle = warm.submit(spec());
    let feed = handle.progress().clone();
    let warm_result = handle.wait().expect("cached estimate loads");
    assert_eq!(warm.cache().expect("attached").hits(), 1);
    assert!(feed.drain().iter().any(|e| matches!(
        e,
        ProgressEvent::Finished {
            cache_hit: true,
            ..
        }
    )));
    let warm_line = wire::encode_response(&Response::Result {
        job: 9,
        cached: false,
        result: Box::new(warm_result),
    });
    assert_eq!(line, warm_line, "disk round-trip is bit-identical");
}
