//! Cross-crate integration tests for the extension systems: delay faults
//! (`bist-delay`), baseline TPG architectures (`bist-baselines`) and HDL
//! emission (`bist-hdl`), exercised together with the core mixed-scheme
//! flow.

use bist_atpg::TestCube;
use bist_baselines::{CounterPla, LfsromTpg, Reseeding, RomCounter, TestPatternGenerator};
use bist_core::prelude::*;
use bist_delay::{
    serial, DelayAtpgOptions, DelayTestGenerator, TransitionFaultList, TransitionSim,
};
use bist_hdl::{emit_verilog, emit_verilog_testbench, emit_vhdl, HdlOptions};
use bist_scan::ScanDesign;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

// ---------------------------------------------------------------------
// deterministic encoders are faithful replayers
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_encoder_replays_arbitrary_sequences(
        seed in any::<u64>(),
        width in 2usize..12,
        len in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let seq: Vec<Pattern> = (0..len).map(|_| Pattern::random(&mut rng, width)).collect();

        let rom = RomCounter::new(&seq).expect("valid set");
        prop_assert_eq!(rom.sequence(), seq.clone());

        let pla = CounterPla::synthesize(&seq).expect("valid set");
        prop_assert_eq!(pla.sequence(), seq.clone());

        let lfsrom = LfsromTpg::new(LfsromGenerator::synthesize(&seq).expect("valid set"));
        prop_assert_eq!(lfsrom.sequence(), seq);
    }

    #[test]
    fn reseeding_realizes_arbitrary_sparse_cubes(
        seed in any::<u64>(),
        width in 4usize..40,
        len in 1usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cubes: Vec<TestCube> = (0..len)
            .map(|_| {
                let mut c = TestCube::unspecified(width);
                let spec = rng.gen_range(1..=width.min(12));
                for _ in 0..spec {
                    let pos = rng.gen_range(0..width);
                    c.set(pos, Some(rng.gen()));
                }
                c
            })
            .collect();
        let tpg = Reseeding::encode(&cubes).expect("sparse cubes encode");
        let seq = tpg.sequence();
        for (c, p) in cubes.iter().zip(&seq) {
            prop_assert!(c.matches(p), "cube {} vs pattern {}", c, p);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scan_test_views_are_cycle_accurate_for_random_substrates(seed in any::<u64>()) {
        // a fresh synthetic sequential circuit per case: same profile
        // shape, different seed — scan insertion must stay equivalent
        let profile = bist_netlist::iscas89::SeqProfile {
            name: "prop",
            inputs: 5,
            outputs: 4,
            dffs: 6,
            gates: 40,
            seed,
        };
        let circuit = bist_netlist::iscas89::synthesize(&profile);
        let scan = ScanDesign::insert(&circuit).expect("has flip-flops");
        prop_assert_eq!(scan.verify(40, seed ^ 0xABCD), None);
        // split/concat round-trips
        let p = Pattern::from_fn(scan.pattern_width(), |i| i % 3 == 0);
        let (x, s) = scan.split_pattern(&p);
        prop_assert_eq!(x.len() + s.len(), p.len());
    }
}

// ---------------------------------------------------------------------
// delay-fault engine agreement and ATPG validity
// ---------------------------------------------------------------------

#[test]
fn packed_transition_sim_agrees_with_serial_reference_on_c432() {
    let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
    let faults = TransitionFaultList::universe(&c);
    let width = c.inputs().len();
    let mut rng = StdRng::seed_from_u64(432);
    for _ in 0..120 {
        let v1 = Pattern::random(&mut rng, width);
        let v2 = Pattern::random(&mut rng, width);
        let fi = rng.gen_range(0..faults.len());
        let fault = *faults.get(fi).expect("in range");

        let naive = serial::detects(&c, fault, &v1, &v2);
        let single: TransitionFaultList = [fault].into_iter().collect();
        let mut sim = TransitionSim::new(&c, single);
        sim.simulate(&[v1.clone(), v2.clone()]);
        assert_eq!(
            naive,
            sim.report().detected == 1,
            "{} on ({v1}, {v2})",
            fault.describe(&c)
        );
    }
}

#[test]
fn delay_atpg_pairs_check_out_against_the_reference() {
    let c = bist_netlist::iscas85::circuit("c880").expect("known benchmark");
    let faults = TransitionFaultList::universe(&c);
    let run = DelayTestGenerator::new(&c, faults, DelayAtpgOptions::default()).run();
    assert!(
        run.report.coverage_pct() > 85.0,
        "{:.2}",
        run.report.coverage_pct()
    );
    for unit in run.units.iter().take(60) {
        assert!(
            serial::detects(&c, unit.target, &unit.patterns[0], &unit.patterns[1]),
            "pair does not detect {}",
            unit.target.describe(&c)
        );
        for (cube, pattern) in unit.cubes.iter().zip(&unit.patterns) {
            assert!(cube.matches(pattern));
        }
    }
}

#[test]
fn mixed_sequence_beats_pure_random_on_transition_faults() {
    // the paper's §3.1 argument, end to end: same total test length,
    // mixed (random prefix + delay-targeted deterministic pairs) vs pure
    // random, graded on transition faults
    let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
    let width = c.inputs().len();
    let faults = TransitionFaultList::universe(&c);
    let p = 128usize;

    let prefix = pseudo_random_patterns(paper_poly(), width, p);
    let run = DelayTestGenerator::new(
        &c,
        faults.clone(),
        DelayAtpgOptions {
            prefix: prefix.clone(),
            ..DelayAtpgOptions::default()
        },
    )
    .run();
    let mixed_cov = run.report.coverage_pct();
    let total = p + run.num_patterns();

    let pure = pseudo_random_patterns(paper_poly(), width, total);
    let mut sim = TransitionSim::new(&c, faults);
    sim.simulate(&pure);
    let pure_cov = sim.report().coverage_pct();

    assert!(
        mixed_cov > pure_cov,
        "mixed {mixed_cov:.2}% must beat pure random {pure_cov:.2}% at length {total}"
    );
}

// ---------------------------------------------------------------------
// HDL emission of real generator hardware
// ---------------------------------------------------------------------

#[test]
fn mixed_generator_netlist_emits_lint_clean_hdl() {
    let c17 = bist_netlist::iscas85::c17();
    let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
    let solution = session.solve_at(8).expect("solvable");
    let netlist = solution.generator.netlist();

    let options = HdlOptions::default().with_module_name("c17_mixed_bist");
    let verilog = emit_verilog(netlist, &options);
    let vhdl = emit_vhdl(netlist, &options);
    bist_hdl::lint::check_verilog(&verilog).expect("clean Verilog");
    bist_hdl::lint::check_vhdl(&vhdl).expect("clean VHDL");
    assert!(verilog.contains("module c17_mixed_bist"));
    assert!(vhdl.contains("entity c17_mixed_bist is"));

    // the testbench must carry the generator's whole emitted sequence
    let (random, deterministic) = solution.generator.replay();
    let expected: Vec<Pattern> = random.into_iter().chain(deterministic).collect();
    let tb = emit_verilog_testbench(netlist, &options, &expected);
    assert!(tb.matches("expect_mem[").count() > expected.len());
    bist_hdl::lint::check_verilog(&tb).expect("clean testbench");
}

// ---------------------------------------------------------------------
// baseline encoders on a real ATPG set, cross-checked by fault grading
// ---------------------------------------------------------------------

#[test]
fn encoders_reproduce_atpg_coverage_on_c880() {
    let c = bist_netlist::iscas85::circuit("c880").expect("known benchmark");
    let faults = FaultList::mixed_model(&c);
    let run = bist_atpg::TestGenerator::new(&c, faults.clone(), Default::default()).run();
    let seq = run.sequence();

    for (name, replay) in [
        (
            "rom-counter",
            RomCounter::new(&seq).expect("valid").sequence(),
        ),
        (
            "counter-pla",
            CounterPla::synthesize(&seq).expect("valid").sequence(),
        ),
    ] {
        let mut sim = FaultSim::new(&c, faults.clone());
        sim.simulate(&replay);
        assert_eq!(
            sim.report().detected,
            run.report.detected,
            "{name} replay must grade identically"
        );
    }
}
