//! The `bist-lint` rule registry, pinned: every `BLxxx` code has a
//! trigger fixture asserting the exact source line it points at, the
//! SCOAP tables for c17 and s27 are checked against hand-computed
//! values, and linting never panics on the parse-robustness mutation
//! corpus.

use bist::lint::{
    lint_bench, lint_verilog, lint_vhdl, Diagnostic, LintOptions, LintReport, RuleCode,
    ScoapAnalysis,
};
use bist::netlist::{iscas85, iscas89};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The diagnostic of `code` in `report`, asserting it fired exactly once.
fn one(report: &LintReport, code: RuleCode) -> &Diagnostic {
    let hits: Vec<&Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == code)
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "{code} should fire exactly once, got {:?}",
        report.diagnostics
    );
    hits[0]
}

/// Every netlist rule (`BL001`–`BL014`) fires on its trigger fixture,
/// exactly once, pointing at the expected source line — and together the
/// fixtures exercise the whole `BL0xx` registry.
#[test]
fn every_netlist_code_has_a_trigger_fixture() {
    let tight = LintOptions {
        max_fanout: 2,
        cc_limit: 2,
        co_limit: 1,
        ..LintOptions::default()
    };
    let default = LintOptions::default();
    let cases: &[(RuleCode, &str, &LintOptions, usize)] = &[
        (
            RuleCode::CombinationalCycle,
            "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)",
            &default,
            3,
        ),
        (
            RuleCode::UndrivenNet,
            "INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)",
            &default,
            3,
        ),
        (
            RuleCode::DuplicateDefinition,
            "INPUT(a)\nINPUT(a)\nOUTPUT(a)",
            &default,
            2,
        ),
        (
            RuleCode::BadFanin,
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)",
            &default,
            3,
        ),
        // whole-netlist defect: no single line owns it
        (
            RuleCode::EmptyInterface,
            "INPUT(a)\na2 = NOT(a)",
            &default,
            0,
        ),
        (
            RuleCode::SyntaxError,
            "INPUT(a)\nOUTPUT(y)\nwat",
            &default,
            3,
        ),
        (
            RuleCode::DanglingGate,
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = BUF(a)",
            &default,
            4,
        ),
        (
            RuleCode::FloatingInput,
            "INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NOT(a)",
            &default,
            2,
        ),
        (
            RuleCode::ConstantDrive,
            "INPUT(a)\nOUTPUT(y)\nk = CONST1()\ny = AND(a, k)",
            &default,
            3,
        ),
        (
            // `a` fans out to b0, b1, b2 — three pins over the limit of 2
            RuleCode::HighFanout,
            "INPUT(a)\nOUTPUT(y)\nb0 = NOT(a)\nb1 = NOT(a)\nb2 = NOT(a)\ny = AND(b0, b1, b2)",
            &tight,
            1,
        ),
        (
            // worst controllability is y: CC1 = 3 (t1) + 1 (c) + 1 = 5
            RuleCode::HardToControl,
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt1 = AND(a, b)\ny = AND(t1, c)",
            &tight,
            6,
        ),
        (
            // worst observability is a: CO = CO(t1) + CC1(b) + 1 = 4
            RuleCode::HardToObserve,
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt1 = AND(a, b)\ny = AND(t1, c)",
            &tight,
            1,
        ),
        (
            RuleCode::TestabilitySummary,
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)",
            &default,
            0,
        ),
        (
            RuleCode::SequentialLoop,
            "INPUT(a)\nOUTPUT(y)\nq = DFF(q)\ny = AND(a, q)",
            &default,
            3,
        ),
    ];

    let mut covered: Vec<RuleCode> = Vec::new();
    for (code, source, options, line) in cases {
        let report = lint_bench("fixture", source, options);
        let d = one(&report, *code);
        assert_eq!(d.span.line, *line, "{code} on {source:?}");
        assert_eq!(d.severity, code.default_severity(), "{code}");
        if !covered.contains(code) {
            covered.push(*code);
        }
    }
    let netlist_rules: Vec<RuleCode> = RuleCode::ALL
        .iter()
        .copied()
        .filter(|r| !r.code().starts_with("BL1"))
        .collect();
    covered.sort_unstable();
    assert_eq!(
        covered, netlist_rules,
        "every BL0xx rule needs a trigger fixture"
    );
}

/// Every HDL rule (`BL101`–`BL103`) fires on its snippet with the right
/// line, through both front-ends where the defect exists in both.
#[test]
fn every_hdl_code_has_a_trigger_fixture() {
    // BL101: `y` assigned but never declared (line 5)
    let report = lint_verilog("module t (\n  a\n);\n  input a;\n  assign y = ~a;\nendmodule\n");
    let d = one(&report, RuleCode::HdlUndeclared);
    assert_eq!(d.span.line, 5);

    // BL102: port `a` declared twice (line 5)
    let report = lint_verilog("module t (\n  a\n);\n  input a;\n  input a;\nendmodule\n");
    let d = one(&report, RuleCode::HdlDuplicate);
    assert_eq!(d.span.line, 5);

    // BL103: module never closes — attributed to the last line
    let report = lint_verilog("module t (\n  a\n);\n  input a;\n");
    let d = one(&report, RuleCode::HdlUnbalanced);
    assert_eq!(d.span.line, 4);

    // the VHDL front-end shares the vocabulary
    let report = lint_vhdl(
        "entity t is\n  port (\n    a : in std_logic\n  );\nend entity t;\n\
         architecture s of t is\nbegin\n  ghost <= not a;\nend architecture s;\n",
    );
    let d = one(&report, RuleCode::HdlUndeclared);
    assert_eq!(d.span.line, 8);

    let hdl_rules: Vec<&RuleCode> = RuleCode::ALL
        .iter()
        .filter(|r| r.code().starts_with("BL1"))
        .collect();
    assert_eq!(hdl_rules.len(), 3, "new HDL rules need fixtures here");
}

/// SCOAP on c17, pinned bit-exact against the hand-computed tables
/// (Goldstein's rules applied to the exact ISCAS-85 netlist on paper).
#[test]
fn c17_scoap_matches_the_hand_computed_table() {
    let c17 = iscas85::c17();
    let scoap = ScoapAnalysis::analyze(&c17);
    let expected: &[(&str, u32, u32, u32)] = &[
        // (node, CC0, CC1, CO)
        ("G1", 1, 1, 5),
        ("G2", 1, 1, 6),
        ("G3", 1, 1, 5),
        ("G6", 1, 1, 7),
        ("G7", 1, 1, 6),
        ("G10", 3, 2, 3),
        ("G11", 3, 2, 5),
        ("G16", 4, 2, 3),
        ("G19", 4, 2, 3),
        ("G22", 5, 4, 0),
        ("G23", 5, 5, 0),
    ];
    assert_eq!(c17.num_nodes(), expected.len(), "table covers every node");
    for &(name, cc0, cc1, co) in expected {
        let id = c17.find(name).expect("known node");
        assert_eq!(scoap.cc0(id), cc0, "CC0({name})");
        assert_eq!(scoap.cc1(id), cc1, "CC1({name})");
        assert_eq!(scoap.co(id), co, "CO({name})");
    }

    let summary = scoap.summary(&c17, 5);
    assert_eq!(summary.max_cc0, Some(("G22".to_owned(), 5)));
    assert_eq!(summary.max_cc1, Some(("G23".to_owned(), 5)));
    assert_eq!(summary.max_co, Some(("G6".to_owned(), 7)));
    // score = max(CC0, CC1) + CO, ties broken by name
    let ranked: Vec<(&str, u64)> = summary
        .resistance
        .iter()
        .map(|r| (r.name.as_str(), r.score))
        .collect();
    assert_eq!(
        ranked,
        [("G11", 8), ("G6", 8), ("G16", 7), ("G19", 7), ("G2", 7)]
    );
}

/// SCOAP on s27, pinned bit-exact — this is the fixture that locks in
/// the full-scan flip-flop policy (DFF outputs are pseudo primary
/// inputs, D pins are observed at scan-capture cost 1).
#[test]
fn s27_scoap_matches_the_hand_computed_table() {
    let s27 = iscas89::s27();
    let scoap = ScoapAnalysis::analyze(&s27);
    let expected: &[(&str, u32, u32, u32)] = &[
        // (node, CC0, CC1, CO)
        ("G0", 1, 1, 5),
        ("G1", 1, 1, 5),
        ("G2", 1, 1, 4),
        ("G3", 1, 1, 11),
        ("G5", 1, 1, 9),  // DFF: pseudo primary input
        ("G6", 1, 1, 12), // DFF
        ("G7", 1, 1, 5),  // DFF
        ("G8", 2, 4, 9),
        ("G9", 7, 5, 3),
        ("G10", 3, 5, 1), // D pin of G5: scan capture
        ("G11", 2, 9, 1), // D pin of G6, also observed through G17
        ("G12", 2, 3, 3),
        ("G13", 2, 4, 1), // D pin of G7
        ("G14", 2, 2, 4),
        ("G15", 5, 4, 6),
        ("G16", 4, 2, 8),
        ("G17", 10, 3, 0), // primary output
    ];
    assert_eq!(s27.num_nodes(), expected.len(), "table covers every node");
    for &(name, cc0, cc1, co) in expected {
        let id = s27.find(name).expect("known node");
        assert_eq!(scoap.cc0(id), cc0, "CC0({name})");
        assert_eq!(scoap.cc1(id), cc1, "CC1({name})");
        assert_eq!(scoap.co(id), co, "CO({name})");
    }
}

/// End-to-end lint of the embedded s27: both feedback registers are
/// reported as sequential loops (info level), and nothing else fires.
#[test]
fn s27_lints_clean_with_two_feedback_loops() {
    let report = lint_bench("s27", iscas89::S27_BENCH, &LintOptions::default());
    assert!(report.is_clean(), "unexpected findings: {report:?}");
    let loops = report
        .diagnostics
        .iter()
        .filter(|d| d.code == RuleCode::SequentialLoop)
        .count();
    assert_eq!(loops, 2, "{{G5..G16}} and {{G7,G12,G13}} feedback loops");
    one(&report, RuleCode::TestabilitySummary);
    assert!(report.scoap.is_some());
}

/// Applies one seeded corruption to valid `.bench` text (the same
/// corruption classes as `tests/parse_robustness.rs`).
fn mutate(source: &str, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = source.to_owned();
    match rng.gen_range(0..5) {
        // truncate at an arbitrary char boundary
        0 => {
            let cut = rng.gen_range(0..=text.chars().count());
            text = text.chars().take(cut).collect();
        }
        // overwrite one char with line noise
        1 => {
            let noise = ['(', ')', '=', ',', '#', 'Z', '7', ' ', '\u{e9}'];
            let chars: Vec<char> = text.chars().collect();
            if !chars.is_empty() {
                let at = rng.gen_range(0..chars.len());
                let mut chars = chars;
                chars[at] = noise[rng.gen_range(0..noise.len())];
                text = chars.into_iter().collect();
            }
        }
        // delete a whole line
        2 => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.len() > 1 {
                let drop = rng.gen_range(0..lines.len());
                text = lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, l)| *l)
                    .collect::<Vec<_>>()
                    .join("\n");
            }
        }
        // duplicate a line
        3 => {
            let lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let dup = rng.gen_range(0..lines.len());
                let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
                for (i, l) in lines.iter().enumerate() {
                    out.push(l);
                    if i == dup {
                        out.push(l);
                    }
                }
                text = out.join("\n");
            }
        }
        // splice in a garbage declaration
        _ => {
            let garbage = [
                "wat",
                "G1 = FROB(G2)",
                "OUTPUT(",
                "= AND(a, b)",
                "INPUT(G1)",
            ];
            let lines: Vec<&str> = text.lines().collect();
            let at = rng.gen_range(0..=lines.len());
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
            out.extend_from_slice(&lines[..at]);
            out.push(garbage[rng.gen_range(0..garbage.len())]);
            out.extend_from_slice(&lines[at..]);
            text = out.join("\n");
        }
    }
    text
}

/// Lints corrupted text and checks the contract: a deterministic report,
/// either one located parse error (no SCOAP) or a full analysis whose
/// findings all point inside the source.
fn assert_lint_contract(name: &str, text: &str) {
    let options = LintOptions::default();
    let report = lint_bench(name, text, &options);
    assert_eq!(report, lint_bench(name, text, &options), "lint determinism");
    match &report.scoap {
        None => {
            assert_eq!(
                report.diagnostics.len(),
                1,
                "parse failures yield one finding"
            );
            assert!(report.has_errors());
            assert!(
                report.diagnostics[0].span.line <= text.lines().count(),
                "span beyond the source: {:?}",
                report.diagnostics[0]
            );
        }
        Some(summary) => {
            assert!(summary.nodes > 0);
            for d in &report.diagnostics {
                assert!(
                    d.span.line <= text.lines().count(),
                    "span beyond the source: {d:?}"
                );
            }
            let codes: Vec<RuleCode> = report.diagnostics.iter().map(|d| d.code).collect();
            assert!(codes.contains(&RuleCode::TestabilitySummary), "{codes:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Linting any seeded corruption of c17 never panics and honours the
    /// report contract.
    #[test]
    fn lint_never_panics_on_corrupted_iscas85(seed in any::<u64>(), layers in 1usize..4) {
        let mut text = iscas85::C17_BENCH.to_owned();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..layers {
            text = mutate(&text, rng.gen());
        }
        assert_lint_contract("c17-mutant", &text);
    }

    /// Same over the sequential s27 (exercises DFF declarations, forward
    /// references and the feedback-loop rule under corruption).
    #[test]
    fn lint_never_panics_on_corrupted_iscas89(seed in any::<u64>(), layers in 1usize..4) {
        let mut text = iscas89::S27_BENCH.to_owned();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..layers {
            text = mutate(&text, rng.gen());
        }
        assert_lint_contract("s27-mutant", &text);
    }
}
