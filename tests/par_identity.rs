//! Parallel-vs-serial bit-identity: the `bist-par` contract.
//!
//! Every parallel engine in the workspace (PPSFP grading, batched ATPG,
//! the session sweep) must produce results **bit-identical** to its
//! one-thread form at every pool width — the pool moves wall-clock only.
//! These properties drive random circuits, random pattern streams, random
//! universe permutations (which permute the fault-drop order) and random
//! feeding chunkings through both forms and compare everything observable.

use bist_core::prelude::*;
use proptest::prelude::*;

/// Random small circuits (same construction as tests/properties.rs).
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..8, 2usize..24, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = CircuitBuilder::new("par-prop");
        let mut pool: Vec<String> = (0..inputs)
            .map(|i| {
                let n = format!("i{i}");
                b.add_input(&n).expect("fresh");
                n
            })
            .collect();
        for g in 0..gates {
            let kinds = [
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Xnor,
                GateKind::Not,
                GateKind::Buf,
            ];
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                _ => 2 + usize::from(rng.gen_bool(0.3)),
            };
            let mut fanin: Vec<String> = Vec::new();
            while fanin.len() < arity {
                let cand = pool[rng.gen_range(0..pool.len())].clone();
                if !fanin.contains(&cand) {
                    fanin.push(cand);
                } else if fanin.len() >= pool.len() {
                    break;
                }
            }
            let name = format!("g{g}");
            let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
            b.add_gate(&name, kind, &refs).expect("fresh");
            pool.push(name);
        }
        let n = pool.len();
        b.mark_output(&pool[n - 1]).expect("fresh");
        if n >= 2 && pool[n - 2] != pool[n - 1] {
            let _ = b.mark_output(&pool[n - 2]);
        }
        b.build().expect("generated circuits are valid")
    })
}

/// A deterministic Fisher–Yates permutation of the mixed fault universe:
/// reordering the list permutes both the grading order and the ATPG
/// walk/fault-drop order.
fn permuted_universe(circuit: &Circuit, seed: u64) -> FaultList {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut faults: Vec<Fault> = FaultList::mixed_model(circuit).iter().copied().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..faults.len()).rev() {
        faults.swap(i, rng.gen_range(0..=i));
    }
    faults.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PPSFP grading: any thread count, any drop ordering, any feeding
    /// chunking — statuses and first-detection indices never move.
    #[test]
    fn fault_sim_identical_at_every_width(
        circuit in arb_circuit(),
        order_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        threads in 2usize..5,
        chunk in 1usize..97,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let faults = permuted_universe(&circuit, order_seed);
        let mut rng = StdRng::seed_from_u64(stream_seed);
        let patterns: Vec<Pattern> = (0..192)
            .map(|_| Pattern::random(&mut rng, circuit.inputs().len()))
            .collect();

        let mut serial = FaultSim::new(&circuit, faults.clone()).with_threads(1);
        serial.simulate(&patterns);

        let mut par = FaultSim::new(&circuit, faults).with_threads(threads);
        for piece in patterns.chunks(chunk) {
            par.simulate(piece);
        }

        prop_assert_eq!(serial.statuses(), par.statuses());
        for i in 0..serial.faults().len() {
            prop_assert_eq!(serial.first_detection(i), par.first_detection(i), "fault {}", i);
        }
    }

    /// Batched speculative ATPG replays to exactly the serial unit list,
    /// statuses and search count, for any universe ordering.
    #[test]
    fn atpg_identical_at_every_width(
        circuit in arb_circuit(),
        order_seed in any::<u64>(),
        threads in 2usize..5,
    ) {
        let faults = permuted_universe(&circuit, order_seed);
        let serial = TestGenerator::new(
            &circuit,
            faults.clone(),
            AtpgOptions { threads: 1, ..AtpgOptions::default() },
        )
        .run();
        let batched = TestGenerator::new(
            &circuit,
            faults,
            AtpgOptions { threads, ..AtpgOptions::default() },
        )
        .run();
        prop_assert_eq!(&serial.units, &batched.units);
        prop_assert_eq!(&serial.statuses, &batched.statuses);
        prop_assert_eq!(serial.atpg_calls, batched.atpg_calls);
    }

    /// The full mixed-scheme sweep — grading, cached top-ups, generator
    /// synthesis — solves the same points at any width.
    #[test]
    fn sweep_identical_at_every_width(
        circuit in arb_circuit(),
        threads in 2usize..5,
    ) {
        let serial_cfg = MixedSchemeConfig { threads: 1, ..MixedSchemeConfig::default() };
        let mut serial = BistSession::new(&circuit, serial_cfg);
        let want = serial.sweep(&[0, 12, 48]).unwrap();

        let cfg = MixedSchemeConfig { threads, ..MixedSchemeConfig::default() };
        let mut session = BistSession::new(&circuit, cfg);
        let got = session.sweep(&[0, 12, 48]).unwrap();

        for (a, b) in want.solutions().iter().zip(got.solutions()) {
            prop_assert_eq!(a.prefix_len, b.prefix_len);
            prop_assert_eq!(a.det_len, b.det_len);
            prop_assert_eq!(a.generator.deterministic(), b.generator.deterministic());
            prop_assert_eq!(&a.coverage, &b.coverage);
            prop_assert_eq!(&a.prefix_coverage, &b.prefix_coverage);
        }
    }
}

/// `sweep_circuits` over a mixed batch equals per-circuit sessions, at a
/// parallel outer pool (one fixed heavier case on real ISCAS circuits —
/// kept out of the proptest loop for runtime).
#[test]
fn parallel_circuit_sweep_equals_solo_sessions() {
    let circuits = vec![
        bist_netlist::iscas85::c17(),
        bist_netlist::iscas85::circuit("c432").unwrap(),
    ];
    let config = MixedSchemeConfig {
        threads: 4,
        ..MixedSchemeConfig::default()
    };
    let prefixes = [0usize, 32, 96];
    let summaries = sweep_circuits(&circuits, &config, &prefixes).unwrap();
    for (circuit, summary) in circuits.iter().zip(&summaries) {
        let solo_cfg = MixedSchemeConfig {
            threads: 1,
            ..MixedSchemeConfig::default()
        };
        let mut solo = BistSession::new(circuit, solo_cfg);
        let want = solo.sweep(&prefixes).unwrap();
        for (a, b) in want.solutions().iter().zip(summary.solutions()) {
            assert_eq!(a.det_len, b.det_len, "{}", circuit.name());
            assert_eq!(
                a.generator.deterministic(),
                b.generator.deterministic(),
                "{}",
                circuit.name()
            );
        }
    }
}
