//! Fuzz-lite robustness of the fallible parsing path: corrupted and
//! truncated ISCAS-85 / ISCAS-89 `.bench` fixtures must come back as
//! `Err(BistError::Parse { line, .. })` (or still parse, for harmless
//! mutations) — **never** a panic, and never any other error shape.

use bist::engine::{BistError, CircuitSource};
use bist::netlist::{iscas85, iscas89};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parses mutated text through the engine's source path and checks the
/// contract: success, or a located parse error.
fn assert_parse_contract(name: &str, text: &str) {
    match CircuitSource::bench(name, text).realize() {
        Ok(circuit) => {
            assert!(!circuit.inputs().is_empty(), "valid circuits have inputs");
        }
        Err(BistError::Parse {
            source_name,
            line,
            message,
        }) => {
            assert_eq!(source_name, name);
            assert!(
                line <= text.lines().count(),
                "error line {line} beyond the {} source lines",
                text.lines().count()
            );
            assert!(!message.is_empty(), "errors explain themselves");
        }
        Err(other) => panic!("bench sources only fail with Parse errors, got {other:?}"),
    }
}

/// Applies one seeded corruption to valid `.bench` text.
fn mutate(source: &str, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = source.to_owned();
    match rng.gen_range(0..5) {
        // truncate at an arbitrary char boundary (torn download)
        0 => {
            let cut = rng.gen_range(0..=text.chars().count());
            text = text.chars().take(cut).collect();
        }
        // overwrite one char with line noise
        1 => {
            let noise = ['(', ')', '=', ',', '#', 'Z', '7', ' ', '\u{e9}'];
            let chars: Vec<char> = text.chars().collect();
            if !chars.is_empty() {
                let at = rng.gen_range(0..chars.len());
                let mut chars = chars;
                chars[at] = noise[rng.gen_range(0..noise.len())];
                text = chars.into_iter().collect();
            }
        }
        // delete a whole line (lost declaration -> dangling references)
        2 => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.len() > 1 {
                let drop = rng.gen_range(0..lines.len());
                text = lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, l)| *l)
                    .collect::<Vec<_>>()
                    .join("\n");
            }
        }
        // duplicate a line (duplicate declarations)
        3 => {
            let lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let dup = rng.gen_range(0..lines.len());
                let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
                for (i, l) in lines.iter().enumerate() {
                    out.push(l);
                    if i == dup {
                        out.push(l);
                    }
                }
                text = out.join("\n");
            }
        }
        // splice in a garbage declaration
        _ => {
            let garbage = [
                "wat",
                "G1 = FROB(G2)",
                "OUTPUT(",
                "= AND(a, b)",
                "INPUT(G1)",
            ];
            let lines: Vec<&str> = text.lines().collect();
            let at = rng.gen_range(0..=lines.len());
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
            out.extend_from_slice(&lines[..at]);
            out.push(garbage[rng.gen_range(0..garbage.len())]);
            out.extend_from_slice(&lines[at..]);
            text = out.join("\n");
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every seeded corruption of the exact c17 netlist parses or fails
    /// with a located parse error.
    #[test]
    fn corrupted_iscas85_never_panics(seed in any::<u64>(), layers in 1usize..4) {
        let mut text = iscas85::C17_BENCH.to_owned();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..layers {
            text = mutate(&text, rng.gen());
        }
        assert_parse_contract("c17-mutant", &text);
    }

    /// Same for the sequential s27 netlist (exercises `DFF` declarations
    /// and forward references).
    #[test]
    fn corrupted_iscas89_never_panics(seed in any::<u64>(), layers in 1usize..4) {
        let mut text = iscas89::S27_BENCH.to_owned();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..layers {
            text = mutate(&text, rng.gen());
        }
        assert_parse_contract("s27-mutant", &text);
    }
}

#[test]
fn every_truncation_point_is_handled() {
    // exhaustive prefix truncation of both embedded fixtures: the
    // cheapest systematic "torn file" sweep there is
    for source in [iscas85::C17_BENCH, iscas89::S27_BENCH] {
        for cut in 0..source.len() {
            if !source.is_char_boundary(cut) {
                continue;
            }
            assert_parse_contract("truncated", &source[..cut]);
        }
    }
}

#[test]
fn specific_corruptions_report_exact_lines() {
    // unterminated gate call on line 3
    let err = CircuitSource::bench("t", "INPUT(a)\nOUTPUT(y)\ny = NAND(a")
        .realize()
        .expect_err("unterminated call");
    assert!(matches!(err, BistError::Parse { line: 3, .. }), "{err:?}");

    // unknown gate kind on line 3
    let err = CircuitSource::bench("t", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)")
        .realize()
        .expect_err("unknown kind");
    assert!(matches!(err, BistError::Parse { line: 3, .. }), "{err:?}");

    // dangling fan-in reference: detected at build time, attributed to
    // the referencing line 3
    let err = CircuitSource::bench("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)")
        .realize()
        .expect_err("dangling reference");
    assert!(matches!(err, BistError::Parse { line: 3, .. }), "{err:?}");

    // truncation that loses every OUTPUT: a whole-netlist defect, line 0
    let err = CircuitSource::bench("t", "INPUT(a)\ng = NOT(a)")
        .realize()
        .expect_err("no outputs");
    assert!(matches!(err, BistError::Parse { line: 0, .. }), "{err:?}");
}
