//! Property-based tests over the workspace's core invariants.

use bist_core::prelude::*;
use proptest::prelude::*;

/// Random small circuits for structure-independent properties.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..8, 2usize..24, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = CircuitBuilder::new("prop");
        let mut pool: Vec<String> = (0..inputs)
            .map(|i| {
                let n = format!("i{i}");
                b.add_input(&n).expect("fresh");
                n
            })
            .collect();
        for g in 0..gates {
            let kinds = [
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Xnor,
                GateKind::Not,
                GateKind::Buf,
            ];
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                _ => 2 + usize::from(rng.gen_bool(0.3)),
            };
            let mut fanin: Vec<String> = Vec::new();
            while fanin.len() < arity {
                let cand = pool[rng.gen_range(0..pool.len())].clone();
                if !fanin.contains(&cand) {
                    fanin.push(cand);
                } else if fanin.len() >= pool.len() {
                    break;
                }
            }
            let name = format!("g{g}");
            let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
            b.add_gate(&name, kind, &refs).expect("fresh");
            pool.push(name);
        }
        // last two nodes become outputs
        let n = pool.len();
        b.mark_output(&pool[n - 1]).expect("fresh");
        if n >= 2 && pool[n - 2] != pool[n - 1] {
            let _ = b.mark_output(&pool[n - 2]);
        }
        b.build().expect("generated circuits are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coverage is monotone in sequence length, whatever the circuit.
    #[test]
    fn coverage_monotone(circuit in arb_circuit(), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = FaultList::mixed_model(&circuit);
        let mut sim = FaultSim::new(&circuit, faults);
        let mut last = 0usize;
        for _ in 0..6 {
            let chunk: Vec<Pattern> = (0..16)
                .map(|_| Pattern::random(&mut rng, circuit.inputs().len()))
                .collect();
            sim.simulate(&chunk);
            let now = sim.report().detected;
            prop_assert!(now >= last);
            last = now;
        }
    }

    /// Fault collapsing is sound: a collapsed universe never reports
    /// higher coverage than the full universe under the same patterns
    /// misses faults the full universe detects (their classes are
    /// represented).
    #[test]
    fn collapsed_coverage_equals_full_class_coverage(
        circuit in arb_circuit(),
        seed in any::<u64>()
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns: Vec<Pattern> = (0..48)
            .map(|_| Pattern::random(&mut rng, circuit.inputs().len()))
            .collect();
        let mut full = FaultSim::new(&circuit, FaultList::stuck_at_full(&circuit));
        full.simulate(&patterns);
        let mut collapsed = FaultSim::new(&circuit, FaultList::stuck_at_collapsed(&circuit));
        collapsed.simulate(&patterns);
        // equivalence collapsing preserves *relative* coverage closely;
        // the collapsed set must never be easier than the full set by a
        // wide margin (a collapsing bug shows up as a large gap)
        let full_pct = full.report().coverage_pct();
        let collapsed_pct = collapsed.report().coverage_pct();
        prop_assert!((full_pct - collapsed_pct).abs() < 25.0,
            "full {full_pct:.1} vs collapsed {collapsed_pct:.1}");
    }

    /// Every PODEM "Test" verdict is confirmed by the serial grader, and
    /// every "Redundant" verdict survives exhaustive simulation on small
    /// circuits.
    #[test]
    fn podem_verdicts_are_sound(circuit in arb_circuit()) {
        let width = circuit.inputs().len();
        prop_assume!(width <= 7); // keep exhaustive check tractable
        let exhaustive: Vec<Pattern> = (0u32..(1 << width))
            .map(|v| Pattern::from_fn(width, |i| (v >> i) & 1 == 1))
            .collect();
        for fault in FaultList::stuck_at_collapsed(&circuit).iter() {
            let Fault::StuckAt { site, pin, value } = *fault else { continue };
            let outcome = bist_atpg::podem(
                &circuit,
                bist_logicsim::InjectedFault { site, pin, stuck: value },
                bist_atpg::PodemOptions::default(),
            );
            match outcome {
                bist_atpg::PodemOutcome::Test(p) => {
                    prop_assert!(
                        bist_faultsim::serial::detects(&circuit, *fault, None, &p),
                        "bogus test for {}", fault.describe(&circuit)
                    );
                }
                bist_atpg::PodemOutcome::Redundant => {
                    // no pattern in the whole space may detect it
                    for p in &exhaustive {
                        prop_assert!(
                            !bist_faultsim::serial::detects(&circuit, *fault, None, p),
                            "redundant verdict refuted for {}", fault.describe(&circuit)
                        );
                    }
                }
                bist_atpg::PodemOutcome::Aborted => {}
            }
        }
    }

    /// LFSROM synthesis replays any distinct-pattern sequence.
    #[test]
    fn lfsrom_replays_arbitrary_sequences(
        width in 2usize..16,
        len in 1usize..24,
        seed in any::<u64>()
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let seq: Vec<Pattern> = (0..len).map(|_| Pattern::random(&mut rng, width)).collect();
        let generator = LfsromGenerator::synthesize(&seq).unwrap();
        prop_assert_eq!(generator.replay(seq.len()), seq);
    }

    /// Mixed generators verify for arbitrary (p, d) splits.
    #[test]
    fn mixed_generator_always_verifies(
        width in 3usize..14,
        p in 0usize..10,
        d in 0usize..8,
        seed in any::<u64>()
    ) {
        prop_assume!(p + d > 0);
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let det: Vec<Pattern> = (0..d).map(|_| Pattern::random(&mut rng, width)).collect();
        let generator = MixedGenerator::build(width, primitive_poly(8), p, &det).unwrap();
        prop_assert!(generator.verify());
    }

    /// Two-level synthesis honours every care minterm.
    #[test]
    fn pla_synthesis_respects_care_set(
        width in 3usize..24,
        on_count in 1usize..12,
        off_count in 1usize..12,
        seed in any::<u64>()
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        // determinism-vetted: uniqueness bookkeeping, never iterated
        #[allow(clippy::disallowed_types)]
        let mut seen = std::collections::HashSet::new();
        let mut mk = |n: usize| -> Vec<Pattern> {
            let mut v = Vec::new();
            while v.len() < n {
                let p = Pattern::random(&mut rng, width);
                if seen.insert(p.clone()) {
                    v.push(p);
                }
            }
            v
        };
        let spec = bist_synth::OutputSpec { on: mk(on_count), off: mk(off_count) };
        let net = bist_synth::synthesize_pla(width, std::slice::from_ref(&spec));
        for m in &spec.on {
            prop_assert!(net.eval(m).get(0));
        }
        for m in &spec.off {
            prop_assert!(!net.eval(m).get(0));
        }
    }
}
