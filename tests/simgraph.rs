//! The flattened-core contract: `SimGraph` is a pure re-indexing of
//! `Circuit`, and the levelized bucket-queue cone propagation is
//! bit-identical to the historical heap-ordered walk.
//!
//! Two families of properties:
//!
//! * **layout equivalence** — on random circuits, every `SimGraph` array
//!   (CSR fan-in/fan-out, kinds, levels, topological order and positions,
//!   output flags, input positions) equals the legacy `Circuit` accessor
//!   it flattens;
//! * **propagation equivalence** — `FaultSim` (bucket queue over CSR)
//!   produces the same statuses and first-detection indices as a
//!   test-local replica of the pre-flattening engine: per-fault
//!   `BinaryHeap` ordered by topological position, pointer-chasing
//!   `Circuit` accessors, per-gate fan-in buffers — across random
//!   circuits, pattern streams and every pool width.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bist_core::prelude::*;
use bist_logicsim::PatternBlock;
use bist_netlist::NodeId;
use proptest::prelude::*;

/// Random small circuits (same construction as tests/properties.rs).
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..8, 2usize..24, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = CircuitBuilder::new("simgraph-prop");
        let mut pool: Vec<String> = (0..inputs)
            .map(|i| {
                let n = format!("i{i}");
                b.add_input(&n).expect("fresh");
                n
            })
            .collect();
        for g in 0..gates {
            let kinds = [
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Xnor,
                GateKind::Not,
                GateKind::Buf,
            ];
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                _ => 2 + usize::from(rng.gen_bool(0.3)),
            };
            let mut fanin: Vec<String> = Vec::new();
            while fanin.len() < arity {
                let cand = pool[rng.gen_range(0..pool.len())].clone();
                if !fanin.contains(&cand) {
                    fanin.push(cand);
                } else if fanin.len() >= pool.len() {
                    break;
                }
            }
            let name = format!("g{g}");
            let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
            b.add_gate(&name, kind, &refs).expect("fresh");
            pool.push(name);
        }
        let n = pool.len();
        b.mark_output(&pool[n - 1]).expect("fresh");
        if n >= 2 && pool[n - 2] != pool[n - 1] {
            let _ = b.mark_output(&pool[n - 2]);
        }
        b.build().expect("generated circuits are valid")
    })
}

// --------------------------------------------------------------------
// Reference engine: the pre-flattening PPSFP block loop, verbatim
// semantics — BinaryHeap ordered by (topo position, node id), per-gate
// fan-in buffer, `Circuit` pointer-chasing — used as the oracle the
// bucket-queue engine must match bit for bit.
// --------------------------------------------------------------------

struct HeapRef<'c> {
    circuit: &'c Circuit,
    topo_pos: Vec<u32>,
    status: Vec<FaultStatus>,
    first: Vec<Option<u32>>,
    seen: u32,
    last_bits: Vec<bool>,
}

impl<'c> HeapRef<'c> {
    fn new(circuit: &'c Circuit, universe: usize) -> Self {
        let mut topo_pos = vec![0u32; circuit.num_nodes()];
        for (pos, &id) in circuit.topo_order().iter().enumerate() {
            topo_pos[id.index()] = pos as u32;
        }
        HeapRef {
            circuit,
            topo_pos,
            status: vec![FaultStatus::Undetected; universe],
            first: vec![None; universe],
            seen: 0,
            last_bits: vec![false; circuit.num_nodes()],
        }
    }

    fn grade(&mut self, faults: &FaultList, patterns: &[Pattern]) {
        for chunk in patterns.chunks(64) {
            let block = PatternBlock::pack(self.circuit, chunk);
            let valid = block.valid_mask();
            let mut packed = PackedSim::new(self.circuit);
            packed.run(&block);
            let good: Vec<u64> = packed.values().to_vec();
            let first_ever = self.seen == 0;
            let prev: Vec<u64> = good
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    let carry = if first_ever {
                        g & 1
                    } else {
                        u64::from(self.last_bits[i])
                    };
                    (g << 1) | carry
                })
                .collect();
            let last = block.count() - 1;
            for (i, g) in good.iter().enumerate() {
                self.last_bits[i] = (g >> last) & 1 == 1;
            }
            for (fi, &fault) in faults.iter().enumerate() {
                if self.status[fi] != FaultStatus::Undetected {
                    continue;
                }
                if let Some(mask) = self.try_detect(&good, &prev, valid, fault) {
                    self.status[fi] = FaultStatus::Detected;
                    self.first[fi] = Some(self.seen + mask.trailing_zeros());
                }
            }
            self.seen += block.count() as u32;
        }
    }

    fn seed_value(
        &self,
        good: &[u64],
        prev: &[u64],
        valid: u64,
        fault: Fault,
    ) -> Option<(NodeId, u64)> {
        let memory_seed = |site: NodeId, excite: u64| {
            let g = good[site.index()];
            let fv = (g & !excite) | (prev[site.index()] & excite);
            ((fv ^ g) & valid != 0).then_some((site, fv))
        };
        match fault {
            Fault::StuckAt {
                site,
                pin: None,
                value,
            } => {
                let forced = if value { !0u64 } else { 0 };
                ((good[site.index()] ^ forced) & valid != 0).then_some((site, forced))
            }
            Fault::StuckAt {
                site,
                pin: Some(p),
                value,
            } => {
                let node = self.circuit.node(site);
                let forced = if value { !0u64 } else { 0 };
                let fanin: Vec<u64> = node
                    .fanin()
                    .iter()
                    .enumerate()
                    .map(|(k, f)| {
                        if k == p as usize {
                            forced
                        } else {
                            good[f.index()]
                        }
                    })
                    .collect();
                let fv = node.kind().eval_word(&fanin);
                ((fv ^ good[site.index()]) & valid != 0).then_some((site, fv))
            }
            Fault::OpenSeries { site } => {
                let node = self.circuit.node(site);
                let c = node.kind().controlling_value()?;
                let mut now = !0u64;
                let mut before = !0u64;
                for f in node.fanin() {
                    let n = good[f.index()];
                    let b = prev[f.index()];
                    now &= if c { !n } else { n };
                    before &= if c { !b } else { b };
                }
                memory_seed(site, now & !before)
            }
            Fault::OpenParallel { site, pin } => {
                let node = self.circuit.node(site);
                let c = node.kind().controlling_value()?;
                let mut only_p = !0u64;
                let mut before = !0u64;
                for (k, f) in node.fanin().iter().enumerate() {
                    let n = good[f.index()];
                    let b = prev[f.index()];
                    if k == pin as usize {
                        only_p &= if c { n } else { !n };
                    } else {
                        only_p &= if c { !n } else { n };
                    }
                    before &= if c { !b } else { b };
                }
                memory_seed(site, only_p & before)
            }
            Fault::OpenRise { site } => {
                let g = good[site.index()];
                memory_seed(site, g & !prev[site.index()])
            }
            Fault::OpenFall { site } => {
                let g = good[site.index()];
                memory_seed(site, !g & prev[site.index()])
            }
        }
    }

    fn try_detect(&self, good: &[u64], prev: &[u64], valid: u64, fault: Fault) -> Option<u64> {
        let (site, seed) = self.seed_value(good, prev, valid, fault)?;
        let n = self.circuit.num_nodes();
        let mut fval = vec![0u64; n];
        let mut known = vec![false; n];
        fval[site.index()] = seed;
        known[site.index()] = true;
        let mut detect = 0u64;
        if self.circuit.is_output(site) {
            detect |= (seed ^ good[site.index()]) & valid;
        }
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        for &s in self.circuit.fanout(site) {
            heap.push(Reverse((self.topo_pos[s.index()], s.index() as u32)));
        }
        let mut fanin_buf: Vec<u64> = Vec::new();
        let mut last_popped = u32::MAX;
        while let Some(Reverse((pos, idx))) = heap.pop() {
            if pos == last_popped {
                continue;
            }
            last_popped = pos;
            let id = NodeId::from_index(idx as usize);
            let node = self.circuit.node(id);
            if !node.kind().is_combinational() {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(node.fanin().iter().map(|f| {
                if known[f.index()] {
                    fval[f.index()]
                } else {
                    good[f.index()]
                }
            }));
            let fv = node.kind().eval_word(&fanin_buf);
            if fv == good[id.index()] {
                continue;
            }
            fval[id.index()] = fv;
            known[id.index()] = true;
            if self.circuit.is_output(id) {
                detect |= (fv ^ good[id.index()]) & valid;
            }
            for &s in self.circuit.fanout(id) {
                heap.push(Reverse((self.topo_pos[s.index()], s.index() as u32)));
            }
        }
        (detect != 0).then_some(detect)
    }
}

fn random_patterns(circuit: &Circuit, seed: u64, count: usize) -> Vec<Pattern> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Pattern::random(&mut rng, circuit.inputs().len()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simgraph_equals_legacy_accessors(c in arb_circuit()) {
        let g = c.sim_graph();
        prop_assert_eq!(g.num_nodes(), c.num_nodes());
        for id in 0..c.num_nodes() {
            let nid = NodeId::from_index(id);
            let node = c.node(nid);
            prop_assert_eq!(g.kind(id), node.kind(), "kind of {}", id);
            prop_assert_eq!(g.level(id), c.level(nid), "level of {}", id);
            prop_assert_eq!(g.is_output(id), c.is_output(nid), "output flag of {}", id);
            let fi: Vec<usize> = g.fanin(id).iter().map(|&f| f as usize).collect();
            let fi_legacy: Vec<usize> = node.fanin().iter().map(|f| f.index()).collect();
            prop_assert_eq!(fi, fi_legacy, "fanin of {}", id);
            let fo: Vec<usize> = g.fanout(id).iter().map(|&f| f as usize).collect();
            let fo_legacy: Vec<usize> = c.fanout(nid).iter().map(|f| f.index()).collect();
            prop_assert_eq!(fo, fo_legacy, "fanout of {}", id);
        }
        let topo: Vec<usize> = g.topo().iter().map(|&i| i as usize).collect();
        let topo_legacy: Vec<usize> = c.topo_order().iter().map(|i| i.index()).collect();
        prop_assert_eq!(&topo, &topo_legacy, "topological order");
        for (pos, &id) in topo.iter().enumerate() {
            prop_assert_eq!(g.topo_pos(id) as usize, pos, "topo position of {}", id);
        }
        prop_assert_eq!(g.num_levels(), c.depth() + 1);
        let ins: Vec<usize> = g.inputs().iter().map(|&i| i as usize).collect();
        let ins_legacy: Vec<usize> = c.inputs().iter().map(|i| i.index()).collect();
        prop_assert_eq!(ins, ins_legacy, "inputs");
        let outs: Vec<usize> = g.outputs().iter().map(|&o| o as usize).collect();
        let outs_legacy: Vec<usize> = c.outputs().iter().map(|o| o.index()).collect();
        prop_assert_eq!(outs, outs_legacy, "outputs");
        for (pos, pi) in c.inputs().iter().enumerate() {
            prop_assert_eq!(g.input_pos(pi.index()), Some(pos));
        }
        for id in 0..c.num_nodes() {
            if c.node(NodeId::from_index(id)).kind() != GateKind::Input {
                prop_assert_eq!(g.input_pos(id), None, "non-input {}", id);
            }
        }
    }

    #[test]
    fn bucket_queue_matches_heap_reference(c in arb_circuit(), seed in any::<u64>()) {
        let faults = FaultList::mixed_model(&c);
        let patterns = random_patterns(&c, seed, 150);

        let mut reference = HeapRef::new(&c, faults.len());
        // chunked feeding exercises the stuck-open carry across blocks
        reference.grade(&faults, &patterns[..97]);
        reference.grade(&faults, &patterns[97..]);

        for threads in [1usize, 2, 4] {
            let mut sim = FaultSim::new(&c, faults.clone()).with_threads(threads);
            sim.simulate(&patterns[..97]);
            sim.simulate(&patterns[97..]);
            prop_assert_eq!(sim.statuses(), &reference.status[..], "threads={}", threads);
            for fi in 0..faults.len() {
                prop_assert_eq!(
                    sim.first_detection(fi),
                    reference.first[fi],
                    "fault {} at threads={}",
                    fi,
                    threads
                );
            }
        }
    }
}

#[test]
fn bucket_queue_matches_heap_reference_on_c432() {
    let c = iscas85::circuit("c432").expect("known benchmark");
    let faults = FaultList::mixed_model(&c);
    let patterns = random_patterns(&c, 0xB157, 192);

    let mut reference = HeapRef::new(&c, faults.len());
    reference.grade(&faults, &patterns);

    for threads in [1usize, 4] {
        let mut sim = FaultSim::new(&c, faults.clone()).with_threads(threads);
        sim.simulate(&patterns);
        assert_eq!(sim.statuses(), &reference.status[..], "threads={threads}");
        for fi in 0..faults.len() {
            assert_eq!(
                sim.first_detection(fi),
                reference.first[fi],
                "fault {fi} at threads={threads}"
            );
        }
    }
}
