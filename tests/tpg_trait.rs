//! The unified-`Tpg` contract, enforced across every implementor in the
//! workspace, plus the `BistSession` vs point-wise regression.

use bist_baselines::{
    weights_from_structure, CaRegister, CaTpg, CounterPla, LfsromTpg, Reseeding, RomCounter,
    WeightedLfsr,
};
use bist_core::{BistSession, MixedSchemeConfig};
use bist_hdl::HdlOptions;
use bist_lfsrom::LfsromGenerator;
use bist_tpg::{PlainLfsr, Tpg};

/// One of every architecture in the workspace, built over c17's real
/// deterministic test set (so the encoders hold meaningful content).
fn fleet() -> Vec<Box<dyn Tpg>> {
    let c17 = bist_netlist::iscas85::c17();
    let faults = bist_fault::FaultList::mixed_model(&c17);
    let run = bist_atpg::TestGenerator::new(&c17, faults, Default::default()).run();
    let det = run.sequence();
    let cubes: Vec<bist_atpg::TestCube> = run
        .units
        .iter()
        .flat_map(|u| u.cubes.iter().cloned())
        .collect();
    let width = c17.inputs().len();

    let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
    let mixed = session.solve_at(6).expect("mixed flow solves").generator;

    let lfsrom = LfsromGenerator::synthesize(&det).expect("synthesizable");
    vec![
        Box::new(mixed),
        Box::new(PlainLfsr::new(bist_lfsr::paper_poly(), 1, width, 40)),
        Box::new(LfsromTpg::new(lfsrom.clone())),
        Box::new(lfsrom),
        Box::new(RomCounter::new(&det).expect("valid set")),
        Box::new(CounterPla::synthesize(&det).expect("valid set")),
        Box::new(Reseeding::encode(&cubes).expect("sparse cubes encode")),
        Box::new(CaTpg::new(
            CaRegister::find_max_length(16, 1 << 16).expect("rule exists"),
            width,
            40,
        )),
        Box::new(WeightedLfsr::new(
            bist_lfsr::paper_poly(),
            1,
            weights_from_structure(&c17),
            40,
        )),
    ]
}

#[test]
fn every_tpg_implementor_is_internally_consistent() {
    let model = bist_synth::AreaModel::es2_1um();
    // determinism-vetted: uniqueness bookkeeping, never iterated
    #[allow(clippy::disallowed_types)]
    let mut seen = std::collections::HashSet::new();
    for tpg in fleet() {
        let arch = tpg.architecture();
        let sequence = tpg.sequence();
        assert_eq!(sequence.len(), tpg.test_length(), "{arch}");
        assert!(tpg.test_length() > 0, "{arch}");
        for p in &sequence {
            assert_eq!(p.len(), tpg.width(), "{arch}");
        }
        assert!(tpg.cells().total() > 0, "{arch}: hardware is never free");
        assert!(tpg.area_mm2(&model) > 0.0, "{arch}");
        seen.insert(arch);
    }
    // the mixed generator, both extremes and every baseline are present
    for arch in [
        "mixed",
        "lfsr",
        "lfsrom",
        "rom-counter",
        "counter-pla",
        "lfsr-reseeding",
        "cellular-automaton",
        "weighted-random",
    ] {
        assert!(seen.contains(arch), "fleet is missing {arch}");
    }
}

#[test]
fn netlists_replay_their_emitted_sequence_bit_exactly() {
    let mut with_netlist = 0;
    for tpg in fleet() {
        let arch = tpg.architecture();
        match (tpg.netlist(), tpg.replay_netlist()) {
            (Some(netlist), Some(replayed)) => {
                with_netlist += 1;
                assert!(netlist.num_dffs() > 0, "{arch}: a TPG is sequential");
                assert_eq!(
                    replayed,
                    tpg.sequence(),
                    "{arch}: netlist replay must reproduce sequence()"
                );
            }
            (None, None) => {} // analytical cost model only — fine
            (netlist, replay) => panic!(
                "{arch}: netlist() and replay_netlist() must agree in presence \
                 (got netlist {} / replay {})",
                netlist.is_some(),
                replay.is_some()
            ),
        }
    }
    assert!(
        with_netlist >= 3,
        "mixed, lfsr and lfsrom all carry netlists, saw {with_netlist}"
    );
}

#[test]
fn hdl_emission_succeeds_exactly_where_netlists_exist_and_lints_clean() {
    let options = HdlOptions::default();
    for tpg in fleet() {
        let arch = tpg.architecture();
        let verilog = tpg.emit_verilog(&options);
        let vhdl = tpg.emit_vhdl(&options);
        assert_eq!(verilog.is_some(), tpg.netlist().is_some(), "{arch}");
        assert_eq!(vhdl.is_some(), tpg.netlist().is_some(), "{arch}");
        if let Some(v) = verilog {
            bist_hdl::lint::check_verilog(&v)
                .unwrap_or_else(|e| panic!("{arch}: Verilog lint: {e}"));
        }
        if let Some(v) = vhdl {
            bist_hdl::lint::check_vhdl(&v).unwrap_or_else(|e| panic!("{arch}: VHDL lint: {e}"));
        }
    }
}

#[test]
fn session_sweep_is_bit_identical_to_point_wise_solves() {
    let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
    let checkpoints = [0usize, 60, 150, 300];

    let mut swept_session = BistSession::new(&c, MixedSchemeConfig::default());
    let summary = swept_session.sweep(&checkpoints).expect("sweep succeeds");
    assert_eq!(
        swept_session.stats().patterns_simulated,
        *checkpoints.iter().max().unwrap(),
        "a monotone sweep simulates each pseudo-random pattern exactly once"
    );

    for (s, &p) in summary.solutions().iter().zip(&checkpoints) {
        // a completely fresh session per point: the expensive way
        let mut point = BistSession::new(&c, MixedSchemeConfig::default());
        let q = point.solve_at(p).expect("point solve succeeds");
        assert_eq!(s.prefix_len, q.prefix_len);
        assert_eq!(s.det_len, q.det_len, "p={p}");
        assert_eq!(
            s.generator.deterministic(),
            q.generator.deterministic(),
            "p={p}: suffixes must be bit-identical"
        );
        assert_eq!(
            s.generator.expected_random(),
            q.generator.expected_random(),
            "p={p}: prefixes must be bit-identical"
        );
        assert_eq!(s.coverage, q.coverage, "p={p}");
        assert_eq!(s.prefix_coverage, q.prefix_coverage, "p={p}");
        assert_eq!(s.generator_area_mm2, q.generator_area_mm2, "p={p}");
    }
}

#[test]
fn session_consumes_its_own_generator_through_the_trait() {
    // the mixed generator, viewed generically, agrees with the solution's
    // bookkeeping — the trait carries everything a bake-off needs
    let c17 = bist_netlist::iscas85::c17();
    let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
    let solution = session.solve_at(8).expect("solves");
    let tpg: &dyn Tpg = &solution.generator;
    assert_eq!(tpg.architecture(), "mixed");
    assert_eq!(tpg.test_length(), solution.total_len());
    assert_eq!(
        tpg.area_mm2(&session.config().area),
        solution.generator_area_mm2
    );
    assert_eq!(tpg.replay_netlist().unwrap(), tpg.sequence());
}
