//! Offline stand-in for the subset of `criterion` this workspace uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! There is no statistical analysis: each benchmark runs a warm-up
//! iteration plus `sample_size` timed iterations and prints min / mean /
//! max wall time. Good enough to keep the `benches/` targets building,
//! runnable and comparable without crates.io access.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; ignored by this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Times `routine` with untimed fresh input from `setup` per sample.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    quick: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            samples: if self.quick { 1 } else { self.sample_size },
            results: Vec::new(),
        };
        f(&mut bencher);
        report(&format!("{}/{id}", self.name), &bencher.results);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Creates a harness; `--test` (passed by `cargo test`) switches to
    /// single-iteration smoke mode.
    pub fn from_args() -> Self {
        Criterion {
            quick: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let quick = self.quick;
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            quick,
            _criterion: self,
        }
    }

    /// Runs and reports one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            samples: if self.quick { 1 } else { 10 },
            results: Vec::new(),
        };
        f(&mut bencher);
        report(id, &bencher.results);
        self
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
