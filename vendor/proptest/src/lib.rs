//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro with `#![proptest_config(..)]`, integer-range
//! and [`any`] strategies, tuples, [`Strategy::prop_map`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Unlike the real crate there is **no shrinking** and no persisted
//! failure seeds: each test runs `cases` deterministic cases derived
//! from a fixed seed, and a failing case panics with its generated
//! inputs' debug representation. That keeps the workspace's property
//! tests meaningful (and reproducible) without crates.io access.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration: how many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 16 }
    }
}

/// The value-generation half of a proptest strategy (no shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value: core::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: core::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: core::fmt::Debug,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Strategy for "any value of `T`", returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The whole domain of `T` as a strategy.
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! any_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Standard::sample(rng)
            }
        }
    )*};
}
any_strategy!(bool, u8, u16, u32, u64, usize, i32, i64);

/// A fixed-value strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Outcome of one generated case: `Err` carries the failure message,
/// `Ok(false)` means the case was rejected by `prop_assume!`.
pub type TestCaseResult = Result<(), String>;

/// Runs `cases` deterministic cases of `body`, panicking on the first
/// failure. Used by the [`proptest!`] macro expansion; not public API in
/// the real crate.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut StdRng) -> (String, TestCaseResult),
) {
    // per-test deterministic seed so properties don't all share a stream
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let (inputs, result) = body(&mut rng);
        if let Err(message) = result {
            panic!("property `{name}` failed at case {case}\n  inputs: {inputs}\n  {message}");
        }
    }
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts `cond` inside a property, failing the case (not the process)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case when its generated inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the configured number of generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ( $($strat,)* );
            $crate::run_cases(stringify!($name), &config, |rng| {
                #[allow(non_snake_case)]
                let generated = $crate::Strategy::generate(&strategies, rng);
                let inputs = format!("{:?}", generated);
                let mut case = || -> $crate::TestCaseResult {
                    let ( $($arg,)* ) = generated;
                    $body
                    Ok(())
                };
                (inputs, case())
            });
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}
