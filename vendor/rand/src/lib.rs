//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_bool` and `gen_range`.
//!
//! The container this workspace builds in has no crates.io access, so
//! the real `rand` cannot be fetched; every consumer only needs a
//! deterministic, seedable pseudo-random source for test-data
//! generation, which this xoshiro256\*\* implementation provides. The
//! stream differs from upstream `rand`, which is fine: nothing in the
//! workspace depends on the exact values, only on determinism per seed.

#![forbid(unsafe_code)]

/// Random number generator implementations.
pub mod rngs {
    /// Deterministic 64-bit generator (xoshiro256\*\*), seedable via
    /// [`SeedableRng::seed_from_u64`](crate::SeedableRng::seed_from_u64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seedable generators (here: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

/// The user-facing generator trait: the `rand` methods the workspace
/// calls.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, RR>(&mut self, range: RR) -> T
    where
        RR: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u32..=24);
            assert!((1..=24).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "{hits}");
    }
}
